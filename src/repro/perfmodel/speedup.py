"""The architecture-oblivious potential speed-up plot (paper Figure 9).

Unifies the two efficiencies on one chart: x = algorithm efficiency (how
much of the theoretical INTOP intensity is achieved), y = architectural
efficiency (how much of the roofline is achieved). The reciprocal axes
give *potential speed-up*: a point at (25 %, 20 %) could go 4x faster by
fixing data locality and 5x faster by fixing execution — the iso-curves
of constant combined speed-up are the hyperbolas ``x * y = const``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class SpeedupPoint:
    """One (device, dataset) point of Figure 9."""

    device: str
    k: int
    algorithm_efficiency: float   # x, in [0, 1]
    architectural_efficiency: float  # y, in [0, 1]

    def __post_init__(self) -> None:
        for v in (self.algorithm_efficiency, self.architectural_efficiency):
            if not 0.0 <= v <= 1.0:
                raise ModelError(f"efficiency {v} outside [0, 1]")

    @property
    def speedup_by_improving_ai(self) -> float:
        """Top-axis reading: potential gain from better data locality."""
        if self.algorithm_efficiency == 0:
            return float("inf")
        return 1.0 / self.algorithm_efficiency

    @property
    def speedup_by_improving_performance(self) -> float:
        """Right-axis reading: potential gain from better execution."""
        if self.architectural_efficiency == 0:
            return float("inf")
        return 1.0 / self.architectural_efficiency

    @property
    def combined_potential(self) -> float:
        """Product of both potentials (distance from the ideal corner)."""
        return (self.speedup_by_improving_ai
                * self.speedup_by_improving_performance)


def speedup_point(device_name: str, k: int, alg_eff: float,
                  arch_eff: float) -> SpeedupPoint:
    """Build a Figure-9 point from the two efficiencies."""
    return SpeedupPoint(device=device_name, k=k,
                        algorithm_efficiency=alg_eff,
                        architectural_efficiency=arch_eff)


def iso_curve_levels() -> tuple[float, ...]:
    """The speed-up iso-levels Figure 9 draws (1x .. 32x)."""
    return (1.0, 1.33, 2.0, 4.0, 8.0, 16.0, 32.0)


def iso_curve(level: float, n: int = 33) -> list[tuple[float, float]]:
    """Points (x, y) of the ``1/(x*y) = level`` iso-curve within the unit box."""
    if level < 1.0:
        raise ModelError(f"speed-up level must be >= 1, got {level}")
    xs = [max(1.0 / level, 0.01) + i * (1.0 - max(1.0 / level, 0.01)) / (n - 1)
          for i in range(n)]
    return [(x, min(1.0, 1.0 / (level * x))) for x in xs]
