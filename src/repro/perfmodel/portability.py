"""The Pennycook performance-portability metric [8, 19].

For an application ``a`` solving problem ``p`` on a platform set ``H``::

    P(a, p, H) = |H| / sum_{i in H} 1 / e_i(a, p)    if a runs on all i
               = 0                                    otherwise

— the harmonic mean of the per-platform efficiencies ``e_i``, which is 0
if any platform fails (an unsupported platform has e = 0). Any measurable
efficiency works; the paper uses architectural efficiency (Table IV) and
algorithm efficiency (Table VII).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ModelError


def pennycook(efficiencies: Iterable[float]) -> float:
    """Harmonic-mean performance portability of per-platform efficiencies.

    Args:
        efficiencies: one efficiency in [0, 1] per platform; a zero (the
            application does not run there) makes the metric 0, per the
            definition's second case.
    """
    effs = list(efficiencies)
    if not effs:
        raise ModelError("pennycook metric needs at least one platform")
    for e in effs:
        if e < 0 or e > 1:
            raise ModelError(f"efficiency {e} outside [0, 1]")
    if any(e == 0 for e in effs):
        return 0.0
    return len(effs) / sum(1.0 / e for e in effs)
