"""Performance modeling: roofline, theoretical II, portability, timing.

* :mod:`repro.perfmodel.theoretical` — the paper's closed-form theoretical
  INTOP intensity (Tables V & VI).
* :mod:`repro.perfmodel.roofline` — the integer-operations roofline model
  (Figure 6).
* :mod:`repro.perfmodel.timing` — predicts kernel time from measured
  counters (feeds Figure 5 and everything downstream).
* :mod:`repro.perfmodel.efficiency` — architectural & algorithm
  efficiency (Tables IV & VII).
* :mod:`repro.perfmodel.portability` — the Pennycook metric.
* :mod:`repro.perfmodel.speedup` — potential-speed-up coordinates (Figure 9).
"""

from repro.perfmodel.theoretical import (
    bytes_per_loop_cycle,
    construct_bytes,
    intops_per_loop_cycle,
    lookup_bytes,
    theoretical_ii,
)
from repro.perfmodel.roofline import (
    RooflinePoint,
    roofline_ceiling,
    roofline_point,
    roofline_series,
)
from repro.perfmodel.timing import TimingBreakdown, apply_timing, predict_time
from repro.perfmodel.efficiency import (
    algorithm_efficiency,
    architectural_efficiency,
)
from repro.perfmodel.portability import pennycook
from repro.perfmodel.speedup import SpeedupPoint, iso_curve_levels, speedup_point

__all__ = [
    "bytes_per_loop_cycle",
    "construct_bytes",
    "intops_per_loop_cycle",
    "lookup_bytes",
    "theoretical_ii",
    "RooflinePoint",
    "roofline_ceiling",
    "roofline_point",
    "roofline_series",
    "TimingBreakdown",
    "apply_timing",
    "predict_time",
    "algorithm_efficiency",
    "architectural_efficiency",
    "pennycook",
    "SpeedupPoint",
    "iso_curve_levels",
    "speedup_point",
]
