"""Architectural and algorithm efficiency (paper Tables IV and VII).

* **Architectural efficiency** — the fraction of the INTOP roofline the
  run achieved at its *measured* intensity:
  ``e_arch = achieved / min(peak, II_emp * BW)``. It asks "how well does
  this implementation use this machine, given how it moves data?".
* **Algorithm efficiency** — the fraction of the *theoretical* INTOP
  intensity the run achieved: ``e_alg = II_emp / II_theory(k)`` (capped
  at 1). It asks "how close is the data movement to the algorithm's ideal
  on a perfectly cached machine?" — the metric of [18] adapted to integer
  workloads.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.perfmodel.roofline import roofline_ceiling
from repro.perfmodel.theoretical import theoretical_ii
from repro.simt.counters import KernelProfile
from repro.simt.device import DeviceSpec


def architectural_efficiency(profile: KernelProfile, device: DeviceSpec) -> float:
    """``e_arch``: achieved GINTOP/s over the roofline at the measured II."""
    achieved = profile.gintops_per_second
    ceiling = roofline_ceiling(device, profile.intop_intensity)
    eff = achieved / ceiling
    if eff < 0:
        raise ModelError("negative efficiency — inconsistent profile")
    return min(eff, 1.0)


def algorithm_efficiency(profile: KernelProfile, k: int) -> float:
    """``e_alg``: measured II over the theoretical II for this k."""
    return min(profile.intop_intensity / theoretical_ii(k), 1.0)
