"""The integer-operations (INTOP) roofline model (paper Section V-B).

The paper simplifies the Instruction Roofline Model [Ding & Williams,
PMBS'19] by counting integer *operations* instead of instructions, which
makes the model portable across vendors whose profilers disagree about
what an "instruction" is. Performance (GINTOP/s) is bounded by::

    ceiling(II) = min(peak_GINTOPS, II * HBM_bandwidth)

with ``II = INTOPs / HBM bytes`` the INTOP Intensity. The ridge point
``peak / bandwidth`` is the machine balance; kernels left of it are
memory-bound, right of it compute-bound (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.simt.counters import KernelProfile
from repro.simt.device import DeviceSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel run placed on a device's INTOP roofline.

    Attributes:
        device: device name.
        ii: empirical INTOP intensity (x-coordinate).
        gintops_per_s: achieved performance (y-coordinate).
        ceiling_gintops: the roofline bound at this II.
        bound: "memory" or "compute", by which side of the ridge II falls.
    """

    device: str
    ii: float
    gintops_per_s: float
    ceiling_gintops: float
    bound: str

    @property
    def fraction_of_ceiling(self) -> float:
        """Achieved / attainable — the paper's architectural efficiency.

        Capped at 1: the Max 1550's timing model sustains more than its
        Advisor-measured roofline ceiling (see
        ``DeviceSpec.timing_peak_gintops``), so its points can touch the
        ceiling; a kernel cannot meaningfully exceed it.
        """
        return min(1.0, self.gintops_per_s / self.ceiling_gintops)


def roofline_ceiling(device: DeviceSpec, ii: float) -> float:
    """Attainable GINTOP/s at intensity ``ii`` on ``device``."""
    if ii <= 0:
        raise ModelError(f"II must be positive, got {ii}")
    return min(device.peak_gintops, ii * device.hbm_bw_gbps)


def roofline_point(profile: KernelProfile, device: DeviceSpec) -> RooflinePoint:
    """Place a profiled kernel run on the device's roofline."""
    ii = profile.intop_intensity
    perf = profile.gintops_per_second
    ceiling = roofline_ceiling(device, ii)
    bound = "memory" if ii < device.machine_balance else "compute"
    return RooflinePoint(device=device.name, ii=ii, gintops_per_s=perf,
                         ceiling_gintops=ceiling, bound=bound)


def roofline_series(
    device: DeviceSpec, ii_min: float = 1e-2, ii_max: float = 1e1, n: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """(II, ceiling) arrays tracing the roofline for plotting (Figure 6)."""
    if ii_min <= 0 or ii_max <= ii_min:
        raise ModelError("require 0 < ii_min < ii_max")
    ii = np.logspace(np.log10(ii_min), np.log10(ii_max), n)
    ceil = np.minimum(device.peak_gintops, ii * device.hbm_bw_gbps)
    return ii, ceil
