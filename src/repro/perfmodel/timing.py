"""Kernel time prediction from measured counters.

The simulated device has no wall clock, so time is *modeled* from the
counters the kernels measure, using the same resource-bound reasoning the
roofline embodies:

* **Construction issue time** — all lanes are active, so the sustained
  integer pipeline (``peak * pipeline_efficiency``) processes the
  construction thread-ops directly.
* **Walk issue time** — one lane per warp is active, but the warp still
  occupies its full issue width: the walk's thread-ops are charged
  ``warp_size`` issue slots each. This is the quantitative form of the
  paper's predication analysis — AMD's 64-wide wavefronts pay twice the
  A100's walk cost and four times the 16-wide Intel sub-groups'.
* **Memory time** — HBM bytes over sustained bandwidth.
* **Latency floors** — the dependent chains (lockstep probe iterations
  and walk steps) times the cache-hit-weighted access latency; a device
  whose tables fit in cache walks on short leashes, one that misses to
  HBM cannot hide its own serial chain.

The two phases serialize inside a launch, so::

    T = max(T_construct_issue + T_walk_issue, T_memory,
            T_construct_latency + T_walk_latency)
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.simt.counters import KernelProfile
from repro.simt.device import DeviceSpec


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-resource times (seconds) and the binding resource."""

    construct_issue: float
    walk_issue: float
    memory: float
    construct_latency: float
    walk_latency: float

    @property
    def issue(self) -> float:
        return self.construct_issue + self.walk_issue

    @property
    def latency(self) -> float:
        return self.construct_latency + self.walk_latency

    @property
    def total(self) -> float:
        return max(self.issue, self.memory, self.latency)

    @property
    def bound(self) -> str:
        """Which resource binds: "issue", "memory" or "latency"."""
        t = self.total
        if t == self.issue:
            return "issue"
        return "memory" if t == self.memory else "latency"


def predict_time(profile: KernelProfile, device: DeviceSpec) -> TimingBreakdown:
    """Model the kernel time for a profiled run on ``device``."""
    if profile.intops <= 0:
        raise ModelError("cannot time an empty profile")
    if not math.isfinite(profile.hbm_bytes) or profile.hbm_bytes < 0:
        raise ModelError(
            f"degenerate HBM byte count {profile.hbm_bytes!r}; "
            "the profile's memory traffic must be finite and non-negative")
    timing_peak = device.timing_peak_gintops or device.peak_gintops
    sustained_ops = timing_peak * 1e9 * device.pipeline_efficiency
    sustained_bw = device.hbm_bw_gbps * 1e9 * device.memory_efficiency
    clock_hz = device.clock_ghz * 1e9
    return TimingBreakdown(
        construct_issue=profile.construct_intops / sustained_ops,
        walk_issue=profile.walk_intops * profile.walk_issue_width / sustained_ops,
        memory=profile.hbm_bytes / sustained_bw,
        construct_latency=profile.construct_chain_cycles / clock_hz,
        walk_latency=profile.walk_chain_cycles / clock_hz,
    )


def apply_timing(profile: KernelProfile, device: DeviceSpec,
                 parallel_scale: float = 1.0) -> TimingBreakdown:
    """Compute and store the predicted time on the profile.

    ``parallel_scale``: fraction of the paper-size dataset that was
    actually run. Throughput terms (issue, memory) scale with work and are
    extrapolated by ``1/scale``; the latency terms are per-launch serial
    chains whose length is scale-invariant (a bin's longest walk doesn't
    shrink when there are fewer bins' worth of contigs), so they are not
    scaled. With ``parallel_scale=1`` this is exact, not extrapolation.
    """
    bd = predict_time(profile, device)
    if parallel_scale != 1.0:
        bd = TimingBreakdown(
            construct_issue=bd.construct_issue / parallel_scale,
            walk_issue=bd.walk_issue / parallel_scale,
            memory=bd.memory / parallel_scale,
            construct_latency=bd.construct_latency,
            walk_latency=bd.walk_latency,
        )
    profile.seconds = bd.total
    return bd


def extrapolate_profile(profile: KernelProfile, device: DeviceSpec,
                        parallel_scale: float) -> KernelProfile:
    """Full-scale view of a profile measured on a scaled dataset.

    Work-proportional counters (INTOPs, bytes, inserts, ...) scale by
    ``1/parallel_scale``; per-launch chain cycles do not (see
    :func:`apply_timing`). The returned profile's counters and time are
    mutually consistent, so every downstream metric (roofline point,
    efficiencies, GINTOP/s) reads as a full-size run.
    """
    if not 0.0 < parallel_scale <= 1.0:
        raise ModelError(f"parallel_scale must be in (0, 1], got {parallel_scale}")
    full = copy.deepcopy(profile)
    inv = 1.0 / parallel_scale
    for name in (
        "intops", "warp_instructions", "lane_instructions", "inserts",
        "insert_probe_iterations", "lookups", "lookup_probe_iterations",
        "walk_steps", "sync_ops", "atomics", "contigs", "extension_bases",
        "contigs_dropped", "overflow_retries",
        "construct_intops", "walk_intops",
    ):
        setattr(full, name, int(round(getattr(profile, name) * inv)))
    full.hbm_bytes = profile.hbm_bytes * inv
    full.l1_hit_bytes = profile.l1_hit_bytes * inv
    full.l2_hit_bytes = profile.l2_hit_bytes * inv
    apply_timing(full, device)  # chains already full-size; counters now too
    return full
