"""The paper's theoretical INTOP Intensity model (Section V-D2, Tables V/VI).

One "loop cycle" is one construction insert (Algorithm 1) plus one walk
lookup (Algorithm 2) — the walk runs every time construction runs, so the
paper sums the two and takes the ratio, which removes any dependence on
dataset size:

* ``INTOP1 = INTOP2 = hash_intops(k)`` (Table V),
* ``B1 = 2k + 13`` bytes per insert (read k-mer + quality, write the
  4-byte key pointer, 1-byte extension, 4-byte quality, 4-byte count),
* ``B2 = k + 13`` bytes per lookup (read k-mer, read the same 13 bytes),
* ``II = (INTOP1 + INTOP2) / (B1 + B2)`` (Table VI).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.hashing.opcount import hash_intops

#: Fixed bytes of the hash-table value region the paper's model charges:
#: 4-byte key pointer + 1-byte extension + 4-byte quality + 4-byte count.
VALUE_BYTES = 13


def construct_bytes(k: int) -> int:
    """``B1``: HBM bytes per hash-table insertion (Equation 2)."""
    if k <= 0:
        raise ModelError(f"k must be positive, got {k}")
    return 2 * k + VALUE_BYTES


def lookup_bytes(k: int) -> int:
    """``B2``: HBM bytes per walk lookup (Equation 3)."""
    if k <= 0:
        raise ModelError(f"k must be positive, got {k}")
    return k + VALUE_BYTES


def intops_per_loop_cycle(k: int) -> int:
    """``INTOP1 + INTOP2`` (Table VI column 2): 430/610/914/1270."""
    return 2 * hash_intops(k)


def bytes_per_loop_cycle(k: int) -> int:
    """``B1 + B2`` (Table VI column 3): 89/125/191/257."""
    return construct_bytes(k) + lookup_bytes(k)


def theoretical_ii(k: int) -> float:
    """Theoretical INTOP Intensity (Table VI column 4, Equation 4)."""
    return intops_per_loop_cycle(k) / bytes_per_loop_cycle(k)
