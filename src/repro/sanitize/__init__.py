"""Correctness tooling for the emulated warp protocols: ``repro.sanitize``.

Two prongs, modeled on the vendor tool split:

* **dynamic** — :class:`~repro.sanitize.checkers.Sanitizer`, an EventBus
  subscriber shadowing hash-table slot state while a kernel runs
  (``compute-sanitizer``-style racecheck / synccheck / initcheck);
  enabled per run with ``LocalAssemblyKernel(..., sanitize="all")`` or
  ``repro-locassm run --sanitize all``. The deliberately-buggy
  ``buggy-demo`` backend (:mod:`~repro.sanitize.demo`) seeds one bug per
  checker — the mutation-style self-test that proves each checker can
  actually catch its bug class.
* **static** — :mod:`~repro.sanitize.lint`, an AST lint engine with
  per-file repo-invariant rules, plus :mod:`~repro.sanitize.semantic`,
  the whole-program pass (symbol table, call graph, interprocedural
  rules with noqa pragmas / baseline / SARIF / incremental cache).
  Together they form the catalog REP001–REP013, run as
  ``repro-locassm lint``.
"""

from repro.sanitize import demo as _demo  # noqa: F401  (registers buggy-demo)
from repro.sanitize.checkers import MAX_FINDINGS_PER_BATCH, Sanitizer
from repro.sanitize.demo import BUGS, BuggyDemoKernel
from repro.sanitize.lint import (
    RULES,
    LintFinding,
    LintRule,
    expand_select,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    select_rules,
)
from repro.sanitize.semantic import (
    AnalysisResult,
    SemanticRule,
    analyze_paths,
    render_sarif,
)
from repro.sanitize.report import (
    CHECKS,
    SanitizerFinding,
    SanitizerReport,
    parse_checks,
)

__all__ = [
    # dynamic prong
    "BUGS",
    "BuggyDemoKernel",
    "CHECKS",
    "MAX_FINDINGS_PER_BATCH",
    "Sanitizer",
    "SanitizerFinding",
    "SanitizerReport",
    "parse_checks",
    # static prong
    "RULES",
    "AnalysisResult",
    "LintFinding",
    "LintRule",
    "SemanticRule",
    "analyze_paths",
    "expand_select",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
]

# The docstring names the catalog span; assert it against the registered
# rules so the text cannot drift again when REP014 lands (the REP001–
# REP005 staleness this guards against was a real bug).
_SPAN = f"{min(RULES)}–{max(RULES)}"
assert _SPAN in __doc__, (
    f"stale sanitize docstring: catalog is {_SPAN}, docstring says "
    f"otherwise - update the rule span in src/repro/sanitize/__init__.py")
