"""Correctness tooling for the emulated warp protocols: ``repro.sanitize``.

Two prongs, modeled on the vendor tool split:

* **dynamic** — :class:`~repro.sanitize.checkers.Sanitizer`, an EventBus
  subscriber shadowing hash-table slot state while a kernel runs
  (``compute-sanitizer``-style racecheck / synccheck / initcheck);
  enabled per run with ``LocalAssemblyKernel(..., sanitize="all")`` or
  ``repro-locassm run --sanitize all``. The deliberately-buggy
  ``buggy-demo`` backend (:mod:`~repro.sanitize.demo`) seeds one bug per
  checker — the mutation-style self-test that proves each checker can
  actually catch its bug class.
* **static** — :mod:`~repro.sanitize.lint`, an AST lint engine with
  repo-invariant rules (REP001–REP005) run as ``repro-locassm lint``.
"""

from repro.sanitize import demo as _demo  # noqa: F401  (registers buggy-demo)
from repro.sanitize.checkers import MAX_FINDINGS_PER_BATCH, Sanitizer
from repro.sanitize.demo import BUGS, BuggyDemoKernel
from repro.sanitize.lint import (
    RULES,
    LintFinding,
    LintRule,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    select_rules,
)
from repro.sanitize.report import (
    CHECKS,
    SanitizerFinding,
    SanitizerReport,
    parse_checks,
)

__all__ = [
    # dynamic prong
    "BUGS",
    "BuggyDemoKernel",
    "CHECKS",
    "MAX_FINDINGS_PER_BATCH",
    "Sanitizer",
    "SanitizerFinding",
    "SanitizerReport",
    "parse_checks",
    # static prong
    "RULES",
    "LintFinding",
    "LintRule",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "select_rules",
]
