"""A deliberately-buggy backend: the sanitizer's mutation-style self-test.

A sanitizer you have never seen catch a bug is a sanitizer you cannot
trust. ``BuggyDemoKernel`` runs the real staged engine but swaps in
phase subclasses that each seed one classic warp-protocol bug — the
mutations every checker must catch:

* ``"race"`` — the atomicCAS claim is replaced by a plain batched store
  (every colliding lane believes it won and installs its tag), and the
  atomicAdd vote accumulation by a NumPy fancy-index ``+=`` (duplicate
  slots in one step genuinely lose updates). **racecheck** must fire.
* ``"sync"`` — the per-iteration ``__syncwarp(mask)`` is issued with a
  stale full-warp mask even after lanes have retired — the classic
  ``__activemask()``-captured-too-early bug. **synccheck** must fire.
* ``"init"`` — the walk treats an empty probe slot as the key's slot and
  resolves votes from its never-written value region. **initcheck**
  must fire.

The bugs are *real* (the race genuinely drops votes; the init read
genuinely feeds zeros into vote resolution), so functional output may
deviate from the production ports — that deviation is the point.
Registered as the ``buggy-demo`` backend so the CLI can demonstrate
``--sanitize`` catching each one.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.kernels.engine.backend import ProtocolCosts, register_backend
from repro.kernels.engine.construct import ConstructPhase
from repro.kernels.engine.events import BarrierSync, EventBus, SlotWrite
from repro.kernels.engine.simt import LocalAssemblyKernel
from repro.kernels.engine.walk import WalkPhase
from repro.kernels.vectortable import WarpHashTables
from repro.simt.device import A100, DeviceSpec

#: The demo bugs, keyed by the checker that must catch each.
BUGS = ("race", "sync", "init")


class BuggyConstructPhase(ConstructPhase):
    """Construction with a non-atomic insert protocol and stale sync masks."""

    def __init__(self, protocol, warp_size: int, defer_overflow: bool = False,
                 bugs: frozenset = frozenset(BUGS)) -> None:
        super().__init__(protocol, warp_size, defer_overflow)
        self.bugs = bugs

    def _claim(self, tables: WarpHashTables, slots: np.ndarray,
               fps: np.ndarray, warps: np.ndarray, lanes, bus: EventBus,
               emit_writes: bool) -> np.ndarray:
        if "race" not in self.bugs:
            return super()._claim(tables, slots, fps, warps, lanes, bus,
                                  emit_writes)
        if emit_writes:
            bus.emit(SlotWrite(phase="construct", kind="claim", slots=slots,
                               warps=warps, lanes=lanes, atomic=False))
        # BUG: plain store instead of atomicCAS — no winner election.
        # Every colliding lane overwrites the tag and believes it won.
        tables.occupied[slots] = True
        tables.fp[slots] = fps
        return np.ones(slots.size, dtype=bool)

    def _vote(self, tables: WarpHashTables, slots: np.ndarray,
              exts: np.ndarray, his: np.ndarray, warps: np.ndarray, lanes,
              bus: EventBus, emit_writes: bool) -> None:
        if "race" not in self.bugs:
            super()._vote(tables, slots, exts, his, warps, lanes, bus,
                          emit_writes)
            return
        if emit_writes:
            bus.emit(SlotWrite(phase="construct", kind="vote", slots=slots,
                               warps=warps, lanes=lanes, atomic=False))
        # BUG: fancy-index += instead of atomicAdd — duplicate slots in
        # one vectorized step commit only the last lane's increment.
        rows = slots.astype(np.int64)
        cols = exts.astype(np.int64)
        hi = np.asarray(his, dtype=bool)
        tables.hi_q[rows[hi], cols[hi]] += 1
        tables.low_q[rows[~hi], cols[~hi]] += 1
        tables.count[rows] += 1

    def _barrier(self, warps: np.ndarray, active_counts: np.ndarray,
                 bus: EventBus) -> None:
        if "sync" not in self.bugs:
            super()._barrier(warps, active_counts, bus)
            return
        # BUG: the mask was captured before lanes retired — it still
        # names the full warp while only the pending lanes are active.
        stale = np.full(warps.size, self.warp_size, dtype=np.int64)
        bus.emit(BarrierSync(phase="construct", warps=warps,
                             mask_lanes=stale, active_lanes=active_counts))


class BuggyWalkPhase(WalkPhase):
    """A walk that resolves votes from never-written empty slots."""

    def __init__(self, *args, bugs: frozenset = frozenset(BUGS), **kwargs):
        super().__init__(*args, **kwargs)
        self.bugs = bugs

    def _on_probe_miss(self, found_slot: np.ndarray, missing: np.ndarray,
                       u: np.ndarray, miss: np.ndarray,
                       slots: np.ndarray) -> None:
        if "init" not in self.bugs:
            super()._on_probe_miss(found_slot, missing, u, miss, slots)
            return
        # BUG: the empty slot is treated as the key's slot; its votes
        # (all zeros — never written) feed the extension resolution.
        found_slot[u[miss]] = slots[miss]


class BuggyDemoKernel(LocalAssemblyKernel):
    """CUDA-shaped kernel with selectable seeded protocol bugs.

    Args:
        device: simulated GPU (defaults to the A100 when created through
            the backend registry).
        bugs: which of :data:`BUGS` to seed; defaults to all three.
    """

    protocol = ProtocolCosts(
        name="BUGGY-DEMO",
        iteration_intops=8,
        iteration_syncs=2,
        merges_in_iteration=True,
    )

    def __init__(self, device: DeviceSpec, *, bugs=BUGS, **kwargs) -> None:
        super().__init__(device, **kwargs)
        unknown = [b for b in bugs if b not in BUGS]
        if unknown:
            raise ValueError(f"unknown demo bug(s) {unknown!r}; "
                             f"choose from {BUGS}")
        self.bugs = frozenset(bugs)
        self.construct_cls = partial(BuggyConstructPhase, bugs=self.bugs)
        self.walk_cls = partial(BuggyWalkPhase, bugs=self.bugs)


register_backend(
    "buggy-demo",
    lambda device=None, **kw: BuggyDemoKernel(
        device if device is not None else A100, **kw),
    overwrite=True,  # replaces the lazy stub repro.kernels registers
)
