"""The dynamic sanitizer: an EventBus subscriber shadowing slot state.

Modeled on NVIDIA's ``compute-sanitizer``: the engine's phases emit
:class:`~repro.kernels.engine.events.SlotWrite`,
:class:`~repro.kernels.engine.events.SlotRead`, and
:class:`~repro.kernels.engine.events.BarrierSync` records at every
protocol-relevant point (gated on ``bus.wants``, so runs without a
sanitizer pay nothing), and the :class:`Sanitizer` maintains *shadow*
per-slot state for the launch's hash tables to validate three protocol
invariants:

* **racecheck** — a slot-state commit not performed with an atomic
  read-modify-write primitive must not carry same-slot conflicts within
  one vectorized step; duplicates in a non-atomic batch are lost updates
  (exactly what ``atomicCAS`` / ``atomicAdd`` exist to prevent in the
  paper's Appendix-A protocols).
* **synccheck** — every warp barrier's mask must name exactly the lanes
  active at the barrier; divergence is the classic stale
  ``__activemask()`` bug (lanes sync that are not there, or lanes are
  there that the mask will not release).
* **initcheck** — a read of a slot's value region (the walk's vote
  resolution) must be preceded by a write to it; reading a never-voted
  slot is uninitialized device memory reaching the memory model.

Findings carry contig / warp / lane / slot provenance
(:class:`~repro.sanitize.report.SanitizerFinding`) and collect into a
:class:`~repro.sanitize.report.SanitizerReport`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.engine.events import (
    BarrierSync,
    LaunchDone,
    LaunchStarted,
    SlotRead,
    SlotWrite,
)
from repro.sanitize.report import (
    CHECKS,
    SanitizerFinding,
    SanitizerReport,
    parse_checks,
)

#: Findings reported per event batch, per checker (one batch can carry
#: thousands of identical violations; examples suffice for diagnosis).
MAX_FINDINGS_PER_BATCH = 8


class Sanitizer:
    """EventBus subscriber running the selected checkers over one run.

    Args:
        checks: ``"all"``, a check name, a comma-separated string, or an
            iterable of names from :data:`~repro.sanitize.report.CHECKS`.
        max_findings: cap on findings retained in the report.
    """

    handled_events = (LaunchStarted, SlotWrite, SlotRead, BarrierSync,
                      LaunchDone)

    def __init__(self, checks="all", max_findings: int = 1000) -> None:
        self.checks = parse_checks(checks) or CHECKS
        self.report = SanitizerReport(max_findings=max_findings)
        self._launch = -1
        self._contig_ids: tuple = ()
        self._written: np.ndarray | None = None   # value region committed

    # ------------------------------------------------------------------

    def _contig(self, warp: int) -> int:
        if 0 <= warp < len(self._contig_ids):
            return int(self._contig_ids[warp])
        return -1

    def _add(self, checker: str, phase: str, message: str, *,
             warp: int = -1, lane: int = -1, slot: int = -1) -> None:
        self.report.add(SanitizerFinding(
            checker=checker, phase=phase, message=message,
            launch=self._launch, contig_id=self._contig(warp),
            warp=warp, lane=lane, slot=slot,
        ))

    # ------------------------------------------------------------------

    def handle(self, event, bus) -> None:
        if isinstance(event, LaunchStarted):
            self._launch += 1
            self._contig_ids = event.contig_ids
            self._written = np.zeros(max(event.total_slots, 0), dtype=bool)
        elif isinstance(event, SlotWrite):
            if "racecheck" in self.checks and not event.atomic:
                self._racecheck(event)
            if self._written is not None and event.kind == "vote":
                self._written[event.slots] = True
        elif isinstance(event, SlotRead):
            if "initcheck" in self.checks:
                self._initcheck(event)
        elif isinstance(event, BarrierSync):
            if "synccheck" in self.checks:
                self._synccheck(event)

    # ------------------------------------------------------------------
    # checkers

    def _racecheck(self, event: SlotWrite) -> None:
        """Same-slot conflicts within one non-atomic vectorized commit."""
        slots = np.asarray(event.slots)
        if slots.size < 2:
            return
        order = np.argsort(slots, kind="stable")
        s = slots[order]
        dup = np.nonzero(s[1:] == s[:-1])[0]
        for j in dup[:MAX_FINDINGS_PER_BATCH]:
            first, second = int(order[j]), int(order[j + 1])
            w1, w2 = int(event.warps[first]), int(event.warps[second])
            l1 = int(event.lanes[first]) if event.lanes is not None else -1
            l2 = int(event.lanes[second]) if event.lanes is not None else -1
            self._add(
                "racecheck", event.phase,
                f"conflicting non-atomic {event.kind} writes to one slot: "
                f"warp {w1} lane {l1} vs warp {w2} lane {l2} in the same "
                f"vectorized step (lost update)",
                warp=w2, lane=l2, slot=int(s[j]),
            )
        if dup.size > MAX_FINDINGS_PER_BATCH:
            self.report.suppressed += int(dup.size) - MAX_FINDINGS_PER_BATCH

    def _synccheck(self, event: BarrierSync) -> None:
        """Barrier masks must name exactly the active lanes."""
        mask = np.asarray(event.mask_lanes)
        active = np.asarray(event.active_lanes)
        bad = np.nonzero(mask != active)[0]
        for j in bad[:MAX_FINDINGS_PER_BATCH]:
            w = int(event.warps[j])
            self._add(
                "synccheck", event.phase,
                f"barrier mask names {int(mask[j])} lane(s) but "
                f"{int(active[j])} are active at the barrier "
                f"(stale/divergent sync mask)",
                warp=w,
            )
        if bad.size > MAX_FINDINGS_PER_BATCH:
            self.report.suppressed += int(bad.size) - MAX_FINDINGS_PER_BATCH

    def _initcheck(self, event: SlotRead) -> None:
        """Value-region reads must follow a value-region write."""
        if self._written is None:
            return
        slots = np.asarray(event.slots)
        if slots.size == 0:
            return
        bad = np.nonzero(~self._written[slots])[0]
        for j in bad[:MAX_FINDINGS_PER_BATCH]:
            self._add(
                "initcheck", event.phase,
                f"{event.kind} of a slot whose value region was never "
                f"written (uninitialized device memory)",
                warp=int(event.warps[j]), slot=int(slots[j]),
            )
        if bad.size > MAX_FINDINGS_PER_BATCH:
            self.report.suppressed += int(bad.size) - MAX_FINDINGS_PER_BATCH
