"""Static prong of repro.sanitize: the repo-invariant lint engine.

Importing the package loads the rule catalog (rules register themselves
into :data:`~repro.sanitize.lint.engine.RULES` at import time).
"""

from repro.sanitize.lint.engine import (
    RULES,
    LintFinding,
    LintRule,
    iter_python_files,
    lint_paths,
    lint_source,
    register_rule,
    render_json,
    render_text,
    select_rules,
)
from repro.sanitize.lint import rules as _rules  # noqa: F401  (registers REP00x)

__all__ = [
    "RULES",
    "LintFinding",
    "LintRule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "select_rules",
]
