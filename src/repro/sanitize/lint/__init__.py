"""Static prong of repro.sanitize: the repo-invariant lint engine.

Importing the package loads the rule catalog (rules register themselves
into :data:`~repro.sanitize.lint.engine.RULES` at import time).
"""

from repro.sanitize.lint.engine import (
    RULES,
    LintFinding,
    LintRule,
    expand_select,
    iter_python_files,
    lint_paths,
    lint_source,
    register_rule,
    render_json,
    render_text,
    select_rules,
)
from repro.sanitize.lint import rules as _rules  # noqa: F401  (registers REP00x)
# The semantic rules live one package over but share this catalog; load
# them here so RULES is always the complete REP001–REP013 set no matter
# which sanitize entry point gets imported first.
from repro.sanitize.semantic import rules as _semantic  # noqa: F401

__all__ = [
    "RULES",
    "LintFinding",
    "LintRule",
    "expand_select",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "select_rules",
]
