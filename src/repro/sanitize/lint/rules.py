"""The repo-invariant rule catalog (REP001–REP008).

Each rule guards a property this reproduction's correctness or
reproducibility depends on; the ids are stable and documented in API.md.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.sanitize.lint.engine import LintFinding, LintRule, register_rule

#: Module aliases accepted as "this is NumPy".
_NUMPY_NAMES = ("np", "numpy")


def _is_np_random_attr(node: ast.AST) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in _NUMPY_NAMES)


@register_rule
class UnseededRandomRule(LintRule):
    """REP001: randomness must be seeded (reproducibility is the product).

    Flags ``default_rng()`` calls without a seed argument and any call
    into the legacy global-state ``np.random.*`` API (``np.random.rand``,
    ``np.random.seed``, ...) — both make runs irreproducible or couple
    them through hidden global state. ``np.random.default_rng(seed)``
    and passing an explicit ``np.random.Generator`` are the sanctioned
    patterns.
    """

    rule_id = "REP001"
    description = ("unseeded default_rng() or legacy global np.random.* "
                   "call")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # default_rng(...) — bare or via np.random — needs a seed arg
            is_default_rng = (
                (isinstance(func, ast.Name) and func.id == "default_rng")
                or (isinstance(func, ast.Attribute)
                    and func.attr == "default_rng")
            )
            if is_default_rng:
                if not node.args and not node.keywords:
                    yield self.finding(
                        node, path,
                        "default_rng() without a seed: pass an explicit "
                        "seed so runs are reproducible")
                continue
            # legacy global-state API: np.random.<anything lowercase>
            if (isinstance(func, ast.Attribute)
                    and _is_np_random_attr(func.value)
                    and not func.attr[:1].isupper()):
                yield self.finding(
                    node, path,
                    f"legacy global np.random.{func.attr}(): use a seeded "
                    f"np.random.default_rng(seed) Generator instead")


@register_rule
class IncompleteBackendRule(LintRule):
    """REP002: a backend must implement the full ExecutionBackend protocol.

    A root class (no bases to inherit from) named ``*Backend`` or
    ``*Kernel`` that defines one of ``run`` / ``run_schedule`` but not
    the other would register fine and fail only when the suite calls the
    missing half.
    """

    rule_id = "REP002"
    description = ("backend class implements only part of the "
                   "ExecutionBackend protocol (run / run_schedule)")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(("Backend", "Kernel")):
                continue
            bases = [b.id if isinstance(b, ast.Name)
                     else getattr(b, "attr", "") for b in node.bases]
            if any(b not in ("object", "Protocol") for b in bases):
                continue  # inherits — give the subclass benefit of the doubt
            methods = {n.name for n in node.body
                       if isinstance(n, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
            have = methods & {"run", "run_schedule"}
            if len(have) == 1:
                missing = ({"run", "run_schedule"} - have).pop()
                yield self.finding(
                    node, path,
                    f"class {node.name} defines {have.pop()!r} but not "
                    f"{missing!r}; implement the full ExecutionBackend "
                    f"protocol")


@register_rule
class UndeclaredHandledEventRule(LintRule):
    """REP003: events a subscriber handles must be declared.

    ``EventBus.wants`` skips building hot-loop events no subscriber
    *declares*; an ``isinstance(event, X)`` branch in ``handle`` for an
    event class missing from the ``handled_events`` tuple silently never
    fires on gated events — data loss, not an error.
    """

    rule_id = "REP003"
    description = ("handle() dispatches on an event type missing from "
                   "the class's handled_events declaration")

    @staticmethod
    def _declared(node: ast.ClassDef) -> set[str] | None:
        """Names in a literal ``handled_events = (...)`` class attribute."""
        for stmt in node.body:
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target]
                       if isinstance(stmt, ast.AnnAssign) and stmt.value
                       else [])
            for t in targets:
                if isinstance(t, ast.Name) and t.id == "handled_events":
                    value = stmt.value
                    if isinstance(value, (ast.Tuple, ast.List)):
                        return {e.id if isinstance(e, ast.Name)
                                else getattr(e, "attr", "")
                                for e in value.elts}
                    return None  # not a literal tuple (property, None, ...)
        return None

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            declared = self._declared(node)
            if declared is None:
                continue
            handle = next((n for n in node.body
                           if isinstance(n, ast.FunctionDef)
                           and n.name == "handle"), None)
            if handle is None:
                continue
            for call in ast.walk(handle):
                if not (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Name)
                        and call.func.id == "isinstance"
                        and len(call.args) == 2):
                    continue
                classinfo = call.args[1]
                names = (classinfo.elts
                         if isinstance(classinfo, ast.Tuple)
                         else [classinfo])
                for ref in names:
                    name = (ref.id if isinstance(ref, ast.Name)
                            else getattr(ref, "attr", ""))
                    # only class-looking names: locals holding event
                    # types (lazy-import pattern) are lowercase
                    if name and name[:1].isupper() and name not in declared:
                        yield self.finding(
                            call, path,
                            f"{node.name}.handle dispatches on {name} but "
                            f"handled_events does not declare it; gated "
                            f"events would silently never arrive")


@register_rule
class SlotAccessCategoryRule(LintRule):
    """REP004: every SlotAccess emission must name its access category.

    Uncategorized slot traffic cannot be attributed by trace consumers
    (replay, sanitizer, future tooling); ``kind=`` is required at every
    construction site even though the dataclass defaults it.
    """

    rule_id = "REP004"
    description = "SlotAccess(...) constructed without an explicit kind="

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else getattr(func, "attr", ""))
            if name != "SlotAccess":
                continue
            if not any(kw.arg == "kind" for kw in node.keywords):
                yield self.finding(
                    node, path,
                    "SlotAccess emitted without kind=: name the access "
                    "category (probe / claim / vote / vote_read)")


@register_rule
class FloatInIntopPathRule(LintRule):
    """REP005: INTOP-counted paths must stay in integer arithmetic.

    The paper's Table V counts *integer* operations; a float literal or
    true division sneaking into ``hashing/opcount.py`` (or any
    op-counting ``*_intops`` / ``intops_*`` function) silently breaks
    the INTOP identity the whole performance model anchors on (``//`` is
    the sanctioned division). Rate *conversions* like ``gintops_per_second``
    are not op counters and are out of scope.
    """

    rule_id = "REP005"
    description = ("float constant or true division inside an "
                   "INTOP-counted path")

    def _scan(self, fn: ast.FunctionDef, path: str,
              seen: set) -> Iterator[LintFinding]:
        for node in ast.walk(fn):
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if key not in seen:
                    seen.add(key)
                    yield self.finding(
                        node, path,
                        f"true division in INTOP-counted {fn.name}(): "
                        f"use // to stay in integer arithmetic")
            elif (isinstance(node, ast.Constant)
                    and isinstance(node.value, float)):
                if key not in seen:
                    seen.add(key)
                    yield self.finding(
                        node, path,
                        f"float constant {node.value!r} in INTOP-counted "
                        f"{fn.name}(): Table V counts integer ops only")

    @staticmethod
    def _is_counter(name: str) -> bool:
        """Op-*counting* names: hash_intops, intops_per_loop_cycle — not
        unit conversions like gintops / gintops_per_second."""
        return name.endswith("_intops") or name.startswith("intops")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        whole_module = Path(path).name == "opcount.py"
        seen: set = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if whole_module or self._is_counter(node.name):
                yield from self._scan(node, path, seen)


@register_rule
class ScalarLoopInHotPhaseRule(LintRule):
    """REP006: engine phase hot paths must stay lockstep NumPy.

    The megabatch refactor's contract (DESIGN.md decision #14) is that
    the construct/walk hot paths loop only over *algorithmic* dimensions
    — walk steps, waves, probe iterations, all ``range(...)`` bounded —
    never over per-warp or per-lane arrays. A ``for``/``zip`` loop (or a
    comprehension / generator expression) iterating anything else inside
    those methods reintroduces the O(warps) Python costs the refactor
    removed, and regresses silently: results stay correct while the
    engine drops back to scalar speed. Per-warp Python belongs in the
    scalar parity oracle (:mod:`repro.kernels.engine.oracle`), which
    this rule deliberately does not cover.
    """

    rule_id = "REP006"
    description = ("per-element Python loop inside an engine phase hot "
                   "path (construct/walk)")

    #: Hot methods of the phase modules; everything reachable per warp.
    _HOT_FUNCS = frozenset({"run", "_insert_wave", "_lookup"})

    @staticmethod
    def _applies(path: str) -> bool:
        p = Path(path)
        return p.name in ("construct.py", "walk.py") and "engine" in p.parts

    @staticmethod
    def _is_range_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "range")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        if not self._applies(path):
            return
        for fn in ast.walk(tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            if fn.name not in self._HOT_FUNCS:
                continue
            for node in ast.walk(fn):
                if (isinstance(node, ast.For)
                        and not self._is_range_call(node.iter)):
                    yield self.finding(
                        node, path,
                        f"per-element for loop in hot {fn.name}(): "
                        f"vectorize over the array, or move the scalar "
                        f"path to repro.kernels.engine.oracle")
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    if all(self._is_range_call(g.iter)
                           for g in node.generators):
                        continue
                    yield self.finding(
                        node, path,
                        f"per-element comprehension in hot {fn.name}(): "
                        f"vectorize over the array, or move the scalar "
                        f"path to repro.kernels.engine.oracle")


@register_rule
class BlockingCallInServeRule(LintRule):
    """REP007: serve coroutines must never block the event loop.

    The assembly service's contract (DESIGN.md decision #15) is that the
    request path stays fully async — one stalled coroutine freezes every
    connected client AND the coalescing window timers, turning a
    latency-bounding feature into a latency cliff. Synchronous file,
    process, and sleep calls therefore may only run through
    ``run_in_executor``. The rule flags the known blockers when called
    directly inside an ``async def`` of :mod:`repro.serve`; sync helper
    ``def``/``lambda`` bodies nested in a coroutine are exempt — they
    are exactly the things handed to executors.
    """

    rule_id = "REP007"
    description = "blocking call on the event loop in a serve coroutine"

    #: ``module.name`` attribute calls that block the calling thread.
    _BLOCKING_ATTRS = {
        "time": frozenset({"sleep"}),
        "os": frozenset({"fsync"}),
        "subprocess": frozenset({"run", "call", "check_call",
                                 "check_output"}),
    }

    #: Method names that do file I/O regardless of the receiver (Path).
    _IO_METHODS = frozenset({"read_text", "write_text", "read_bytes",
                             "write_bytes"})

    @staticmethod
    def _applies(path: str) -> bool:
        return "serve" in Path(path).parts

    def _blocking_desc(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open()"
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in self._IO_METHODS:
            return f".{func.attr}()"
        if isinstance(func.value, ast.Name):
            if func.attr in self._BLOCKING_ATTRS.get(func.value.id, ()):
                return f"{func.value.id}.{func.attr}()"
        return None

    def _scan(self, fn: ast.AsyncFunctionDef,
              path: str) -> Iterator[LintFinding]:
        def visit(node: ast.AST) -> Iterator[LintFinding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.Lambda,
                                      ast.AsyncFunctionDef)):
                    # sync defs/lambdas are executor material; nested
                    # coroutines get their own pass from check()
                    continue
                if isinstance(child, ast.Call):
                    desc = self._blocking_desc(child)
                    if desc is not None:
                        yield self.finding(
                            child, path,
                            f"blocking {desc} in coroutine {fn.name}(): "
                            f"run it via the event loop's run_in_executor "
                            f"(or asyncio.sleep for delays)")
                yield from visit(child)
        yield from visit(fn)

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        if not self._applies(path):
            return
        for fn in ast.walk(tree):
            if isinstance(fn, ast.AsyncFunctionDef):
                yield from self._scan(fn, path)


@register_rule
class SilentFailureHandlingRule(LintRule):
    """REP008: fault-tolerance paths must not hide or hammer failures.

    Two anti-patterns defeat the resilience layer (DESIGN.md decision
    #16) from the inside, scoped to :mod:`repro.serve` and
    :mod:`repro.resilience`:

    * a broad ``except Exception`` / bare ``except`` whose body is only
      ``pass`` — the failure vanishes instead of reaching the
      supervisor, journal, or circuit breaker that exists to see it;
    * a retry loop (a ``while``/``for`` whose body catches
      ``TransientError`` or ``BackendLaunchError``) with no backoff call
      anywhere in the loop — lockstep hot-retry is exactly the storm the
      jittered :func:`~repro.resilience.backoff_delay` schedule defuses.

    Narrow excepts, handlers that log/re-raise/fold the error into a
    result, and loops that sleep between attempts all pass.
    """

    rule_id = "REP008"
    description = ("swallowed broad except or backoff-free retry loop "
                   "in a resilience path")

    _BROAD = frozenset({"Exception", "BaseException"})
    _TRANSIENT = frozenset({"TransientError", "BackendLaunchError"})
    #: Call names that count as backoff between attempts: the shared
    #: schedule helpers plus any direct sleep (time./asyncio./injected).
    _BACKOFF_CALLS = frozenset({"sleep", "backoff_delay",
                                "retry_transient"})

    @staticmethod
    def _applies(path: str) -> bool:
        parts = Path(path).parts
        return "serve" in parts or "resilience" in parts

    @staticmethod
    def _exc_names(node: ast.AST | None) -> set[str]:
        """Exception class names in an ``except`` clause's type."""
        if node is None:
            return set()
        elts = node.elts if isinstance(node, ast.Tuple) else [node]
        return {e.id if isinstance(e, ast.Name)
                else getattr(e, "attr", "") for e in elts}

    @staticmethod
    def _pass_only(handler: ast.ExceptHandler) -> bool:
        return all(isinstance(stmt, ast.Pass)
                   or (isinstance(stmt, ast.Expr)
                       and isinstance(stmt.value, ast.Constant)
                       and stmt.value.value is Ellipsis)
                   for stmt in handler.body)

    def _has_backoff(self, loop: ast.AST) -> bool:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else getattr(func, "attr", ""))
            if name in self._BACKOFF_CALLS:
                return True
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        if not self._applies(path):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                names = self._exc_names(handler.type)
                broad = handler.type is None or names & self._BROAD
                if broad and self._pass_only(handler):
                    caught = ", ".join(sorted(names)) or "everything"
                    yield self.finding(
                        handler, path,
                        f"except catching {caught} with a pass-only body "
                        f"swallows the failure: narrow it, fold it into "
                        f"the result, or let the supervisor see it")
        yield from self._scan_retry_loops(tree, path)

    def _scan_retry_loops(self, tree: ast.Module,
                          path: str) -> Iterator[LintFinding]:
        flagged: set[int] = set()

        def visit(node: ast.AST,
                  loop: ast.AST | None) -> Iterator[LintFinding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.While, ast.For, ast.AsyncFor)):
                    yield from visit(child, child)
                    continue
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    yield from visit(child, None)  # new retry scope
                    continue
                if (isinstance(child, ast.ExceptHandler)
                        and loop is not None
                        and id(loop) not in flagged):
                    caught = self._exc_names(child.type) & self._TRANSIENT
                    if caught and not self._has_backoff(loop):
                        flagged.add(id(loop))
                        yield self.finding(
                            child, path,
                            f"retry loop catches {', '.join(sorted(caught))}"
                            f" without backoff: sleep a backoff_delay() "
                            f"between attempts (or use retry_transient)")
                yield from visit(child, loop)

        yield from visit(tree, None)
