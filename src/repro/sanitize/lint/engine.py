"""The repo-invariant lint engine: AST rules, findings, and runners.

A :class:`LintRule` parses nothing itself — it visits an :mod:`ast` tree
(one per file) and yields :class:`LintFinding` records. The engine
(:func:`lint_source`, :func:`lint_paths`) handles file discovery,
parsing, and rendering (``text`` / ``json``). Rules register in
:data:`RULES` keyed by their stable rule id (``REP0xx``), which is what
``repro lint --select`` and the finding output use.

These are *repo invariants*, not style: each rule encodes a property the
reproduction's correctness or reproducibility depends on (seeded
randomness, complete backend protocols, honest event declarations,
categorized slot traffic, integer-only INTOP paths). The catalog lives
in API.md.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str       #: stable rule id ("REP001", ...)
    path: str       #: file the finding is in
    line: int       #: 1-based line
    col: int        #: 0-based column
    message: str    #: what is wrong and what to do instead

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class LintRule:
    """Base class: subclasses set the id/description and implement check."""

    rule_id: str = ""
    description: str = ""

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, path: str, message: str) -> LintFinding:
        return LintFinding(rule=self.rule_id, path=path,
                           line=getattr(node, "lineno", 0),
                           col=getattr(node, "col_offset", 0),
                           message=message)


#: rule id -> rule instance; populated by :func:`register_rule`.
RULES: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the catalog (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate lint rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls()
    return cls


_RANGE_RE = re.compile(r"(REP\d{3})-(REP\d{3})\Z")


def expand_select(select: Iterable[str]) -> list[str]:
    """Expand selection items into concrete rule ids.

    Accepts exact ids (``REP006``), inclusive ranges over the registered
    catalog (``REP009-REP013``), and prefixes (``REP0``, ``REP01``).
    Unknown items — exact ids not in the catalog, ranges or prefixes
    matching nothing — raise the same ``unknown lint rule id(s)`` error
    the exact-id path always has. Order is preserved, duplicates drop.
    """
    out: list[str] = []
    missing: list[str] = []
    for item in select:
        if item in RULES:
            ids = [item]
        else:
            m = _RANGE_RE.fullmatch(item)
            if m is not None:
                lo, hi = sorted((m.group(1), m.group(2)))
                ids = [r for r in sorted(RULES) if lo <= r <= hi]
            elif item.startswith("REP") and not item.isalpha():
                ids = [r for r in sorted(RULES) if r.startswith(item)]
            else:
                ids = []
        if not ids:
            missing.append(item)
        out.extend(i for i in ids if i not in out)
    if missing:
        raise ValueError(f"unknown lint rule id(s) {missing!r}; "
                         f"known: {sorted(RULES)}")
    return out


def select_rules(select: Iterable[str] | None = None) -> list[LintRule]:
    """The rule set to run: all registered rules, or just ``select``
    items (exact ids, ``REP0xx-REP0yy`` ranges, or ``REP0``-style
    prefixes — see :func:`expand_select`)."""
    if select is None:
        return list(RULES.values())
    return [RULES[s] for s in expand_select(select)]


def lint_source(source: str, path: str = "<string>",
                rules: Iterable[LintRule] | None = None) -> list[LintFinding]:
    """Lint one source string; returns findings sorted by location."""
    tree = ast.parse(source, filename=path)
    findings: list[LintFinding] = []
    for rule in (rules if rules is not None else select_rules()):
        findings.extend(rule.check(tree, path))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted for stability."""
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths(paths: Iterable[str | Path],
               rules: Iterable[LintRule] | None = None) -> list[LintFinding]:
    """Lint files and directories (recursively); returns all findings."""
    rules = list(rules if rules is not None else select_rules())
    findings: list[LintFinding] = []
    for file in iter_python_files(paths):
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file), rules))
    return findings


def render_text(findings: list[LintFinding]) -> str:
    lines = [f.format() for f in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: list[LintFinding]) -> str:
    return json.dumps([asdict(f) for f in findings], indent=2)
