"""Interprocedural rules REP009–REP013 over the project model.

Each rule subclasses :class:`SemanticRule`: it registers in the shared
:data:`~repro.sanitize.lint.engine.RULES` catalog (so ``--select`` /
``--explain`` treat the whole catalog uniformly) but its per-file
``check`` is a no-op — the real work happens in ``check_project``,
which sees the :class:`~repro.sanitize.semantic.callgraph.Project`
built from every file at once. ``repro lint`` runs both passes;
:func:`~repro.sanitize.lint.engine.lint_source` (single string, no
project) naturally runs only the syntactic catalog.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.sanitize.lint.engine import LintFinding, LintRule, register_rule
from repro.sanitize.semantic.callgraph import Project


class SemanticRule(LintRule):
    """A whole-program rule: findings come from the project model."""

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        return iter(())  # semantic rules have no single-file component

    def check_project(self, project: Project) -> Iterator[LintFinding]:
        raise NotImplementedError

    def project_finding(self, path: str, site: dict,
                        message: str) -> LintFinding:
        return LintFinding(rule=self.rule_id, path=path,
                           line=site.get("line", 0), col=site.get("col", 0),
                           message=message)


def is_semantic(rule: LintRule) -> bool:
    return isinstance(rule, SemanticRule)


@register_rule
class TransitiveBlockingRule(SemanticRule):
    """REP009: no coroutine may reach a blocking call through any chain.

    Generalizes REP007 across file boundaries: an ``async def`` must not
    transitively call ``time.sleep``, ``open()``, synchronous ``Path``
    I/O, ``os.fsync``, or ``subprocess.*`` through any resolvable call
    chain — the event loop stalls just as hard two frames down. Direct
    blockers inside the coroutine itself stay REP007 findings; this rule
    reports only depth >= 1 chains, with the shortest offending path.
    Push the blocking leaf through ``run_in_executor`` instead (passing
    the function as a reference keeps it off the coroutine's call graph).
    """

    rule_id = "REP009"
    description = ("coroutine transitively reaches a blocking call "
                   "(event-loop stall beyond REP007's single file)")

    def check_project(self, project: Project) -> Iterator[LintFinding]:
        for key in sorted(project.functions):
            fn = project.functions[key]
            if not fn["is_async"]:
                continue
            chain = project.blocking_chain(key)
            if chain is None:
                continue
            hops = " -> ".join(
                project.functions[hop["func"]]["qualname"] for hop in chain)
            leaf = chain[-1]["blocking"]["desc"]
            yield self.project_finding(
                fn["path"], chain[0]["call"],
                f"coroutine {fn['qualname']} reaches blocking {leaf} via "
                f"{hops}; move the blocking leaf behind run_in_executor")


@register_rule
class DeterminismTaintRule(SemanticRule):
    """REP010: nondeterministic values must not reach identity sinks.

    Checkpoint payloads (``save_payload`` / ``payload_crc``), content
    fingerprints (``*fingerprint*`` call arguments and return values),
    and the ``"counters"`` identity block of ``BENCH_*.json`` are
    compared byte-for-byte across runs — a wall-clock read, an unseeded
    RNG draw, ``os.getpid``, or a ``uuid`` flowing into them breaks
    resume identity and the bench gates nondeterministically. Taint is
    tracked through local assignments, ``self.*`` attributes, and
    resolvable call returns (interprocedural fixpoint). Timing that
    feeds *metrics* keys (``wall_s``, throughput) is fine — those are
    measurements, not identity.
    """

    rule_id = "REP010"
    description = ("nondeterministic value (clock/RNG/pid/uuid) flows "
                   "into a checkpoint payload, fingerprint, or bench "
                   "identity counter")

    def check_project(self, project: Project) -> Iterator[LintFinding]:
        for key in sorted(project.functions):
            fn = project.functions[key]
            for sink in fn["sinks"]:
                sources = project.tag_sources(fn, sink)
                if not sources:
                    continue
                yield self.project_finding(
                    fn["path"], sink,
                    f"nondeterministic {', '.join(sources)} flows into "
                    f"{sink['sink']} in {fn['qualname']}; derive identity "
                    f"payloads from seeded/input state only")


@register_rule
class EventContractRule(SemanticRule):
    """REP011: every emitted event is handled, every handled event real.

    The EventBus contract is cross-module: ``bus.emit(X(...))`` in one
    file is only useful if some subscriber declares ``X`` in its
    ``handled_events`` tuple (possibly in another package), and a
    declared event class that nothing ever emits is dead wiring that
    silently decays (the ``bus.wants`` gating makes both mistakes
    invisible at runtime). Emission sites are constructor calls inside
    ``*.emit(...)``; declarations are literal tuples/lists assigned to
    ``handled``-named targets (including ``handled.append(X)``
    builders). Variable emits (``bus.emit(ev)``) are opaque and exempt.
    """

    rule_id = "REP011"
    description = ("event emitted with no handled_events subscriber "
                   "anywhere, or declared but never emitted")

    def check_project(self, project: Project) -> Iterator[LintFinding]:
        declared: dict[str, tuple[str, dict]] = {}
        emitted: dict[str, tuple[str, dict]] = {}
        for summ in project.summaries:
            for decl in summ["declared_events"]:
                for name in decl["names"]:
                    declared.setdefault(name, (summ["path"], decl))
            for emit in summ["emits"]:
                emitted.setdefault(emit["event"], (summ["path"], emit))
        for name in sorted(emitted):
            if name in declared:
                continue
            path, site = emitted[name]
            yield self.project_finding(
                path, site,
                f"event {name} is emitted here but no subscriber declares "
                f"it in handled_events anywhere in the tree")
        for name in sorted(declared):
            if name in emitted:
                continue
            path, site = declared[name]
            yield self.project_finding(
                path, site,
                f"event {name} is declared in handled_events but nothing "
                f"in the tree ever emits it (dead subscription)")


@register_rule
class DtypeWidthRule(SemanticRule):
    """REP012: fingerprint arithmetic stays on the 64-bit contract.

    The rolling k-mer fingerprints and table keys are specified as
    int64/uint64; a ``*`` or ``+`` on an int32/uint32 operand in a
    murmur/fingerprint path silently wraps at 2**32 and desynchronizes
    fingerprints across backends. MurmurHash2 is the one *intentional*
    32-bit wraparound — which is why its multiplies sit inside
    ``with np.errstate(over="ignore"):`` blocks; that context is the
    sanctioned opt-in and such sites are exempt. Anything narrow and
    unguarded in fingerprint scope gets flagged: either widen to 64-bit
    or wrap the deliberate wraparound in ``np.errstate(over=...)``.
    """

    rule_id = "REP012"
    description = ("narrow (u)int8/16/32 multiply/add in a fingerprint/"
                   "murmur path outside np.errstate(over=...)")

    def check_project(self, project: Project) -> Iterator[LintFinding]:
        for key in sorted(project.functions):
            fn = project.functions[key]
            for site in fn["narrow_sites"]:
                yield self.project_finding(
                    fn["path"], site,
                    f"narrow-dtype '{site['op']}' in {fn['qualname']} can "
                    f"wrap off the int64 fingerprint contract; widen to "
                    f"64-bit or guard with np.errstate(over='ignore')")


@register_rule
class CheckpointCodecRule(SemanticRule):
    """REP013: checkpoint codec halves must agree on their key sets.

    Every stage payload has a writer (``X_to_payload`` / ``X_to_dict`` /
    ``X_to_lists``, or a stage's ``run``) and a reader (``X_from_*`` /
    ``restore``). A key the writer emits but the reader never touches is
    dead weight that masks schema rot; a key the reader expects but the
    writer never produces is a resume-time ``KeyError`` waiting for the
    one crash that exercises it. Halves pair by name stem within a
    module; pairs where either side is opaque (``**kwargs`` splats,
    ``dataclasses.asdict`` round-trips, wholesale ``dict(payload)``)
    are skipped rather than guessed at.
    """

    rule_id = "REP013"
    description = ("checkpoint codec drift: writer/reader key sets of a "
                   "payload pair disagree")

    def check_project(self, project: Project) -> Iterator[LintFinding]:
        pairs: dict[tuple[str, str], dict[str, list[dict]]] = {}
        paths: dict[str, str] = {}
        for summ in project.summaries:
            paths[summ["module"]] = summ["path"]
            for codec in summ["codecs"]:
                slot = pairs.setdefault((summ["module"], codec["pair"]), {})
                slot.setdefault(codec["role"], []).append(codec)
        for (module, pair) in sorted(pairs):
            halves = pairs[(module, pair)]
            writers = halves.get("writer", [])
            readers = halves.get("reader", [])
            if not writers or not readers:
                continue  # unpaired halves may pair in another layer
            if any(c["opaque"] for c in writers + readers):
                continue
            written = {k for c in writers for k in c["keys"]}
            read = {k for c in readers for k in c["keys"]}
            path = paths[module]
            for key in sorted(written - read):
                c = writers[0]
                yield self.project_finding(
                    path, c,
                    f"codec pair '{pair}': {c['where']} writes key "
                    f"'{key}' that no paired reader ever reads")
            for key in sorted(read - written):
                c = readers[0]
                yield self.project_finding(
                    path, c,
                    f"codec pair '{pair}': {c['where']} reads key "
                    f"'{key}' that no paired writer ever writes")
