"""Project model: symbol table, module graph, and call resolution.

A :class:`Project` is built purely from per-file module summaries
(:func:`repro.sanitize.semantic.summary.extract_summary`) — it never
re-opens source files, which is what lets the incremental cache feed it
from disk. It indexes every function/method/coroutine under a stable
key ``module:qualname``, resolves call sites between them, and answers
the interprocedural questions the REP009–REP013 rules ask (transitive
blocking reachability, nondeterministic return taint).

Resolution is deliberately *under*-approximate — sound for the repo's
idioms, silent elsewhere: module-level names, one-hop import aliases,
``self.method()`` with a one-level base-class walk, and constructor-
based type inference for locals (``x = ClassName(...)``) and instance
attributes (``self.x = ClassName(...)``). Dynamic dispatch, ``getattr``
indirection, decorators that swap callables, and re-exported names stay
unresolved (see the DESIGN.md soundness notes).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.sanitize.semantic.summary import TAINT_SOURCE_ATTRS

FuncKey = str  # "module:qualname"


class Project:
    """Whole-program index over module summaries."""

    def __init__(self, summaries: Iterable[dict]) -> None:
        self.summaries: list[dict] = sorted(summaries,
                                            key=lambda s: s["module"])
        self.functions: dict[FuncKey, dict] = {}
        self._module_funcs: dict[str, dict[str, FuncKey]] = {}
        self._classes: dict[str, list[tuple[str, dict]]] = {}
        self._class_by_module: dict[tuple[str, str], dict] = {}
        self._methods: dict[tuple[str, str, str], FuncKey] = {}
        self._imports: dict[str, dict[str, str]] = {}
        self._modules: set[str] = set()
        for summ in self.summaries:
            mod = summ["module"]
            self._modules.add(mod)
            self._imports[mod] = summ.get("imports", {})
            funcs = self._module_funcs.setdefault(mod, {})
            for fn in summ["functions"]:
                key = f"{mod}:{fn['qualname']}"
                entry = dict(fn)
                entry["module"] = mod
                entry["key"] = key
                entry["path"] = summ["path"]
                self.functions[key] = entry
                if fn["cls"] is None and "." not in fn["qualname"]:
                    funcs[fn["name"]] = key
                elif fn["cls"] is not None and fn["qualname"].count(".") == 1:
                    self._methods[(mod, fn["cls"], fn["name"])] = key
            for cls in summ.get("classes", []):
                self._classes.setdefault(cls["name"], []).append((mod, cls))
                self._class_by_module[(mod, cls["name"])] = cls
        self._reach_cache: dict[FuncKey, list[dict] | None] = {}
        self._return_sources: dict[FuncKey, frozenset[str]] | None = None

    # -- symbol lookup -------------------------------------------------

    def _find_class(self, name: str, prefer_module: str) -> \
            tuple[str, dict] | None:
        hit = self._class_by_module.get((prefer_module, name))
        if hit is not None:
            return (prefer_module, hit)
        cands = self._classes.get(name, [])
        if len(cands) == 1:
            return cands[0]
        return None  # absent or ambiguous: stay silent

    def _method_key(self, module: str, cls_name: str, method: str,
                    depth: int = 0) -> FuncKey | None:
        key = self._methods.get((module, cls_name, method))
        if key is not None:
            return key
        if depth >= 3:
            return None
        cls = self._class_by_module.get((module, cls_name))
        if cls is None:
            found = self._find_class(cls_name, module)
            if found is None:
                return None
            module, cls = found
            key = self._methods.get((module, cls_name, method))
            if key is not None:
                return key
        for base in cls.get("bases", []):
            found = self._find_class(base, module)
            if found is None:
                continue
            key = self._method_key(found[0], base, method, depth + 1)
            if key is not None:
                return key
        return None

    def _resolve_dotted(self, dotted: str) -> FuncKey | None:
        """``pkg.mod.fn`` / ``pkg.mod.Class`` → function key."""
        head, _, leaf = dotted.rpartition(".")
        if not head:
            return None
        if head in self._modules:
            key = self._module_funcs.get(head, {}).get(leaf)
            if key is not None:
                return key
            if (head, leaf) in self._class_by_module:
                return self._method_key(head, leaf, "__init__")
        if dotted in self._modules:  # "import pkg.mod" style alias
            return None
        return None

    # -- call resolution -----------------------------------------------

    def resolve_call(self, caller: dict, call: dict) -> FuncKey | None:
        """The project function a call site targets, if determinable."""
        module = caller["module"]
        kind, name, recv = call["kind"], call["name"], call["recv"]
        if kind == "name":
            key = self._module_funcs.get(module, {}).get(name)
            if key is not None and key != caller["key"]:
                return key
            if key is not None:
                return key  # direct recursion is a real edge
            dotted = self._imports.get(module, {}).get(name)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            if (module, name) in self._class_by_module:
                return self._method_key(module, name, "__init__")
            return None
        if kind == "self":
            if caller["cls"] is None:
                return None
            return self._method_key(module, caller["cls"], name)
        if kind == "self_attr":
            if caller["cls"] is None:
                return None
            cls = self._class_by_module.get((module, caller["cls"]))
            if cls is None:
                return None
            recv_type = cls.get("attr_types", {}).get(recv)
            if recv_type is None:
                return None
            found = self._find_class(recv_type, module)
            if found is None:
                return None
            return self._method_key(found[0], recv_type, name)
        if kind == "attr":
            recv_type = caller.get("var_types", {}).get(recv)
            if recv_type is not None:
                found = self._find_class(recv_type, module)
                if found is not None:
                    return self._method_key(found[0], recv_type, name)
                return None
            dotted = self._imports.get(module, {}).get(recv)
            if dotted is not None:
                if dotted in self._modules:
                    return self._module_funcs.get(dotted, {}).get(name)
                return self._resolve_dotted(f"{dotted}.{name}")
            return None
        return None

    def edges_from(self, key: FuncKey) -> Iterator[tuple[FuncKey, dict]]:
        """Resolved outgoing call edges ``(callee key, call site)``."""
        caller = self.functions[key]
        for call in caller["calls"]:
            target = self.resolve_call(caller, call)
            if target is not None:
                yield (target, call)

    # -- REP009: transitive blocking reachability ----------------------

    def blocking_chain(self, key: FuncKey) -> list[dict] | None:
        """Shortest call chain from ``key`` to a directly-blocking
        function, or ``None``. Each hop is ``{"func": key, "call": site}``
        and the last hop carries ``"blocking"`` — the offending call.
        Only *transitive* blocking counts: direct blockers in ``key``
        itself are REP007's business and are not reported here.
        """
        if key in self._reach_cache:
            return self._reach_cache[key]
        parent: dict[FuncKey, tuple[FuncKey, dict]] = {}
        seen = {key}
        queue: deque[FuncKey] = deque([key])
        hit: FuncKey | None = None
        while queue and hit is None:
            cur = queue.popleft()
            for target, call in sorted(
                    self.edges_from(cur),
                    key=lambda e: (e[1]["line"], e[1]["col"], e[0])):
                if target in seen:
                    continue
                seen.add(target)
                parent[target] = (cur, call)
                if self.functions[target]["blocking"]:
                    hit = target
                    break
                queue.append(target)
        if hit is None:
            self._reach_cache[key] = None
            return None
        chain: list[dict] = []
        cur = hit
        while cur != key:
            prev, call = parent[cur]
            chain.append({"func": cur, "call": call})
            cur = prev
        chain.reverse()
        chain[-1]["blocking"] = self.functions[hit]["blocking"][0]
        self._reach_cache[key] = chain
        return chain

    # -- REP010: interprocedural return taint --------------------------

    def return_sources(self) -> dict[FuncKey, frozenset[str]]:
        """Per function: nondeterminism sources its return value can
        carry, closed over the call graph (fixpoint over return tags).
        """
        if self._return_sources is not None:
            return self._return_sources
        sources: dict[FuncKey, set[str]] = {
            key: set(fn["return_tags"]["sources"])
            for key, fn in self.functions.items()}
        changed = True
        while changed:
            changed = False
            for key, fn in self.functions.items():
                for kind, name, recv in (tuple(c) for c in
                                         fn["return_tags"]["calls"]):
                    target = self.resolve_call(
                        fn, {"kind": kind, "name": name, "recv": recv})
                    if target is None:
                        continue
                    extra = sources[target] - sources[key]
                    if extra:
                        sources[key] |= extra
                        changed = True
        self._return_sources = {k: frozenset(v) for k, v in sources.items()}
        return self._return_sources

    def tag_sources(self, caller: dict, tags: dict) -> list[str]:
        """All nondeterminism sources a tag set can carry: its direct
        sources, the closed return taint of every resolvable call, and
        bare-name calls that alias a stdlib source (``from time import
        monotonic`` — invisible to per-file extraction by design)."""
        out = set(tags.get("sources", ()))
        closed = self.return_sources()
        imports = self._imports.get(caller["module"], {})
        for kind, name, recv in (tuple(c) for c in tags.get("calls", ())):
            target = self.resolve_call(
                caller, {"kind": kind, "name": name, "recv": recv})
            if target is not None:
                out |= closed[target]
            elif kind == "name" and name in imports:
                owner, _, attr = imports[name].rpartition(".")
                if attr in TAINT_SOURCE_ATTRS.get(owner, ()):
                    out.add(f"{owner}.{attr}()")
        return sorted(out)
