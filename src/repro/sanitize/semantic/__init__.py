"""Whole-program semantic analysis: call graph + interprocedural rules.

The per-file lint catalog (:mod:`repro.sanitize.lint`) cannot see a
blocking call two frames below a coroutine or an event emitted in one
module and handled in another. This package adds the cross-file half:
per-module fact extraction (:mod:`~repro.sanitize.semantic.summary`),
a project symbol table + call graph over those facts
(:mod:`~repro.sanitize.semantic.callgraph`), rules REP009–REP013
(:mod:`~repro.sanitize.semantic.rules`), and the analyzer pipeline with
noqa pragmas, baseline, SARIF output, and the content-hash incremental
cache (:mod:`~repro.sanitize.semantic.analyzer`).

Importing the package registers REP009–REP013 into the shared
:data:`~repro.sanitize.lint.engine.RULES` catalog.
"""

from repro.sanitize.semantic.analyzer import (
    UNUSED_SUPPRESSION_EXPLANATION,
    UNUSED_SUPPRESSION_ID,
    AnalysisResult,
    analyze_paths,
    extract_pragmas,
    load_baseline,
    render_sarif,
    rules_fingerprint,
    write_baseline,
)
from repro.sanitize.semantic.callgraph import Project
from repro.sanitize.semantic.rules import SemanticRule, is_semantic
from repro.sanitize.semantic.summary import extract_summary

__all__ = [
    "UNUSED_SUPPRESSION_EXPLANATION",
    "UNUSED_SUPPRESSION_ID",
    "AnalysisResult",
    "Project",
    "SemanticRule",
    "analyze_paths",
    "extract_pragmas",
    "extract_summary",
    "is_semantic",
    "load_baseline",
    "render_sarif",
    "rules_fingerprint",
    "write_baseline",
]
