"""The analysis pipeline: cache, suppressions, baseline, and output.

:func:`analyze_paths` is the one entry point ``repro lint`` uses. It
runs the syntactic catalog per file and the semantic catalog over the
whole-program :class:`~repro.sanitize.semantic.callgraph.Project`, then
applies the two escape hatches in order:

1. ``# repro: noqa [REP0xx[,REP0yy]]`` pragmas suppress findings on
   their line; a pragma that suppresses nothing is itself reported as
   :data:`UNUSED_SUPPRESSION_ID` (``REP000``) so dead suppressions
   cannot accumulate.
2. A committed baseline file (``LINT_BASELINE.json``) grandfathers
   known findings by ``(rule, path, message)`` — new code must ship
   clean while pre-existing debt stays visible in the file, not in CI.

The incremental cache stores, per file content hash, the syntactic
findings (for the *whole* catalog, filtered at query time so one cache
serves any ``--select``) plus the module summary and pragma table. Warm
runs re-parse only changed files; the semantic pass always re-runs over
the (cheap) summaries, so cold and warm runs are byte-identical by
construction. The cache key also folds in the rule sources — editing
any rule or the extractor invalidates every entry.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.sanitize.lint.engine import (
    RULES, LintFinding, select_rules,
)
from repro.sanitize.semantic.callgraph import Project
from repro.sanitize.semantic.rules import is_semantic
from repro.sanitize.semantic.summary import extract_summary, module_name_for

#: Pseudo-rule id for "this noqa pragma suppressed nothing". Engine-
#: generated rather than registered: it has no checker to run, cannot be
#: selected, and must never count toward the documented catalog.
UNUSED_SUPPRESSION_ID = "REP000"

UNUSED_SUPPRESSION_EXPLANATION = (
    "REP000: unused suppression. A '# repro: noqa' pragma on this line "
    "suppressed no finding (or names rule ids that produced none). Dead "
    "pragmas hide real regressions behind stale exemptions - delete the "
    "pragma, or narrow it to the rule ids that actually fire."
)

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s+(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*))?")

_CACHE_VERSION = 3


def extract_pragmas(source: str) -> list[dict]:
    """``# repro: noqa`` pragmas: ``{"line", "rules"}`` per occurrence
    (``rules == []`` means blanket — suppress every rule on the line).

    Only real COMMENT tokens count — the pragma text inside a docstring
    or string literal (like the ones in this module) is documentation,
    not a suppression.
    """
    pragmas = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _PRAGMA_RE.search(tok.string)
            if m is None:
                continue
            spec = m.group("rules")
            rules = ([] if spec is None
                     else [r.strip() for r in spec.split(",")])
            pragmas.append({"line": tok.start[0], "rules": rules})
    except tokenize.TokenError:
        pass  # ast.parse already rejected anything truly broken
    return pragmas


def rules_fingerprint() -> str:
    """Hash of the catalog ids plus the rule/extractor sources — any
    edit to what the analyzer *means* invalidates every cache entry."""
    import repro.sanitize.lint.rules as lint_rules
    import repro.sanitize.semantic.callgraph as cg
    import repro.sanitize.semantic.rules as sem_rules
    import repro.sanitize.semantic.summary as summ
    h = hashlib.sha256()
    h.update(f"v{_CACHE_VERSION}|{','.join(sorted(RULES))}|".encode())
    for mod in (lint_rules, sem_rules, summ, cg):
        h.update(Path(mod.__file__).read_bytes())
    return h.hexdigest()[:16]


def iter_files_with_roots(paths: Iterable[str | Path]) \
        -> Iterator[tuple[Path, Path]]:
    """``(root, file)`` pairs; module names derive from ``root``."""
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for file in sorted(p.rglob("*.py")):
                yield (p, file)
        else:
            yield (p.parent, p)


@dataclass
class AnalysisResult:
    """Everything one ``repro lint`` invocation produced."""

    findings: list[LintFinding]          #: post-suppression, post-baseline
    files: int = 0                       #: files analyzed
    reused: int = 0                      #: files served from the cache
    suppressed: int = 0                  #: findings eaten by noqa pragmas
    baselined: int = 0                   #: findings eaten by the baseline
    all_findings: list[LintFinding] = field(default_factory=list)
    project: Project | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _load_cache(path: Path | None, fingerprint: str) -> dict:
    if path is None or not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return {}
    if data.get("fingerprint") != fingerprint:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(path: Path | None, fingerprint: str, files: dict) -> None:
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": _CACHE_VERSION, "fingerprint": fingerprint,
               "files": files}
    path.write_text(json.dumps(payload, sort_keys=True),
                    encoding="utf-8")


def _analyze_file(root: Path, file: Path) -> dict:
    source = file.read_bytes().decode("utf-8")
    tree = ast.parse(source, filename=str(file))
    try:
        rel_parts = file.relative_to(root).parts
    except ValueError:
        rel_parts = (file.name,)
    module = module_name_for(rel_parts)
    findings: list[LintFinding] = []
    for rule in RULES.values():
        if not is_semantic(rule):
            findings.extend(rule.check(tree, str(file)))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return {
        "findings": [asdict(f) for f in findings],
        "summary": extract_summary(tree, str(file), module),
        "pragmas": extract_pragmas(source),
    }


def load_baseline(path: Path | None) -> set[tuple[str, str, str]]:
    """Grandfathered findings as ``(rule, path, message)`` triples."""
    if path is None or not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return {(f["rule"], f["path"], f["message"])
            for f in data.get("findings", [])}


def write_baseline(path: Path, findings: list[LintFinding]) -> None:
    """Commit the current findings as the accepted debt set."""
    payload = {
        "version": 1,
        "comment": ("Grandfathered repro-lint findings. Entries match on "
                    "(rule, path, message); remove them as the debt is "
                    "paid down. New findings never belong here without a "
                    "written justification in the PR."),
        "findings": [{"rule": f.rule, "path": f.path, "message": f.message}
                     for f in sorted(findings,
                                     key=lambda f: (f.path, f.line, f.col,
                                                    f.rule))
                     if f.rule != UNUSED_SUPPRESSION_ID],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _apply_suppressions(findings: list[LintFinding],
                        pragmas_by_path: dict[str, list[dict]]) \
        -> tuple[list[LintFinding], list[LintFinding], int]:
    """(kept, REP000 findings for unused pragmas, suppressed count)."""
    used: dict[tuple[str, int], set[str]] = {}
    kept: list[LintFinding] = []
    suppressed = 0
    index = {(path, p["line"]): p
             for path, pragmas in pragmas_by_path.items() for p in pragmas}
    for finding in findings:
        pragma = index.get((finding.path, finding.line))
        if pragma is not None and (not pragma["rules"]
                                   or finding.rule in pragma["rules"]):
            used.setdefault((finding.path, finding.line),
                            set()).add(finding.rule)
            suppressed += 1
            continue
        kept.append(finding)
    unused: list[LintFinding] = []
    for path, pragmas in pragmas_by_path.items():
        for pragma in pragmas:
            fired = used.get((path, pragma["line"]), set())
            if not pragma["rules"]:
                if fired:
                    continue
                message = ("unused suppression: this '# repro: noqa' "
                           "pragma suppressed no finding; delete it")
            else:
                idle = [r for r in pragma["rules"] if r not in fired]
                if not idle:
                    continue
                message = (f"unused suppression: {', '.join(idle)} "
                           f"produced no finding on this line; drop the "
                           f"id(s) or the pragma")
            unused.append(LintFinding(rule=UNUSED_SUPPRESSION_ID, path=path,
                                      line=pragma["line"], col=0,
                                      message=message))
    return kept, unused, suppressed


def analyze_paths(paths: Iterable[str | Path], *,
                  select: Iterable[str] | None = None,
                  cache_path: str | Path | None = None,
                  baseline_path: str | Path | None = None) -> AnalysisResult:
    """Run the full analysis over files and directories."""
    rules = select_rules(select)
    selected_ids = {r.rule_id for r in rules}
    semantic_rules = [r for r in rules if is_semantic(r)]

    cache_file = Path(cache_path) if cache_path is not None else None
    fingerprint = rules_fingerprint()
    cached = _load_cache(cache_file, fingerprint)
    fresh: dict[str, dict] = {}

    records: list[tuple[str, dict]] = []
    reused = 0
    for root, file in iter_files_with_roots(paths):
        key = str(file)
        digest = hashlib.sha256(file.read_bytes()).hexdigest()
        entry = cached.get(key)
        if entry is not None and entry.get("hash") == digest:
            record = entry["record"]
            reused += 1
        else:
            record = _analyze_file(root, file)
        fresh[key] = {"hash": digest, "record": record}
        records.append((key, record))
    _save_cache(cache_file, fingerprint, {**cached, **fresh})

    findings = [LintFinding(**f) for _, record in records
                for f in record["findings"] if f["rule"] in selected_ids]
    project = Project([record["summary"] for _, record in records])
    for rule in semantic_rules:
        findings.extend(rule.check_project(project))

    pragmas_by_path = {key: record["pragmas"] for key, record in records
                       if record["pragmas"]}
    kept, unused, suppressed = _apply_suppressions(findings, pragmas_by_path)
    all_findings = kept + unused

    baseline = load_baseline(
        Path(baseline_path) if baseline_path is not None else None)
    baselined = [f for f in all_findings
                 if (f.rule, f.path, f.message) in baseline]
    final = [f for f in all_findings
             if (f.rule, f.path, f.message) not in baseline]
    final.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule,
                                     f.message))
    return AnalysisResult(findings=final, files=len(records), reused=reused,
                          suppressed=suppressed, baselined=len(baselined),
                          all_findings=all_findings, project=project)


# ----------------------------------------------------------------------
# SARIF rendering
# ----------------------------------------------------------------------

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def render_sarif(findings: list[LintFinding]) -> str:
    """SARIF 2.1.0 for code-scanning upload; deterministic output."""
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    rules = []
    for rule_id in rule_ids:
        rule = RULES.get(rule_id)
        desc = (rule.description if rule is not None
                else "unused '# repro: noqa' suppression pragma")
        rules.append({"id": rule_id,
                      "shortDescription": {"text": desc}})
    results = [{
        "ruleId": f.rule,
        "ruleIndex": rule_ids.index(f.rule),
        "level": "error",
        "message": {"text": f.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path.replace("\\", "/")},
                "region": {"startLine": max(f.line, 1),
                           "startColumn": f.col + 1},
            },
        }],
    } for f in findings]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro/API.md#repro-sanitize",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
