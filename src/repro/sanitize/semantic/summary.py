"""Per-file fact extraction for the whole-program semantic pass.

:func:`extract_summary` parses one module into a **module summary**: a
plain-dict record of everything the interprocedural rules (REP009–
REP013) need to reason across file boundaries — functions and their
resolved-enough call sites, async-ness, direct blocking calls,
determinism-taint facts, event emissions and ``handled_events``
declarations, payload codec key sets, and narrow-dtype arithmetic in
fingerprint paths.

Summaries are deliberately JSON-serializable (dicts, lists, strings,
ints only): the incremental analysis cache
(:mod:`repro.sanitize.semantic.analyzer`) persists them keyed by file
content hash, so a warm run rebuilds the project model from cached
summaries without re-parsing unchanged files. Nothing in this module
looks across files — that is :mod:`repro.sanitize.semantic.callgraph`'s
job, operating purely on these summaries.
"""

from __future__ import annotations

import ast
from typing import Iterable

#: Module aliases accepted as "this is NumPy".
_NUMPY_NAMES = ("np", "numpy")

#: ``module.attr`` calls that block the calling thread (REP007's set).
BLOCKING_ATTRS = {
    "time": frozenset({"sleep"}),
    "os": frozenset({"fsync"}),
    "subprocess": frozenset({"run", "call", "check_call", "check_output"}),
}

#: Method names that do file I/O regardless of the receiver (Path).
BLOCKING_IO_METHODS = frozenset({"read_text", "write_text", "read_bytes",
                                 "write_bytes"})

#: ``module.attr`` calls whose *value* is nondeterministic across runs
#: (wall clock, process identity, entropy) — REP010 taint sources.
TAINT_SOURCE_ATTRS = {
    "time": frozenset({"time", "monotonic", "perf_counter",
                       "perf_counter_ns", "time_ns", "monotonic_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "os": frozenset({"getpid", "urandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}


#: Call names whose arguments are REP010 sinks (checkpoint payloads and
#: content fingerprints must be derived from deterministic inputs).
TAINT_SINK_NAMES = frozenset({"save_payload", "payload_crc"})

#: Narrow NumPy integer dtypes off the repo's int64/uint64 contract.
NARROW_DTYPES = frozenset({"int8", "uint8", "int16", "uint16",
                           "int32", "uint32"})


def module_name_for(path_parts: Iterable[str]) -> str:
    """Dotted module name from path parts relative to the scan root."""
    parts = [p[:-3] if p.endswith(".py") else p for p in path_parts]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_narrow_dtype_ref(node: ast.AST) -> bool:
    """``np.uint32`` / bare ``uint32`` / ``'uint32'`` dtype references."""
    if isinstance(node, ast.Attribute):
        return (node.attr in NARROW_DTYPES
                and isinstance(node.value, ast.Name)
                and node.value.id in _NUMPY_NAMES)
    if isinstance(node, ast.Name):
        return node.id in NARROW_DTYPES
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and node.value in NARROW_DTYPES
    return False


class _TaintTags:
    """A value's provenance: direct sources plus calls it flows through."""

    __slots__ = ("sources", "calls")

    def __init__(self) -> None:
        self.sources: set[str] = set()
        self.calls: set[tuple[str, str, str]] = set()  # (kind, name, recv)

    def merge(self, other: "_TaintTags") -> bool:
        before = (len(self.sources), len(self.calls))
        self.sources |= other.sources
        self.calls |= other.calls
        return (len(self.sources), len(self.calls)) != before

    def __bool__(self) -> bool:
        return bool(self.sources or self.calls)

    def to_dict(self) -> dict:
        return {"sources": sorted(self.sources),
                "calls": [list(c) for c in sorted(self.calls)]}


def _classify_call(call: ast.Call) -> tuple[str, str, str] | None:
    """``(kind, name, receiver)`` of a call site, or ``None`` if opaque.

    Kinds: ``name`` (``foo()``), ``self`` (``self.m()``), ``self_attr``
    (``self.x.m()``), ``attr`` (``alias.m()``). Receivers deeper than one
    attribute hop are opaque — a documented soundness limit.
    """
    func = call.func
    if isinstance(func, ast.Name):
        return ("name", func.id, "")
    if not isinstance(func, ast.Attribute):
        return None
    recv = func.value
    if isinstance(recv, ast.Name):
        if recv.id == "self":
            return ("self", func.attr, "")
        return ("attr", func.attr, recv.id)
    if (isinstance(recv, ast.Attribute) and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"):
        return ("self_attr", func.attr, recv.attr)
    return None


def _blocking_desc(call: ast.Call) -> str | None:
    """REP007's direct-blocker detector, applied to any function."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open()"
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in BLOCKING_IO_METHODS:
        return f".{func.attr}()"
    if isinstance(func.value, ast.Name):
        if func.attr in BLOCKING_ATTRS.get(func.value.id, ()):
            return f"{func.value.id}.{func.attr}()"
    return None


def _source_desc(call: ast.Call) -> str | None:
    """Nondeterminism-source descriptor of a call, or ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner = func.value.id
        if func.attr in TAINT_SOURCE_ATTRS.get(owner, ()):
            return f"{owner}.{func.attr}()"
        if owner in _NUMPY_NAMES and func.attr == "random":
            return None  # np.random module ref, handled by callers below
    # np.random.<lowercase>() — the legacy global-state API
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in _NUMPY_NAMES
            and not func.attr[:1].isupper() and func.attr != "default_rng"):
        return f"np.random.{func.attr}()"
    # default_rng() with no seed argument
    name = _call_name(func)
    if name == "default_rng" and not call.args and not call.keywords:
        return "unseeded default_rng()"
    return None


def _class_ctor_name(value: ast.AST) -> str | None:
    """``ClassName`` when ``value`` is a plausible constructor call."""
    if not isinstance(value, ast.Call):
        return None
    name = _call_name(value.func)
    return name if name[:1].isupper() else None


# ----------------------------------------------------------------------
# per-function analysis
# ----------------------------------------------------------------------


class _FunctionAnalyzer:
    """Single-function fact collection (calls, blocking, local taint)."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 qualname: str, cls: str | None,
                 self_attr_tags: dict[str, _TaintTags],
                 fingerprint_scope: bool) -> None:
        self.fn = fn
        self.qualname = qualname
        self.cls = cls
        self.self_attr_tags = self_attr_tags
        self.fingerprint_scope = fingerprint_scope
        self.calls: list[dict] = []
        self.blocking: list[dict] = []
        self.var_types: dict[str, str] = {}
        self.var_tags: dict[str, _TaintTags] = {}
        self.return_tags = _TaintTags()
        self.sinks: list[dict] = []
        self.narrow_vars: set[str] = set()
        self.narrow_sites: list[dict] = []
        self.attr_writes: dict[str, _TaintTags] = {}

    # -- taint expression evaluation -----------------------------------

    def _expr_tags(self, node: ast.AST) -> _TaintTags:
        tags = _TaintTags()
        if node is None:
            return tags
        if isinstance(node, ast.Name):
            found = self.var_tags.get(node.id)
            if found is not None:
                tags.merge(found)
            return tags
        if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            found = self.self_attr_tags.get(node.attr)
            if found is not None:
                tags.merge(found)
            return tags
        if isinstance(node, ast.Call):
            src = _source_desc(node)
            if src is not None:
                tags.sources.add(src)
            site = _classify_call(node)
            if site is not None:
                tags.calls.add(site)
            for arg in node.args:
                tags.merge(self._expr_tags(arg))
            for kw in node.keywords:
                tags.merge(self._expr_tags(kw.value))
            return tags
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return tags  # separate scopes; lambdas run elsewhere
        for child in ast.iter_child_nodes(node):
            tags.merge(self._expr_tags(child))
        return tags

    # -- narrow-dtype tracking (REP012) --------------------------------

    def _is_narrow_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.narrow_vars
        if isinstance(node, ast.Subscript):
            return self._is_narrow_expr(node.value)
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in NARROW_DTYPES and isinstance(node.func, (ast.Attribute,
                                                                ast.Name)):
                if isinstance(node.func, ast.Name) or (
                        isinstance(node.func.value, ast.Name)
                        and node.func.value.id in _NUMPY_NAMES):
                    return True
            if name == "astype" and node.args \
                    and _is_narrow_dtype_ref(node.args[0]):
                return True
            if name in ("full", "zeros", "ones", "empty", "array", "asarray"):
                for kw in node.keywords:
                    if kw.arg == "dtype" and _is_narrow_dtype_ref(kw.value):
                        return True
            return False
        if isinstance(node, ast.BinOp):
            return (self._is_narrow_expr(node.left)
                    or self._is_narrow_expr(node.right))
        return False

    def _scan_narrow(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.With):
            inner = guarded or any(
                isinstance(item.context_expr, ast.Call)
                and _call_name(item.context_expr.func) == "errstate"
                and any(kw.arg == "over" for kw in item.context_expr.keywords)
                for item in node.items)
            for stmt in node.body:
                self._scan_narrow(stmt, inner)
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            if self._is_narrow_expr(node.value):
                self.narrow_vars.add(node.targets[0].id)
        if not guarded and self.fingerprint_scope:
            site = None
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, (ast.Mult, ast.Add)):
                if self._is_narrow_expr(node.left) \
                        or self._is_narrow_expr(node.right):
                    site = node
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Mult, ast.Add)):
                if self._is_narrow_expr(node.target) \
                        or self._is_narrow_expr(node.value):
                    site = node
            if site is not None:
                op = "*" if isinstance(site.op, ast.Mult) else "+"
                self.narrow_sites.append({
                    "op": op, "line": site.lineno, "col": site.col_offset})
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            self._scan_narrow(child, guarded)

    # -- main statement walk -------------------------------------------

    def run(self) -> None:
        for _ in range(2):  # second pass fixes loop-carried taint
            self._visit_block(self.fn.body)
        for stmt in self.fn.body:
            self._scan_narrow(stmt, False)
        self._collect_node(self.fn)

    def _visit_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs analyzed separately
        if isinstance(stmt, ast.Assign):
            tags = self._expr_tags(stmt.value)
            ctor = _class_ctor_name(stmt.value)
            for target in stmt.targets:
                self._assign(target, tags, ctor)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._expr_tags(stmt.value),
                         _class_ctor_name(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tags = self._expr_tags(stmt.value)
            tags.merge(self._expr_tags(stmt.target))
            self._assign(stmt.target, tags, None)
        elif isinstance(stmt, ast.Return):
            self.return_tags.merge(self._expr_tags(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self._expr_tags(stmt.iter), None)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._assign(item.optional_vars,
                                 self._expr_tags(item.context_expr), None)
            self._visit_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_block(stmt.body)
            for handler in stmt.handlers:
                self._visit_block(handler.body)
            self._visit_block(stmt.orelse)
            self._visit_block(stmt.finalbody)

    def _assign(self, target: ast.AST, tags: _TaintTags,
                ctor: str | None) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, tags, None)
            return
        if isinstance(target, ast.Name):
            slot = self.var_tags.setdefault(target.id, _TaintTags())
            slot.merge(tags)
            if ctor is not None:
                self.var_types[target.id] = ctor
            return
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            slot = self.attr_writes.setdefault(target.attr, _TaintTags())
            slot.merge(tags)

    # -- call / blocking / sink collection -----------------------------

    def _collect_node(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue  # separate scopes / executor material
            if isinstance(child, ast.Call):
                self._collect_call(child)
            elif isinstance(child, ast.Dict):
                self._collect_dict(child)
            self._collect_node(child)

    def _collect_call(self, call: ast.Call) -> None:
        site = _classify_call(call)
        if site is not None:
            kind, name, recv = site
            self.calls.append({"kind": kind, "name": name, "recv": recv,
                               "line": call.lineno, "col": call.col_offset})
        desc = _blocking_desc(call)
        if desc is not None:
            self.blocking.append({"desc": desc, "line": call.lineno,
                                  "col": call.col_offset})
        name = _call_name(call.func)
        if name in TAINT_SINK_NAMES or "fingerprint" in name.lower():
            tags = _TaintTags()
            for arg in call.args:
                tags.merge(self._expr_tags(arg))
            for kw in call.keywords:
                tags.merge(self._expr_tags(kw.value))
            if tags:
                self.sinks.append({"sink": f"{name}()",
                                   "line": call.lineno,
                                   "col": call.col_offset,
                                   **tags.to_dict()})

    def _collect_dict(self, node: ast.Dict) -> None:
        """Values under a literal ``"counters"`` key are identity sinks
        (the exact-equality half of the ``BENCH_*.json`` gate)."""
        for key, value in zip(node.keys, node.values):
            if (isinstance(key, ast.Constant) and key.value == "counters"):
                tags = self._expr_tags(value)
                if tags:
                    self.sinks.append({"sink": 'the "counters" identity block',
                                       "line": value.lineno,
                                       "col": value.col_offset,
                                       **tags.to_dict()})

    def summary(self) -> dict:
        sinks = list(self.sinks)
        if self.fingerprint_scope_fn() and self.return_tags:
            sinks.append({"sink": f"the return value of {self.fn.name}()",
                          "line": self.fn.lineno, "col": self.fn.col_offset,
                          **self.return_tags.to_dict()})
        return {
            "qualname": self.qualname,
            "cls": self.cls,
            "name": self.fn.name,
            "is_async": isinstance(self.fn, ast.AsyncFunctionDef),
            "line": self.fn.lineno,
            "col": self.fn.col_offset,
            "calls": self.calls,
            "blocking": self.blocking,
            "var_types": dict(sorted(self.var_types.items())),
            "return_tags": self.return_tags.to_dict(),
            "sinks": sinks,
            "narrow_sites": self.narrow_sites,
        }

    def fingerprint_scope_fn(self) -> bool:
        return "fingerprint" in self.fn.name.lower()


# ----------------------------------------------------------------------
# module-level extraction
# ----------------------------------------------------------------------


def _imports_of(tree: ast.Module) -> dict[str, str]:
    """alias -> dotted target for module-level imports."""
    imports: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return imports


def _declared_event_names(node: ast.AST) -> list[str] | None:
    """Names in a tuple/list literal of event classes, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names = []
    for elt in node.elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
        else:
            return None
    return names


def _collect_event_facts(tree: ast.Module, emits: list[dict],
                         declared: list[dict]) -> None:
    """Every ``*.emit(Ctor(...))`` site and ``handled_events`` literal.

    Declarations are recognized structurally: assignments whose target
    name mentions ``handled`` and whose value is a literal tuple/list of
    class names (covers class attributes, ``self.handled_events = ...``,
    and the lazy ``cls._handled = (...)`` pattern), plus ``.append(X)``
    calls on such a collector variable.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "emit" \
                    and len(node.args) == 1:
                arg = node.args[0]
                if isinstance(arg, ast.Call):
                    name = _call_name(arg.func)
                    if name[:1].isupper():
                        emits.append({"event": name, "line": node.lineno,
                                      "col": node.col_offset})
            elif isinstance(func, ast.Attribute) and func.attr == "append" \
                    and isinstance(func.value, ast.Name) \
                    and "handled" in func.value.id and len(node.args) == 1:
                names = _declared_event_names(ast.Tuple(elts=node.args))
                if names:
                    declared.append({"names": names, "line": node.lineno,
                                     "col": node.col_offset})
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            if value is None:
                continue
            for target in targets:
                tname = (target.id if isinstance(target, ast.Name)
                         else target.attr if isinstance(target, ast.Attribute)
                         else "")
                if "handled" not in tname:
                    continue
                inner = value
                if isinstance(inner, ast.Call) \
                        and _call_name(inner.func) == "tuple" \
                        and len(inner.args) == 1:
                    inner = inner.args[0]
                names = _declared_event_names(inner)
                if names:
                    declared.append({"names": names, "line": node.lineno,
                                     "col": node.col_offset})


_CODEC_WRITER_FORMS = ("_to_payload", "_to_dict", "_to_lists")
_CODEC_READER_FORMS = ("_from_payload", "_from_dict", "_from_lists")


def _codec_role(name: str) -> tuple[str, str, str] | None:
    """``(role, stem, form)`` for codec-shaped function names."""
    for form in _CODEC_WRITER_FORMS:
        if name.endswith(form):
            return ("writer", name[: -len(form)].lstrip("_"), form[4:])
    for form in _CODEC_READER_FORMS:
        if name.endswith(form):
            return ("reader", name[: -len(form)].lstrip("_"), form[6:])
    return None


def _dict_literal_keys(fn: ast.AST) -> tuple[list[str], bool]:
    """All literal dict keys in ``fn``; ``opaque`` when ``**`` or
    non-constant keys make the written key set unknowable."""
    keys: set[str] = set()
    opaque = True  # a writer with no dict literal at all is opaque
    for node in ast.walk(fn):
        if not isinstance(node, ast.Dict):
            continue
        opaque = False
        for key in node.keys:
            if key is None:  # {**other}
                return (sorted(keys), True)
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
            else:
                return (sorted(keys), True)
    return (sorted(keys), opaque)


def _read_keys(fn: ast.AST, param: str | None) -> tuple[list[str], bool]:
    """All string keys read via ``x["k"]`` / ``x.get("k")``; opaque when
    the payload parameter escapes wholesale (``**param``, ``dict(param)``)."""
    keys: set[str] = set()
    opaque = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "get" \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                keys.add(node.args[0].value)
            if param is not None:
                for kw in node.keywords:
                    if kw.arg is None and isinstance(kw.value, ast.Name) \
                            and kw.value.id == param:
                        opaque = True
                if _call_name(func) == "dict" and any(
                        isinstance(a, ast.Name) and a.id == param
                        for a in node.args):
                    opaque = True
    return (sorted(keys), opaque)


def _collect_codecs(tree: ast.Module, codecs: list[dict]) -> None:
    """Codec-pair halves: ``X_to_*``/``X_from_*`` functions and
    ``run``/``restore`` method pairs of pipeline-stage classes."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            role = _codec_role(node.name)
            if role is None:
                continue
            kind, stem, form = role
            if kind == "writer":
                keys, opaque = _dict_literal_keys(node)
            else:
                param = node.args.args[0].arg if node.args.args else None
                keys, opaque = _read_keys(node, param)
            codecs.append({"pair": f"{stem}:{form}", "role": kind,
                           "where": node.name, "keys": keys,
                           "opaque": opaque, "line": node.lineno,
                           "col": node.col_offset})
        elif isinstance(node, ast.ClassDef):
            methods = {n.name: n for n in node.body
                       if isinstance(n, ast.FunctionDef)}
            run, restore = methods.get("run"), methods.get("restore")
            if run is None or restore is None:
                continue
            keys, opaque = _dict_literal_keys(run)
            codecs.append({"pair": f"stage:{node.name}", "role": "writer",
                           "where": f"{node.name}.run", "keys": keys,
                           "opaque": opaque, "line": run.lineno,
                           "col": run.col_offset})
            args = restore.args.args
            param = args[-1].arg if args else None
            keys, opaque = _read_keys(restore, param)
            codecs.append({"pair": f"stage:{node.name}", "role": "reader",
                           "where": f"{node.name}.restore", "keys": keys,
                           "opaque": opaque, "line": restore.lineno,
                           "col": restore.col_offset})


def extract_summary(tree: ast.Module, path: str, module: str) -> dict:
    """Extract one module's whole-program facts (JSON-serializable)."""
    fingerprint_module = module.split(".")[-1] in ("murmur", "kmer")
    emits: list[dict] = []
    declared: list[dict] = []
    _collect_event_facts(tree, emits, declared)
    codecs: list[dict] = []
    _collect_codecs(tree, codecs)

    functions: list[dict] = []
    classes: list[dict] = []

    def analyze_fn(fn, qualname, cls, attr_tags):
        # Nested defs are separate scopes and stay unanalyzed (they are
        # usually executor/callback material here) — a documented
        # soundness limit, like lambdas.
        scope = (fingerprint_module
                 or "murmur" in fn.name.lower()
                 or "fingerprint" in fn.name.lower())
        an = _FunctionAnalyzer(fn, qualname, cls, attr_tags, scope)
        an.run()
        functions.append(an.summary())
        return an

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyze_fn(node, node.name, None, {})
        elif isinstance(node, ast.ClassDef):
            methods = [n for n in node.body
                       if isinstance(n, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))]
            # pass 1: instance-attribute constructor types and taint
            attr_types: dict[str, str] = {}
            attr_tags: dict[str, _TaintTags] = {}
            for meth in methods:
                an = _FunctionAnalyzer(meth, f"{node.name}.{meth.name}",
                                       node.name, {}, False)
                an.run()
                for stmt in ast.walk(meth):
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                ctor = _class_ctor_name(stmt.value)
                                if ctor is not None:
                                    attr_types[target.attr] = ctor
                for attr, tags in an.attr_writes.items():
                    attr_tags.setdefault(attr, _TaintTags()).merge(tags)
            # pass 2: full analysis with self-attr taint visible
            for meth in methods:
                analyze_fn(meth, f"{node.name}.{meth.name}", node.name,
                           attr_tags)
            bases = [b.id if isinstance(b, ast.Name)
                     else getattr(b, "attr", "") for b in node.bases]
            classes.append({"name": node.name, "line": node.lineno,
                            "bases": [b for b in bases if b],
                            "attr_types": dict(sorted(attr_types.items())),
                            "methods": sorted(m.name for m in methods)})

    return {
        "path": path,
        "module": module,
        "imports": _imports_of(tree),
        "functions": functions,
        "classes": classes,
        "emits": emits,
        "declared_events": declared,
        "codecs": codecs,
    }
