"""Structured sanitizer diagnostics (the ``compute-sanitizer`` report).

A :class:`SanitizerFinding` is one detected protocol violation with full
provenance — which checker fired, which launch, and the contig / warp /
lane / slot involved. A :class:`SanitizerReport` collects findings
across every launch of a kernel run (capped, so a systematically broken
kernel cannot allocate unboundedly) and renders them ``compute-sanitizer``
style: one line per finding plus a per-checker summary.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: The three checkers, in report order (modeled on compute-sanitizer's
#: racecheck / synccheck / initcheck tools).
CHECKS = ("racecheck", "synccheck", "initcheck")


def parse_checks(spec) -> tuple[str, ...]:
    """Normalize a check selection into an ordered tuple of check names.

    Accepts ``"all"``, one check name, a comma-separated string, or an
    iterable of names; raises :class:`ValueError` on unknown names.
    """
    if spec is None:
        return ()
    if isinstance(spec, str):
        names = [s.strip() for s in spec.split(",") if s.strip()]
        if "all" in names:
            return CHECKS
    else:
        names = [str(s) for s in spec]
    unknown = [n for n in names if n not in CHECKS]
    if unknown:
        raise ValueError(
            f"unknown sanitizer check(s) {unknown!r}; "
            f"choose from {CHECKS + ('all',)}")
    # preserve canonical order, drop duplicates
    return tuple(c for c in CHECKS if c in names)


@dataclass(frozen=True)
class SanitizerFinding:
    """One detected protocol violation, with provenance."""

    checker: str        #: "racecheck" | "synccheck" | "initcheck"
    phase: str          #: "construct" | "walk"
    message: str        #: human-readable diagnosis
    launch: int = -1    #: 0-based launch ordinal within the run
    contig_id: int = -1  #: contig involved (-1 when unattributable)
    warp: int = -1      #: warp involved
    lane: int = -1      #: lane involved (-1 when not lane-attributable)
    slot: int = -1      #: global table-slot index involved

    def format(self) -> str:
        where = [f"launch {self.launch}", f"phase {self.phase}"]
        if self.contig_id >= 0:
            where.append(f"contig {self.contig_id}")
        if self.warp >= 0:
            where.append(f"warp {self.warp}")
        if self.lane >= 0:
            where.append(f"lane {self.lane}")
        if self.slot >= 0:
            where.append(f"slot {self.slot}")
        return f"[{self.checker}] {self.message} ({', '.join(where)})"


@dataclass
class SanitizerReport:
    """All findings of one sanitized kernel run."""

    findings: list[SanitizerFinding] = field(default_factory=list)
    #: Findings dropped after :attr:`max_findings` was reached.
    suppressed: int = 0
    #: Cap on stored findings (diagnosis needs examples, not millions).
    max_findings: int = 1000

    def add(self, finding: SanitizerFinding) -> None:
        if len(self.findings) >= self.max_findings:
            self.suppressed += 1
            return
        self.findings.append(finding)

    def extend(self, other: "SanitizerReport") -> None:
        """Merge another report's findings (k-schedule accumulation)."""
        for finding in other.findings:
            self.add(finding)
        self.suppressed += other.suppressed

    @property
    def ok(self) -> bool:
        return not self.findings and not self.suppressed

    def count(self, checker: str | None = None) -> int:
        total = len(self.findings) + self.suppressed
        if checker is None:
            return total
        return sum(1 for f in self.findings if f.checker == checker)

    def by_checker(self, checker: str) -> list[SanitizerFinding]:
        return [f for f in self.findings if f.checker == checker]

    def summary(self) -> str:
        if self.ok:
            return "sanitizer: 0 findings"
        parts = [f"{c}={self.count(c)}" for c in CHECKS if self.count(c)]
        line = f"sanitizer: {self.count()} finding(s) ({', '.join(parts)})"
        if self.suppressed:
            line += f"; {self.suppressed} suppressed past the cap"
        return line

    def render(self) -> str:
        """The full diagnostic text: one line per finding + summary."""
        lines = [f.format() for f in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        """JSON-ready finding records."""
        return [asdict(f) for f in self.findings]
