"""Command-line interface: ``repro-locassm`` / ``python -m repro``.

Sub-commands::

    run         run local assembly on a .dat file (like the artifact's
                ``./ht_loc <input> <k> <output>``)
    assemble    run the end-to-end de novo pipeline (reads -> contigs)
                on a scenario preset or FASTQ file, with per-stage
                checkpoints and --resume
    generate    generate a Table II-shaped dataset into a .dat file
    experiment  regenerate a paper table or figure (table1..table7,
                fig5..fig9, all)
    export      write every table/figure as TSV + summary.json
    lint        run the repo-invariant static lint rules (REP001..)
    bench       run the pinned-scale engine benchmarks and gate against
                the committed BENCH_engine.json baseline
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.analysis.report import render_dict_table, render_resilience_summary
from repro.core.extension import PRODUCTION_POLICY
from repro.datasets.generate import generate_paper_dataset
from repro.datasets.scenarios import SCENARIOS
from repro.errors import ReproError
from repro.genomics.io import read_dat, write_dat, write_fasta
from repro.kernels import available_backends, backend_for_device, create_backend
from repro.kernels.engine import replay_l2_hit_rate, replay_suggested_l2_churn
from repro.resilience import OverflowPolicy
from repro.sanitize import parse_checks  # also registers the buggy-demo backend
from repro.simt.device import PLATFORMS, device_by_name

#: CLI spellings of the overflow policies.
_OVERFLOW_CHOICES = tuple(p.value for p in OverflowPolicy)


def _cmd_run(args: argparse.Namespace) -> int:
    contigs = read_dat(args.input)
    device = device_by_name(args.device)
    kw = {"policy": PRODUCTION_POLICY, "memory_model": args.memory_model,
          "overflow_policy": args.overflow_policy}
    if args.sanitize:
        if args.backend == "scalar":
            print("--sanitize shadows the SIMT warp protocols; the scalar "
                  "reference has none (pick a SIMT backend)", file=sys.stderr)
            return 2
        try:
            parse_checks(args.sanitize)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        kw["sanitize"] = args.sanitize
    if args.backend == "auto":
        kernel = backend_for_device(device, **kw)
    elif args.backend == "scalar":
        if args.memory_model == "trace":
            print("--memory-model trace needs a SIMT backend, not scalar",
                  file=sys.stderr)
            return 2
        # the scalar reference has no device model; run it device-less
        kernel = create_backend("scalar", policy=PRODUCTION_POLICY,
                                overflow_policy=args.overflow_policy)
    else:
        kernel = create_backend(args.backend, device=device, **kw)
    result = kernel.run(contigs, args.k)
    records = []
    for i, c in enumerate(contigs):
        right, rstate = result.right[i]
        left, lstate = result.left[i]
        records.append(
            (f"{c.name} left={lstate.value} right={rstate.value}",
             left + c.sequence + right)
        )
    write_fasta(records, args.output)
    p = result.profile
    print(f"{len(contigs)} contigs, {p.inserts} insertions, "
          f"{p.extension_bases} extension bases -> {args.output}")
    if result.degraded or result.retried:
        print(f"overflow handling ({args.overflow_policy}): "
              f"{len(result.degraded)} contig(s) degraded, "
              f"{len(result.retried)} recovered by grow-retry")
    if args.memory_model == "trace" and getattr(kernel, "last_replay", None):
        launches = kernel.last_replay
        accesses = sum(s.accesses for s in launches)
        hbm = sum(s.hbm_bytes for s in launches)
        hit = replay_l2_hit_rate(launches)
        churn = replay_suggested_l2_churn(device, launches)
        print(f"exact replay: {len(launches)} launches, {accesses} slot "
              f"accesses, L2 hit rate {hit:.3f}, {hbm / 1e9:.3f} GB HBM "
              f"(analytic model used l2_churn={kernel.l2_churn:g}; "
              f"replay suggests {churn:.2f})")
    if args.sanitize:
        report = kernel.last_sanitizer_report
        if report is not None:
            print(report.render())
            if not report.ok:
                return 1
    return 0


def _cmd_assemble(args: argparse.Namespace) -> int:
    import os
    from dataclasses import asdict

    from repro.genomics.io import read_fastq
    from repro.metahipmer.pipeline import (
        DeNovoAssembler,
        PipelineCheckpoint,
        reads_fingerprint,
    )

    if args.resume and not args.checkpoint_dir:
        print("--resume needs --checkpoint-dir", file=sys.stderr)
        return 2

    if args.scenario:
        scenario = SCENARIOS[args.scenario]
        reads = scenario.build(seed=args.seed).reads
        k_schedule = tuple(scenario.k_schedule)
        min_count = scenario.min_count
        source = f"scenario:{args.scenario}"
    else:
        try:
            reads = read_fastq(args.reads)
        except OSError as exc:
            print(f"error: cannot read {args.reads}: {exc}", file=sys.stderr)
            return 1
        k_schedule = (21, 33)
        min_count = 2
        source = args.reads
    if args.k_schedule:
        k_schedule = tuple(int(x) for x in args.k_schedule.split(","))
    if args.min_count is not None:
        min_count = args.min_count

    kernel = None
    if args.backend:
        if args.backend == "scalar":
            kernel = create_backend("scalar", policy=PRODUCTION_POLICY)
        else:
            kernel = create_backend(args.backend,
                                    device=device_by_name(args.device),
                                    policy=PRODUCTION_POLICY)

    asm = DeNovoAssembler(k_schedule=k_schedule, min_count=min_count,
                          kernel=kernel)

    checkpoint = None
    if args.checkpoint_dir:
        meta = {"source": source, "seed": args.seed,
                "reads": reads_fingerprint(reads),
                **asm.config_fingerprint()}
        checkpoint = PipelineCheckpoint(args.checkpoint_dir, meta=meta)
        if not args.resume:
            checkpoint.clear()

    # Test hook: REPRO_ASSEMBLE_CRASH_AFTER="<k>:<stage>" kills the
    # process right after that stage's checkpoint is durably written —
    # the crash/resume tests drive the pipeline through every possible
    # interruption point with it.
    crash_after = os.environ.get("REPRO_ASSEMBLE_CRASH_AFTER")

    def on_stage(k: int, stage: str, resumed: bool) -> None:
        print(f"[assemble] k={k} {stage}: "
              f"{'resumed' if resumed else 'done'}")
        if crash_after == f"{k}:{stage}" and not resumed:
            print(f"[assemble] injected crash after k={k} {stage}",
                  file=sys.stderr)
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(137)

    result = asm.assemble(reads, checkpoint=checkpoint, on_stage=on_stage)

    if args.output:
        write_fasta([(c.name, c.extended_sequence())
                     for c in result.contigs], args.output)
    if args.stats:
        # Purely functional (no timestamps / hostnames): a resumed run
        # must produce a byte-identical stats file.
        stats = {
            "source": source,
            "seed": args.seed,
            "k_schedule": list(k_schedule),
            "min_count": min_count,
            "reads": len(reads),
            "final_contigs": len(result.contigs),
            "final_n50": result.final_n50,
            "final_fingerprint": result.fingerprint(),
            "rounds": [asdict(r) for r in result.rounds],
        }
        with open(args.stats, "w") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
            fh.write("\n")
    from repro.analysis.report import render_assembly_report

    print(render_assembly_report(result, title=f"Assembly of {source}"))
    print(f"{len(reads)} reads -> {len(result.contigs)} contigs, "
          f"N50 {result.final_n50}, "
          f"fingerprint {result.fingerprint()[:16]}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    contigs = generate_paper_dataset(args.k, scale=args.scale, seed=args.seed)
    write_dat(contigs, args.output)
    reads = sum(c.depth for c in contigs)
    print(f"wrote {len(contigs)} contigs / {reads} reads to {args.output}")
    return 0


def _suite_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale, seed=args.seed,
        overflow_policy=getattr(args, "overflow_policy", "raise"),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        workers=getattr(args, "workers", 1),
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    suite = ExperimentSuite(_suite_config(args))
    if suite.config.workers > 1:
        # populate the run cache across processes up front; the table /
        # figure methods below then only read cached records
        suite.run_all()
    names = (
        ["table1", "table2", "table3", "table4", "table5", "table6", "table7",
         "fig5", "fig6", "fig7", "fig8", "fig9"]
        if args.name == "all"
        else [args.name]
    )
    for name in names:
        print(f"=== {name} (scale={args.scale}) ===")
        if name in ("table1", "table2", "table3", "table5", "table6"):
            rows = getattr(suite, name)()
            print(render_dict_table(rows))
        elif name in ("table4", "table7"):
            data = getattr(suite, name)()
            print(render_dict_table(data["rows"]))
            key = "average_P_arch" if name == "table4" else "average_P_alg"
            print(f"{key}: {data[key]}%")
        elif name == "fig5":
            print(render_dict_table(suite.figure5()))
        elif name == "fig6":
            print(json.dumps(suite.figure6(), indent=2))
        elif name in ("fig7", "fig8"):
            rows = suite.figure7() if name == "fig7" else suite.figure8()
            print(render_dict_table(rows))
        elif name == "fig9":
            rows = [
                {
                    "device": p.device, "k": p.k,
                    "pct_theoretical_II": round(100 * p.algorithm_efficiency, 1),
                    "pct_roofline": round(100 * p.architectural_efficiency, 1),
                    "speedup_by_AI": round(p.speedup_by_improving_ai, 2),
                    "speedup_by_perf": round(p.speedup_by_improving_performance, 2),
                }
                for p in suite.figure9()
            ]
            print(render_dict_table(rows))
        else:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        print()
    summary = suite.resilience_summary()
    if summary:
        print(render_resilience_summary(summary))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import inspect
    from pathlib import Path

    from repro.sanitize.lint import RULES, render_json, render_text
    from repro.sanitize.semantic import (
        UNUSED_SUPPRESSION_EXPLANATION,
        UNUSED_SUPPRESSION_ID,
        analyze_paths,
        render_sarif,
        write_baseline,
    )

    if args.explain:
        from repro.sanitize.lint import expand_select
        ids = [s.strip() for s in args.explain.split(",")]
        special = [i for i in ids if i == UNUSED_SUPPRESSION_ID]
        try:
            ids = special + expand_select(
                [i for i in ids if i != UNUSED_SUPPRESSION_ID])
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        chunks = []
        for rule_id in ids:
            if rule_id == UNUSED_SUPPRESSION_ID:
                chunks.append(UNUSED_SUPPRESSION_EXPLANATION)
                continue
            rule = RULES[rule_id]
            doc = inspect.cleandoc(rule.__doc__ or rule.description)
            chunks.append(f"{rule_id}: {rule.description}\n\n{doc}")
        print("\n\n".join(chunks))
        return 0

    select = ([s.strip() for s in args.select.split(",")]
              if args.select else None)
    baseline = args.baseline
    if baseline is None and Path("LINT_BASELINE.json").exists():
        baseline = "LINT_BASELINE.json"
    try:
        result = analyze_paths(args.paths, select=select,
                               cache_path=args.cache,
                               baseline_path=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = Path(baseline or "LINT_BASELINE.json")
        write_baseline(target, result.all_findings)
        n = sum(1 for f in result.all_findings
                if f.rule != UNUSED_SUPPRESSION_ID)
        print(f"wrote {n} baseline finding(s) to {target}", file=sys.stderr)
        return 0
    if args.format == "json":
        print(render_json(result.findings))
    elif args.format == "sarif":
        print(render_sarif(result.findings))
    else:
        print(render_text(result.findings))
    print(f"{result.files} file(s), {result.reused} cached, "
          f"{result.suppressed} suppressed, {result.baselined} baselined",
          file=sys.stderr)
    return result.exit_code


def _bench_one_suite(suite: str, args: argparse.Namespace) -> int:
    """Run one bench suite (engine or serve) and gate it; 0 = pass."""
    import os

    if suite == "engine":
        from repro.analysis.bench import (
            DEFAULT_BENCH_PATH,
            collect_bench,
            compare_bench,
        )
        default_path = DEFAULT_BENCH_PATH
        collect, compare = collect_bench, compare_bench
        floor = None
    else:
        from repro.analysis.bench_serve import (
            DEFAULT_BENCH_SERVE_PATH,
            collect_serve_bench,
            compare_serve_bench,
            floor_problems,
        )
        default_path = DEFAULT_BENCH_SERVE_PATH
        collect, compare = collect_serve_bench, compare_serve_bench
        floor = floor_problems

    output = args.output or default_path
    baseline_path = (args.baseline if args.baseline is not None
                     else default_path)
    baseline = None
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    current = collect(smoke_only=args.smoke, repeats=args.repeats)
    written = current
    if baseline is not None and baseline.get("schema") == current.get("schema"):
        # A --smoke run must not drop the baseline's other scales.
        written = dict(baseline)
        written["scales"] = {**baseline.get("scales", {}),
                             **current["scales"]}
    with open(output, "w") as fh:
        json.dump(written, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, scale in current["scales"].items():
        if suite == "engine":
            print(f"{name}: {scale['wall_s']:.4f} s wall, "
                  f"{scale['throughput_contigs_per_s']:.2f} contigs/s, "
                  f"peak RSS {scale['peak_rss_kb']} kB")
        else:
            print(f"{name}: coalesced {scale['coalesced']['requests_per_s']:.2f}"
                  f" req/s (p99 {scale['coalesced']['p99_latency_ms']:.0f} ms)"
                  f" vs solo {scale['solo']['requests_per_s']:.2f} req/s"
                  f" -> {scale['speedup']:.2f}x"
                  f" (floor {scale['min_speedup']:.1f}x)")
    print(f"wrote {output}")
    problems = list(floor(current)) if floor is not None else []
    if baseline is None:
        print("no baseline to compare against; commit the output to gate "
              "future runs")
    else:
        problems += compare(baseline, current,
                            max_regression=args.max_regression)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    if baseline is not None:
        print(f"baseline {baseline_path}: identity match, throughput "
              f"within {args.max_regression:.0%}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    suites = ("engine", "serve") if args.suite == "all" else (args.suite,)
    if len(suites) > 1 and (args.output or args.baseline):
        print("error: --output/--baseline need a single --suite",
              file=sys.stderr)
        return 2
    worst = 0
    for suite in suites:
        worst = max(worst, _bench_one_suite(suite, args))
    return worst


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import serve_forever

    fault_plan = None
    if args.fault_plan:
        fault_plan = _load_fault_plan(args.fault_plan)
    try:
        asyncio.run(serve_forever(
            args.host, args.port,
            drain_timeout_s=args.drain_timeout,
            window_s=args.window_ms / 1000.0,
            max_wave_warps=args.max_wave_warps,
            max_in_flight=args.max_in_flight,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            cache_entries=args.cache_entries,
            journal_path=args.journal,
            recover=args.recover,
            default_deadline_s=args.deadline_s,
            fault_plan=fault_plan))
    except KeyboardInterrupt:
        # fallback for platforms without loop signal handlers; with
        # them, SIGINT drains gracefully inside serve_forever instead
        print("repro serve: shut down")
    return 0


def _load_fault_plan(path: str):
    """Parse a JSON chaos plan file into a seeded FaultPlan."""
    from repro.resilience import FaultKind, FaultPlan, FaultSpec

    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ReproError(f"fault plan {path} must be a JSON object")
    faults = []
    for entry in doc.get("faults", []):
        kw = dict(entry)
        try:
            kw["kind"] = FaultKind(kw.pop("kind"))
            faults.append(FaultSpec(**kw))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad fault spec in {path}: {exc}") from None
    return FaultPlan(faults=tuple(faults), seed=int(doc.get("seed", 0)))


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_all

    suite = ExperimentSuite(_suite_config(args))
    written = export_all(suite, args.out_dir)
    print(f"wrote {len(written)} files to {args.out_dir}")
    summary = suite.resilience_summary()
    if summary:
        print(render_resilience_summary(summary))
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-locassm",
        description="de Bruijn local-assembly kernel reproduction (SC-W 2024)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run local assembly on a .dat file")
    p_run.add_argument("input")
    p_run.add_argument("k", type=int)
    p_run.add_argument("output")
    p_run.add_argument("--device", default="A100",
                       choices=[d.name for d in PLATFORMS])
    p_run.add_argument("--backend", default="auto",
                       choices=("auto",) + available_backends(),
                       help="execution backend (auto = match the device's "
                            "programming model)")
    p_run.add_argument("--memory-model", default="analytic",
                       choices=("analytic", "trace"),
                       help="analytic working-set cache model only "
                            "(default), or additionally replay every "
                            "table-slot access through the exact batched "
                            "cache hierarchy and report measured traffic")
    p_run.add_argument("--overflow-policy", default="raise",
                       choices=_OVERFLOW_CHOICES,
                       help="hash-table overflow semantics: abort (raise), "
                            "drop the contig like the GPU kernel's "
                            "'*hashtable full*' path, or grow-retry it")
    p_run.add_argument("--sanitize", default=None, metavar="CHECKS",
                       help="shadow the warp protocols compute-sanitizer "
                            "style: 'all' or a comma list of racecheck, "
                            "synccheck, initcheck; exits 1 on findings")
    p_run.set_defaults(func=_cmd_run)

    p_asm = sub.add_parser(
        "assemble",
        help="run the end-to-end de novo assembler (reads -> contigs)")
    asm_src = p_asm.add_mutually_exclusive_group(required=True)
    asm_src.add_argument("--scenario", choices=sorted(SCENARIOS),
                         help="built-in scenario preset to generate and "
                              "assemble")
    asm_src.add_argument("--reads", metavar="FASTQ",
                         help="assemble reads from a FASTQ file instead")
    p_asm.add_argument("--seed", type=int, default=None,
                       help="override the scenario's RNG seed")
    p_asm.add_argument("--k-schedule", default=None, metavar="K1,K2,...",
                       help="comma-separated k per round (default: the "
                            "scenario's schedule, or 21,33 for --reads)")
    p_asm.add_argument("--min-count", type=int, default=None,
                       help="k-mer error-filter / edge-support threshold")
    p_asm.add_argument("--backend", default=None,
                       choices=available_backends(),
                       help="run the local-assembly phase on a simulated "
                            "GPU backend (default: CPU pipeline)")
    p_asm.add_argument("--device", default="A100",
                       choices=[d.name for d in PLATFORMS],
                       help="device model for --backend")
    p_asm.add_argument("--checkpoint-dir", default=None,
                       help="persist every completed pipeline stage here")
    p_asm.add_argument("--resume", action="store_true",
                       help="restore completed stages from --checkpoint-dir "
                            "instead of starting over")
    p_asm.add_argument("--output", default=None, metavar="FASTA",
                       help="write final contigs here")
    p_asm.add_argument("--stats", default=None, metavar="JSON",
                       help="write per-round statistics here "
                            "(deterministic: resume-safe to diff)")
    p_asm.set_defaults(func=_cmd_assemble)

    p_gen = sub.add_parser("generate", help="generate a Table II-style dataset")
    p_gen.add_argument("k", type=int, choices=(21, 33, 55, 77))
    p_gen.add_argument("output")
    p_gen.add_argument("--scale", type=float, default=0.01)
    p_gen.add_argument("--seed", type=int, default=2024)
    p_gen.set_defaults(func=_cmd_generate)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", help="table1..table7, fig5..fig9, or 'all'")
    p_exp.add_argument("--scale", type=float, default=0.02)
    p_exp.add_argument("--seed", type=int, default=2024)
    p_exp.add_argument("--overflow-policy", default="raise",
                       choices=_OVERFLOW_CHOICES)
    p_exp.add_argument("--checkpoint-dir", default=None,
                       help="persist each completed (device, k) run here and "
                            "resume from matching checkpoints")
    p_exp.add_argument("--workers", type=int, default=1,
                       help="processes for the (device, k) grid; results "
                            "are identical to --workers 1, only faster")
    p_exp.set_defaults(func=_cmd_experiment)

    p_export = sub.add_parser("export",
                              help="write all tables/figures as TSV files")
    p_export.add_argument("out_dir")
    p_export.add_argument("--scale", type=float, default=0.02)
    p_export.add_argument("--seed", type=int, default=2024)
    p_export.add_argument("--overflow-policy", default="raise",
                          choices=_OVERFLOW_CHOICES)
    p_export.add_argument("--checkpoint-dir", default=None,
                          help="persist each completed (device, k) run here "
                               "and resume from matching checkpoints")
    p_export.add_argument("--workers", type=int, default=1,
                          help="processes for the (device, k) grid; output "
                               "files are identical to --workers 1")
    p_export.set_defaults(func=_cmd_export)

    p_bench = sub.add_parser(
        "bench", help="run the pinned-scale benchmarks (engine and serve)")
    p_bench.add_argument("--suite", default="engine",
                         choices=("engine", "serve", "all"),
                         help="which bench suite to run (default: engine)")
    p_bench.add_argument("--smoke", action="store_true",
                         help="run only the CI-fast smoke scale")
    p_bench.add_argument("--output", default=None,
                         help="where to write the measured document "
                              "(default: BENCH_engine.json / "
                              "BENCH_serve.json per suite)")
    p_bench.add_argument("--baseline", default=None,
                         help="committed baseline to gate against "
                              "(default: the suite's BENCH file; skipped "
                              "when it does not exist)")
    p_bench.add_argument("--max-regression", type=float, default=0.25,
                         help="fail when throughput drops more than this "
                              "fraction below the baseline (default 0.25)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timing repeats per scale; best is reported")
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="run the coalescing assembly service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (0 picks an ephemeral one)")
    p_serve.add_argument("--window-ms", type=float, default=10.0,
                         help="coalescing window in milliseconds; 0 "
                              "disables fusion (one launch per job)")
    p_serve.add_argument("--max-wave-warps", type=int, default=4096,
                         help="flush a wave early past this warp estimate")
    p_serve.add_argument("--max-in-flight", type=int, default=256,
                         help="admission budget; submits past it get 429")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="> 1 runs waves on a process pool so "
                              "independent waves overlap")
    p_serve.add_argument("--checkpoint-dir", default=None,
                         help="persist finished jobs here and resume "
                              "identical resubmissions from checkpoints")
    p_serve.add_argument("--cache-entries", type=int, default=256,
                         help="bound of each worker's prepare cache")
    p_serve.add_argument("--journal", default=None, metavar="PATH",
                         help="crash-safe job journal (WAL): submits are "
                              "durably logged before their 202")
    p_serve.add_argument("--recover", action="store_true",
                         help="replay the --journal on start: finished "
                              "jobs resume from checkpoints, in-flight "
                              "jobs re-dispatch")
    p_serve.add_argument("--drain-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="bound on draining in-flight waves at "
                              "shutdown (default: drain fully)")
    p_serve.add_argument("--deadline-s", type=float, default=60.0,
                         help="per-job deadline when a submission sends "
                              "no deadline_s (default 60)")
    p_serve.add_argument("--fault-plan", default=None, metavar="PATH",
                         help="seeded JSON chaos plan injected by the "
                              "wave supervisor (testing only)")
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint", help="run the repo-invariant static lint rules")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"))
    p_lint.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids, ranges, or "
                             "prefixes, e.g. REP003,REP009-REP013,REP0 "
                             "(default: all rules)")
    p_lint.add_argument("--explain", default=None, metavar="ID",
                        help="print the rule docstring(s) for the given "
                             "id(s) and exit")
    p_lint.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: LINT_BASELINE.json if present)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "file and exit 0")
    p_lint.add_argument("--cache", default=None, metavar="PATH",
                        help="incremental analysis cache keyed by file "
                             "content hash (off unless given)")
    p_lint.set_defaults(func=_cmd_lint)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # every domain failure exits nonzero with a one-line diagnosis
        # instead of a traceback
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
