"""Pinned-scale engine benchmarks behind ``repro bench``.

Runs the megabatch engine's ``run_schedule`` at fixed, committed scales
(a seconds-fast *smoke* scale for CI and a larger *full* scale for local
regression hunting), and writes ``BENCH_engine.json`` at the repo root:

* **counters** — the run's functional and profiling identity (merged
  profile, per-event-type counts, extension base totals). These are
  deterministic for a pinned scenario, so the gate on them is *exact
  equality*: any divergence from the committed baseline means the
  engine's semantics changed, which a wall-clock threshold would let
  slip through.
* **wall_s / throughput_contigs_per_s** — best-of-``repeats`` wall
  clock of an uninstrumented ``run_schedule`` and its contig
  throughput. The gate is a relative one (default: fail when
  throughput drops more than 25% below the baseline), sized so machine
  jitter passes but an accidental de-vectorization — the failure mode
  lint rule REP006 guards statically — also fails dynamically.
* **peak_rss_kb** — ``ru_maxrss`` after the runs, recording the memory
  cost of the preallocated megabatch state.

The committed baseline is the previous accepted run of this same
module; ``repro bench`` re-measures, rewrites the file, and exits
nonzero when the gate trips (see the *bench* CI job).
"""

from __future__ import annotations

import resource
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.simulate import ErrorProfile, ScenarioSpec, simulate_batch

#: Format version of ``BENCH_engine.json``.
BENCH_SCHEMA = 1

#: Default location of the bench baseline, relative to the repo root.
DEFAULT_BENCH_PATH = "BENCH_engine.json"

#: Default throughput-regression gate (fraction below baseline).
MAX_REGRESSION = 0.25


@dataclass(frozen=True)
class BenchScale:
    """One pinned benchmark configuration (committed with the baseline)."""

    name: str
    n_contigs: int
    k_schedule: tuple[int, ...]
    contig_length: int
    flank_length: int
    read_length: int
    depth: int
    seed_window: int
    seed: int = 2024
    error_rate: float = 0.0
    lo_quality_fraction: float = 0.0


#: CI-fast identity scale: a couple of seconds end to end on one core.
SMOKE = BenchScale(name="smoke", n_contigs=32, k_schedule=(21, 33),
                   contig_length=150, flank_length=60, read_length=80,
                   depth=6, seed_window=40,
                   error_rate=0.005, lo_quality_fraction=0.1)

#: Table II-shaped regression scale for local runs. Error-bearing reads
#: keep every k of the schedule live (perfect reads settle after the
#: first k), so this is the scale the tentpole speedup is measured at.
FULL = BenchScale(name="full", n_contigs=256, k_schedule=(21, 33, 55, 77),
                  contig_length=220, flank_length=90, read_length=150,
                  depth=10, seed_window=60,
                  error_rate=0.005, lo_quality_fraction=0.1)

_SCALES = {s.name: s for s in (SMOKE, FULL)}


class EventCounter:
    """Counts every emitted event by type name.

    Declares no ``handled_events``, so :meth:`EventBus.wants` reports
    every event type as wanted — the gated slot/barrier events are
    forced on and counted too, making the count vector a complete
    fingerprint of the engine's event stream.
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def handle(self, event, bus) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1


def bench_contigs(scale: BenchScale) -> list:
    """The pinned contig set for one scale (seeded, reproducible)."""
    rng = np.random.default_rng(scale.seed)
    spec = ScenarioSpec(contig_length=scale.contig_length,
                        flank_length=scale.flank_length,
                        read_length=scale.read_length,
                        depth=scale.depth,
                        seed_window=scale.seed_window)
    errors = ErrorProfile(error_rate=scale.error_rate,
                          lo_quality_fraction=scale.lo_quality_fraction)
    return [sc.contig for sc in
            simulate_batch(scale.n_contigs, spec, rng, errors)]


def _kernel():
    from repro.kernels import CudaLocalAssemblyKernel
    from repro.simt.device import A100

    return CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)


def run_scale(scale: BenchScale, repeats: int = 3) -> dict:
    """Measure one pinned scale: identity counters + best-of-N timing."""
    from repro.resilience.checkpoint import profile_to_dict

    contigs = bench_contigs(scale)

    # identity pass: instrumented (all events forced on and counted)
    kern = _kernel()
    counter = kern.add_subscriber(EventCounter())
    res = kern.run_schedule(contigs, scale.k_schedule)
    counters = {
        "k": res.k,
        "degraded": list(res.degraded),
        "retried": list(res.retried),
        "right_bases": int(sum(len(b) for b, _ in res.right)),
        "left_bases": int(sum(len(b) for b, _ in res.left)),
        "states": sorted(
            f"{s.value}:{n}" for s, n in _state_histogram(res).items()),
        "profile": profile_to_dict(res.profile),
        "events": dict(sorted(counter.counts.items())),
    }

    # timing pass: fresh uninstrumented kernels, best of `repeats`
    best = float("inf")
    for _ in range(max(1, repeats)):
        kern = _kernel()
        t0 = time.perf_counter()
        kern.run_schedule(contigs, scale.k_schedule)
        best = min(best, time.perf_counter() - t0)

    return {
        "pins": {**asdict(scale), "k_schedule": list(scale.k_schedule)},
        "counters": counters,
        "wall_s": round(best, 4),
        "throughput_contigs_per_s": round(scale.n_contigs / best, 2),
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    }


def _state_histogram(res) -> dict:
    hist: dict = {}
    for side in (res.right, res.left):
        for _, state in side:
            hist[state] = hist.get(state, 0) + 1
    return hist


def collect_bench(smoke_only: bool = False, repeats: int = 3) -> dict:
    """Run the pinned scales and assemble the ``BENCH_engine.json`` doc."""
    names = ("smoke",) if smoke_only else ("smoke", "full")
    return {
        "schema": BENCH_SCHEMA,
        "scales": {n: run_scale(_SCALES[n], repeats) for n in names},
    }


def _first_divergence(base, cur, path: str = "") -> str | None:
    """Dotted path of the first differing leaf between two JSON trees."""
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(set(base) | set(cur)):
            sub = _first_divergence(base.get(key), cur.get(key),
                                    f"{path}.{key}" if path else str(key))
            if sub is not None:
                return sub
        return None
    if base != cur:
        return f"{path}: baseline {base!r} != current {cur!r}"
    return None


def compare_bench(baseline: dict, current: dict,
                  max_regression: float = MAX_REGRESSION) -> list[str]:
    """Gate violations of ``current`` against ``baseline`` (empty = pass).

    Counters must match *exactly*; throughput may not drop more than
    ``max_regression`` below the baseline. Scales present on only one
    side are skipped (a ``--smoke`` run gates only the smoke scale).
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema changed: baseline {baseline.get('schema')} != "
            f"current {current.get('schema')}; re-commit the baseline")
        return problems
    for name, cur in current.get("scales", {}).items():
        base = baseline.get("scales", {}).get(name)
        if base is None:
            continue
        diff = _first_divergence(base.get("counters"), cur.get("counters"))
        if diff is not None:
            problems.append(
                f"{name}: engine identity diverged from the committed "
                f"baseline at {diff}")
        tp_base = base.get("throughput_contigs_per_s") or 0.0
        tp_cur = cur.get("throughput_contigs_per_s") or 0.0
        if tp_base > 0 and tp_cur < tp_base * (1.0 - max_regression):
            problems.append(
                f"{name}: throughput regressed to {tp_cur:.2f} contigs/s "
                f"(baseline {tp_base:.2f}, gate at "
                f"-{max_regression:.0%})")
    return problems
