"""Walk-outcome statistics: the workload-shape evidence behind Figure 4.

The paper's binning and predication arguments both rest on the *shape* of
the mer-walk workload: walk lengths are non-deterministic and grow with
k, which is why warps stall without binning and why the single-lane walk
phase dominates at large k. This module extracts those distributions from
kernel results so benches and examples can show them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.extension import WalkState
from repro.kernels.engine import KernelRunResult


@dataclass
class WalkStatistics:
    """Distribution of walk outcomes for one kernel run.

    Attributes:
        k: k-mer size of the run.
        lengths: extension length of every walk (both ends, contig order).
        states: terminal-state counts.
    """

    k: int
    lengths: np.ndarray
    states: Counter = field(default_factory=Counter)

    @property
    def n_walks(self) -> int:
        return int(self.lengths.size)

    @property
    def mean_length(self) -> float:
        return float(self.lengths.mean()) if self.lengths.size else 0.0

    @property
    def max_length(self) -> int:
        return int(self.lengths.max()) if self.lengths.size else 0

    @property
    def coefficient_of_variation(self) -> float:
        """Std/mean of walk lengths — the warp-stall risk the binning
        phase mitigates (walks in one launch finish together iff this is
        small)."""
        if self.lengths.size == 0 or self.lengths.mean() == 0:
            return 0.0
        return float(self.lengths.std() / self.lengths.mean())

    def state_fraction(self, state: WalkState) -> float:
        return self.states[state.value] / self.n_walks if self.n_walks else 0.0

    def length_histogram(self, n_bins: int = 10) -> list[tuple[int, int, int]]:
        """(lo, hi, count) rows over the length range."""
        if self.lengths.size == 0:
            return []
        hi = max(1, self.max_length)
        counts, edges = np.histogram(self.lengths, bins=n_bins, range=(0, hi))
        return [(int(edges[i]), int(edges[i + 1]), int(counts[i]))
                for i in range(n_bins)]


def collect_walk_stats(result: KernelRunResult) -> WalkStatistics:
    """Extract walk statistics from a kernel run's functional output."""
    lengths = []
    states: Counter = Counter()
    for side in (result.right, result.left):
        for bases, state in side:
            lengths.append(len(bases))
            states[state.value] += 1
    return WalkStatistics(k=result.k,
                          lengths=np.asarray(lengths, dtype=np.int64),
                          states=states)


def summarize_across_k(results: dict[int, KernelRunResult]) -> list[dict]:
    """One row per k: the walk-shape table (used by the workload bench)."""
    rows = []
    for k in sorted(results):
        s = collect_walk_stats(results[k])
        rows.append({
            "k": k,
            "walks": s.n_walks,
            "mean_len": round(s.mean_length, 1),
            "max_len": s.max_length,
            "cv": round(s.coefficient_of_variation, 2),
            "fork_frac": round(s.state_fraction(WalkState.FORK), 3),
            "missing_frac": round(s.state_fraction(WalkState.MISSING), 3),
        })
    return rows
