"""Experiment harness: one entry point per paper table/figure."""

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.analysis.report import render_table

__all__ = ["ExperimentConfig", "ExperimentSuite", "render_table"]
