"""Plain-text rendering of experiment results (tables and series).

The benches print through these helpers so every table/figure
reproduction emits the same row/series structure the paper reports,
readable in a terminal and diffable in CI.
"""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def union_headers(rows: Sequence[dict]) -> list[str]:
    """Every key appearing in any row, in first-seen order.

    Heterogeneous rows (e.g. mixed resilience-summary shapes) are legal:
    headers are the union, and rows missing a key render blank.
    """
    headers: list[str] = []
    seen: set[str] = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                headers.append(key)
    return headers


def render_dict_table(rows: Sequence[dict], title: str = "") -> str:
    """Render a list of dicts as a table (union of keys becomes headers)."""
    if not rows:
        return title
    headers = union_headers(rows)
    return render_table(headers, [[r.get(h, "") for h in headers] for r in rows],
                        title)


def render_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render an (x, y) series as labelled rows (one figure line)."""
    lines = [f"{name}:"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x_label}={_fmt(x)}  {y_label}={_fmt(y)}")
    return "\n".join(lines)


def render_assembly_report(result, title: str = "Assembly report") -> str:
    """Render a :class:`~repro.metahipmer.DeNovoResult` per-round table.

    One row per pipeline round (k, contigs, N50 before/after the local
    assembly merge, carried-in contigs...) plus a final-assembly summary
    line — the human-readable companion of ``repro assemble --stats``.
    """
    from dataclasses import asdict

    rows = [asdict(s) for s in result.rounds]
    table = render_dict_table(rows, title=title)
    summary = (f"final: {len(result.contigs)} contig(s), "
               f"N50 {result.final_n50:,}, "
               f"fingerprint {result.fingerprint()[:16]}")
    return f"{table}\n{summary}" if rows else summary


def render_resilience_summary(rows: Sequence[dict]) -> str:
    """Render :meth:`ExperimentSuite.resilience_summary` rows.

    Quiet by design: an all-clean suite (no degraded contigs, no
    retries, nothing resumed from checkpoints) renders as a single line
    rather than a table of zeros.
    """
    if not rows:
        return "resilience: no runs recorded"
    interesting = [
        r for r in rows
        if r.get("degraded_contigs") or r.get("retried_contigs")
        or r.get("launches_dropped") or r.get("overflow_retries")
        or r.get("from_checkpoint")
    ]
    if not interesting:
        return (f"resilience: all {len(rows)} runs clean "
                "(no drops, retries, or checkpoint resumes)")
    return render_dict_table(interesting, title="Resilience summary")
