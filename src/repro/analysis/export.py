"""Export the reproduced tables/figures as machine-readable files.

``export_all`` writes one TSV per table and figure plus a ``summary.json``
into an output directory, so the results can be plotted or diffed outside
Python. Every file carries a header comment naming the paper artifact it
reproduces and the dataset scale used.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.experiments import ExperimentSuite
from repro.analysis.report import union_headers
from repro.perfmodel.roofline import roofline_series
from repro.perfmodel.speedup import iso_curve, iso_curve_levels
from repro.simt.device import PLATFORMS


def _write_tsv(path: Path, comment: str, headers: list[str],
               rows: list[list]) -> None:
    lines = [f"# {comment}", "\t".join(headers)]
    for row in rows:
        lines.append("\t".join(str(v) for v in row))
    path.write_text("\n".join(lines) + "\n")


def _dicts_to_tsv(path: Path, comment: str, rows: list[dict]) -> None:
    if not rows:
        path.write_text(f"# {comment}\n# (no rows)\n")
        return
    headers = union_headers(rows)
    _write_tsv(path, comment, headers,
               [[r.get(h, "") for h in headers] for r in rows])


def export_all(suite: ExperimentSuite, out_dir: str | Path) -> list[Path]:
    """Run (if needed) and export every experiment; returns written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    suite.run_all()
    scale = suite.config.scale
    written: list[Path] = []

    def emit_dicts(name: str, comment: str, rows: list[dict]) -> None:
        p = out / f"{name}.tsv"
        _dicts_to_tsv(p, f"{comment} (scale={scale})", rows)
        written.append(p)

    emit_dicts("table1_platforms", "paper Table I", suite.table1())
    emit_dicts("table2_datasets", "paper Table II, measured vs target",
               suite.table2())
    emit_dicts("table3_architecture", "paper Table III", suite.table3())
    t4 = suite.table4()
    emit_dicts("table4_arch_efficiency", "paper Table IV (%)", t4["rows"])
    emit_dicts("table5_hash_intops", "paper Table V", suite.table5())
    emit_dicts("table6_theoretical_ii", "paper Table VI", suite.table6())
    t7 = suite.table7()
    emit_dicts("table7_alg_efficiency", "paper Table VII (%)", t7["rows"])
    emit_dicts("fig5_kernel_time", "paper Figure 5 (seconds)", suite.figure5())

    # Figure 6: one series file per device (points + the roofline itself)
    fig6 = suite.figure6()
    for dev in PLATFORMS:
        entry = fig6[dev.name]
        p = out / f"fig6_roofline_{dev.name.lower()}.tsv"
        rows = [[pt["k"], pt["II"], pt["gintops_per_s"], pt["bound"]]
                for pt in entry["points"]]
        _write_tsv(p, f"paper Figure 6 {dev.name} points (scale={scale})",
                   ["k", "II", "gintops_per_s", "bound"], rows)
        written.append(p)
        ii, ceil = roofline_series(dev)
        p2 = out / f"fig6_ceiling_{dev.name.lower()}.tsv"
        _write_tsv(p2, f"paper Figure 6 {dev.name} roofline ceiling",
                   ["II", "ceiling_gintops"],
                   [[round(float(a), 5), round(float(b), 3)]
                    for a, b in zip(ii, ceil)])
        written.append(p2)

    emit_dicts("fig7_a100_vs_mi250x", "paper Figure 7", suite.figure7())
    emit_dicts("fig8_a100_vs_max1550", "paper Figure 8", suite.figure8())

    fig9_rows = [
        {"device": pt.device, "k": pt.k,
         "pct_theoretical_II": round(100 * pt.algorithm_efficiency, 2),
         "pct_roofline": round(100 * pt.architectural_efficiency, 2)}
        for pt in suite.figure9()
    ]
    emit_dicts("fig9_potential_speedup", "paper Figure 9", fig9_rows)
    iso_rows = [[lvl, x, y] for lvl in iso_curve_levels()
                for x, y in iso_curve(lvl)]
    p = out / "fig9_iso_curves.tsv"
    _write_tsv(p, "paper Figure 9 iso speed-up curves",
               ["level", "x", "y"],
               [[lvl, round(x, 4), round(y, 4)] for lvl, x, y in iso_rows])
    written.append(p)

    summary = {
        "scale": scale,
        "k_values": list(suite.config.k_values),
        "average_P_arch_pct": t4["average_P_arch"],
        "average_P_alg_pct": t7["average_P_alg"],
        "figure5_seconds": suite.figure5(),
        "files": [str(w.name) for w in written],
    }
    sp = out / "summary.json"
    sp.write_text(json.dumps(summary, indent=2) + "\n")
    written.append(sp)
    return written
