"""The per-table / per-figure experiment suite (DESIGN.md experiment index).

:class:`ExperimentSuite` generates (and caches) the four datasets, runs
each platform's kernel port on its simulated device, extrapolates the
profiles to full dataset size, and exposes one method per paper artifact
returning the same rows/series the paper reports. The benches under
``benchmarks/`` are thin wrappers around these methods.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.extension import PRODUCTION_POLICY, WalkPolicy
from repro.core.parallel import chunk_evenly
from repro.errors import ReproError
from repro.datasets.characteristics import TABLE_II, measure_characteristics
from repro.datasets.generate import generate_paper_dataset
from repro.hashing.opcount import hash_intops_breakdown
from repro.kernels import backend_for_device
from repro.kernels.engine import KernelRunResult
from repro.perfmodel.efficiency import algorithm_efficiency, architectural_efficiency
from repro.perfmodel.portability import pennycook
from repro.perfmodel.roofline import roofline_point
from repro.perfmodel.speedup import SpeedupPoint, speedup_point
from repro.perfmodel.theoretical import (
    bytes_per_loop_cycle,
    intops_per_loop_cycle,
    theoretical_ii,
)
from repro.perfmodel.timing import extrapolate_profile, predict_time
from repro.resilience.checkpoint import (
    CheckpointStore,
    profile_from_dict,
    profile_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.resilience.retry import DEFAULT_BACKOFF, DEFAULT_RETRIES, retry_transient
from repro.simt.counters import KernelProfile
from repro.simt.device import PLATFORMS, DeviceSpec, device_by_name

#: Production k-mer schedule (the four datasets of Table II).
K_VALUES = (21, 33, 55, 77)


@dataclass
class ExperimentConfig:
    """Suite-wide knobs.

    Attributes:
        scale: fraction of the paper's dataset sizes to actually run; the
            cache model and extrapolation restore full-scale pressure (see
            DESIGN.md). 1.0 reproduces the paper's sizes exactly.
        seed: dataset RNG seed.
        policy: walk policy (the MetaHipMer-like production thresholds).
        k_values: which Table II datasets to run.
        overflow_policy: hash-table overflow semantics passed to every
            kernel (see :class:`repro.resilience.OverflowPolicy`).
        checkpoint_dir: when set, each completed ``(device, k)`` run is
            persisted there and ``run``/``run_all`` resume from any
            checkpoints whose configuration fingerprint matches.
        fault_injector: optional :class:`repro.resilience.FaultInjector`
            shared by every kernel run (for tests and the CI smoke job).
        max_retries / retry_backoff: transient-failure retry budget per
            ``(device, k)`` run; only
            :class:`~repro.errors.TransientError` (e.g.
            :class:`~repro.errors.BackendLaunchError`) is retried —
            anything else stays fatal.
        retry_sleep: injectable sleep for tests (``None`` = real sleep).
            Not forwarded to worker processes (they use the real sleep).
        workers: default process count for :meth:`ExperimentSuite.run_all`;
            1 (the default) runs serially in-process. See
            :meth:`ExperimentSuite.run_all` for the parallel semantics.
    """

    scale: float = 0.02
    seed: int = 2024
    policy: WalkPolicy = field(default_factory=lambda: PRODUCTION_POLICY)
    k_values: tuple[int, ...] = K_VALUES
    overflow_policy: str = "raise"
    checkpoint_dir: str | None = None
    fault_injector: object | None = None
    max_retries: int = DEFAULT_RETRIES
    retry_backoff: float = DEFAULT_BACKOFF
    retry_sleep: object | None = None
    workers: int = 1


@dataclass
class RunRecord:
    """One (device, k) kernel execution plus its full-scale profile."""

    device: DeviceSpec
    k: int
    result: KernelRunResult
    full_profile: KernelProfile
    #: True when the record was restored from a checkpoint, not executed.
    from_checkpoint: bool = False


class ExperimentSuite:
    """Runs and caches everything the tables/figures need."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._datasets: dict[int, list] = {}
        self._runs: dict[tuple[str, int], RunRecord] = {}
        self._store: CheckpointStore | None = None

    # ------------------------------------------------------------------
    def dataset(self, k: int):
        """The (cached) generated dataset for one k."""
        if k not in self._datasets:
            self._datasets[k] = generate_paper_dataset(
                k, scale=self.config.scale, seed=self.config.seed
            )
        return self._datasets[k]

    def checkpoint_store(self) -> CheckpointStore | None:
        """The suite's checkpoint store (``None`` when checkpointing is off).

        The store's meta fingerprint covers every knob that changes run
        output, so resuming against checkpoints from a different
        configuration fails loudly instead of mixing records.
        """
        if self.config.checkpoint_dir is None:
            return None
        if self._store is None:
            self._store = CheckpointStore(self.config.checkpoint_dir, meta={
                "scale": self.config.scale,
                "seed": self.config.seed,
                "overflow_policy": str(self.config.overflow_policy),
                "k_values": list(self.config.k_values),
            })
        return self._store

    def _execute(self, device: DeviceSpec, k: int) -> RunRecord:
        """One uncached, uncheckpointed kernel execution."""
        injector = self.config.fault_injector
        if injector is not None:
            injector.before_run(device.name, k)
        kern = backend_for_device(
            device, policy=self.config.policy,
            overflow_policy=self.config.overflow_policy,
            fault_injector=injector,
        )
        result = kern.run(self.dataset(k), k,
                          parallel_scale=self.config.scale)
        full = extrapolate_profile(result.profile, device, self.config.scale)
        return RunRecord(device=device, k=k, result=result, full_profile=full)

    def run(self, device: DeviceSpec, k: int) -> RunRecord:
        """Execute (once) the device's kernel port on dataset ``k``.

        Resolution order: the in-memory cache, then a matching checkpoint,
        then a fresh execution (with bounded retry of transient failures),
        which is checkpointed on completion when a store is configured.
        """
        key = (device.name, k)
        if key in self._runs:
            return self._runs[key]
        store = self.checkpoint_store()
        if store is not None:
            loaded = store.load(device, k)
            if loaded is not None:
                result, full = loaded
                rec = RunRecord(device=device, k=k, result=result,
                                full_profile=full, from_checkpoint=True)
                self._runs[key] = rec
                return rec
        sleep_kw = ({} if self.config.retry_sleep is None
                    else {"sleep": self.config.retry_sleep})
        rec = retry_transient(
            lambda: self._execute(device, k),
            retries=self.config.max_retries,
            backoff=self.config.retry_backoff, **sleep_kw,
        )
        if store is not None:
            store.save(device.name, k, rec.result, rec.full_profile)
        self._runs[key] = rec
        return rec

    def run_all(self, workers: int | None = None) -> None:
        """Execute the full ``(device, k)`` grid, optionally in parallel.

        Args:
            workers: process count; ``None`` takes
                :attr:`ExperimentConfig.workers`. ``1`` runs the grid
                serially in-process (the historical behavior).

        With ``workers > 1`` the pending grid cells are sharded across a
        ``ProcessPoolExecutor`` (same chunking helper as
        :func:`repro.core.parallel.assemble_parallel`). Each worker owns
        a private :class:`ExperimentSuite` built from this suite's
        config, so the per-run machinery — dataset generation,
        ``retry_transient``, fault-injector hooks, checkpoint writes —
        is exactly the serial code path; results travel back through the
        checkpoint codec (``result_to_dict`` / ``profile_to_dict``) and
        are merged into ``_runs`` in deterministic grid order, making
        every table/figure/export byte-identical to a serial run.

        When a checkpoint store is configured, already-completed runs
        (validated fingerprint) are resumed in the parent and never
        dispatched; workers checkpoint their own completions, so a
        mid-flight crash loses only in-flight runs.

        Caveats of the parallel path: ``retry_sleep`` is not forwarded
        (workers sleep for real), and a ``fault_injector``'s launch/run
        ordinals count per worker process rather than globally — specs
        targeting parallel suites should match on ``device``/``k``.
        """
        workers = self.config.workers if workers is None else workers
        if workers <= 0:
            raise ReproError(f"workers must be positive, got {workers}")
        grid = [(device, k) for device in PLATFORMS
                for k in self.config.k_values]
        if workers == 1:
            for device, k in grid:
                self.run(device, k)
            return
        store = self.checkpoint_store()
        done = store.completed() if store is not None else set()
        pending: list[tuple[str, int]] = []
        for device, k in grid:
            key = (device.name, k)
            if key in self._runs:
                continue
            if key in done:
                self.run(device, k)  # validated load, no re-dispatch
                continue
            pending.append(key)
        if not pending:
            return
        worker_config = dataclasses.replace(self.config, retry_sleep=None)
        shards = chunk_evenly(pending, workers)
        by_key: dict[tuple[str, int], dict] = {}
        with ProcessPoolExecutor(
                max_workers=min(workers, len(shards)),
                initializer=_init_suite_worker,
                initargs=(worker_config,)) as pool:
            for shard_out in pool.map(_run_suite_shard, shards):
                for item in shard_out:
                    by_key[(item["device"], item["k"])] = item
        for device, k in grid:
            key = (device.name, k)
            if key in self._runs:
                continue
            item = by_key[key]
            self._runs[key] = RunRecord(
                device=device, k=k,
                result=result_from_dict(item["result"], device),
                full_profile=profile_from_dict(item["full_profile"]),
                from_checkpoint=bool(item["from_checkpoint"]),
            )

    def resilience_summary(self) -> list[dict]:
        """Per-run degradation/retry/checkpoint accounting (post-``run``)."""
        rows = []
        for (name, k), rec in sorted(self._runs.items()):
            rows.append({
                "device": name, "k": k,
                "degraded_contigs": len(rec.result.degraded),
                "retried_contigs": len(rec.result.retried),
                "launches_dropped": rec.result.profile.contigs_dropped,
                "overflow_retries": rec.result.profile.overflow_retries,
                "from_checkpoint": rec.from_checkpoint,
            })
        return rows

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def table1(self) -> list[dict]:
        """Table I: HPC systems, accelerators, programming models, compilers."""
        return [
            {
                "hpc_system": d.hpc_system,
                "accelerator": f"{d.vendor} {d.name}",
                "programming_model": d.programming_model,
                "compiler": d.compiler,
            }
            for d in PLATFORMS
        ]

    def table2(self) -> list[dict]:
        """Table II: dataset characteristics, measured vs paper targets.

        Extension columns are measured by running the A100 kernel (any
        port gives identical functional output).
        """
        rows = []
        for k in self.config.k_values:
            contigs = self.dataset(k)
            rec = self.run(PLATFORMS[0], k)
            ext_total = sum(len(b) for b, _ in rec.result.right) + sum(
                len(b) for b, _ in rec.result.left
            )
            m = measure_characteristics(contigs, k)
            target = TABLE_II[k].scaled(self.config.scale)
            rows.append(
                {
                    "k": k,
                    "contigs": m.total_contigs,
                    "contigs_target": target.total_contigs,
                    "reads": m.total_reads,
                    "reads_target": target.total_reads,
                    "avg_read_len": round(m.average_read_length, 1),
                    "read_len_target": target.average_read_length,
                    "insertions": m.total_hash_insertions,
                    "insertions_target": target.total_hash_insertions,
                    "avg_extn": round(ext_total / len(contigs), 1),
                    "avg_extn_paper": TABLE_II[k].average_extn_length,
                    "total_extns": ext_total,
                    "total_extns_target": target.total_extns,
                }
            )
        return rows

    def table3(self) -> list[dict]:
        """Table III: architectural feature comparison."""
        return [
            {
                "board": f"{d.vendor} {d.name}",
                "compute_units": d.compute_units,
                "warp_size": d.warp_size,
                "l1_cache_kb": d.l1.size_bytes // 1024,
                "l2_cache_mb": d.l2.size_bytes // (1024 * 1024),
                "memory_gb": d.hbm_bytes // (1024**3),
                "peak_gintops": d.peak_gintops,
                "hbm_gbps": d.hbm_bw_gbps,
            }
            for d in PLATFORMS
        ]

    def table4(self) -> dict:
        """Table IV: architectural efficiency + Pennycook P_arch."""
        rows = []
        per_k_effs: dict[int, list[float]] = {k: [] for k in self.config.k_values}
        for k in self.config.k_values:
            row = {"k": k}
            for device in PLATFORMS:
                rec = self.run(device, k)
                eff = architectural_efficiency(rec.full_profile, device)
                row[device.name] = round(100 * eff, 1)
                per_k_effs[k].append(eff)
            row["P_arch"] = round(100 * pennycook(per_k_effs[k]), 1)
            rows.append(row)
        all_effs = [e for effs in per_k_effs.values() for e in effs]
        return {"rows": rows, "average_P_arch": round(100 * pennycook(all_effs), 1)}

    def table5(self) -> list[dict]:
        """Table V: integer operations in the hash function per k."""
        rows = []
        for k in self.config.k_values:
            b = hash_intops_breakdown(k)
            rows.append(
                {
                    "k": k,
                    "initialization": b["initialization"],
                    "mix_loop": b["mix_loop"],
                    "cleanup": b["cleanup"],
                    "key_handling": b["key_handling"],
                    "INTOP1": b["total"],
                }
            )
        return rows

    def table6(self) -> list[dict]:
        """Table VI: theoretical II calculations."""
        return [
            {
                "k": k,
                "intops_per_loop_cycle": intops_per_loop_cycle(k),
                "bytes_per_loop_cycle": bytes_per_loop_cycle(k),
                "theoretical_II": round(theoretical_ii(k), 3),
            }
            for k in self.config.k_values
        ]

    def table7(self) -> dict:
        """Table VII: algorithm efficiency + Pennycook P_alg."""
        rows = []
        per_k_effs: dict[int, list[float]] = {k: [] for k in self.config.k_values}
        for k in self.config.k_values:
            row = {"k": k}
            for device in PLATFORMS:
                rec = self.run(device, k)
                eff = algorithm_efficiency(rec.full_profile, k)
                row[device.name] = round(100 * eff, 1)
                per_k_effs[k].append(eff)
            row["P_alg"] = round(100 * pennycook(per_k_effs[k]), 1)
            rows.append(row)
        all_effs = [e for effs in per_k_effs.values() for e in effs]
        return {"rows": rows, "average_P_alg": round(100 * pennycook(all_effs), 1)}

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------

    def figure5(self) -> list[dict]:
        """Figure 5: kernel time (seconds) per device per k."""
        rows = []
        for k in self.config.k_values:
            row = {"k": k}
            for device in PLATFORMS:
                row[device.name] = round(self.run(device, k).full_profile.seconds, 5)
            rows.append(row)
        return rows

    def figure6(self) -> dict:
        """Figure 6: instruction (INTOP) roofline points per device."""
        out: dict[str, dict] = {}
        for device in PLATFORMS:
            points = []
            for k in self.config.k_values:
                rec = self.run(device, k)
                p = roofline_point(rec.full_profile, device)
                points.append(
                    {"k": k, "II": round(p.ii, 3),
                     "gintops_per_s": round(p.gintops_per_s, 2),
                     "bound": p.bound,
                     "pct_of_ceiling": round(100 * p.fraction_of_ceiling, 1)}
                )
            out[device.name] = {
                "machine_balance": round(device.machine_balance, 3),
                "peak_gintops": device.peak_gintops,
                "hbm_gbps": device.hbm_bw_gbps,
                "points": points,
            }
        return out

    def _pair(self, a: DeviceSpec, b: DeviceSpec) -> list[dict]:
        rows = []
        for k in self.config.k_values:
            pa = self.run(a, k).full_profile
            pb = self.run(b, k).full_profile
            rows.append(
                {
                    "k": k,
                    f"{a.name}_gintops_per_s": round(pa.gintops_per_second, 2),
                    f"{b.name}_gintops_per_s": round(pb.gintops_per_second, 2),
                    f"{a.name}_gbytes": round(pa.gbytes, 3),
                    f"{b.name}_gbytes": round(pb.gbytes, 3),
                }
            )
        return rows

    def figure7(self) -> list[dict]:
        """Figure 7: A100-vs-MI250X performance and bytes correlation."""
        return self._pair(PLATFORMS[0], PLATFORMS[1])

    def figure8(self) -> list[dict]:
        """Figure 8: A100-vs-Max1550 performance and bytes correlation."""
        return self._pair(PLATFORMS[0], PLATFORMS[2])

    def figure9(self) -> list[SpeedupPoint]:
        """Figure 9: potential speed-up points (one per device per k)."""
        points = []
        for device in PLATFORMS:
            for k in self.config.k_values:
                rec = self.run(device, k)
                points.append(
                    speedup_point(
                        device.name, k,
                        algorithm_efficiency(rec.full_profile, k),
                        architectural_efficiency(rec.full_profile, device),
                    )
                )
        return points

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def timing_breakdown(self) -> list[dict]:
        """Extra diagnostic: per-resource time split (not in the paper)."""
        rows = []
        for device in PLATFORMS:
            for k in self.config.k_values:
                rec = self.run(device, k)
                bd = predict_time(rec.full_profile, device)
                rows.append(
                    {
                        "device": device.name, "k": k,
                        "construct_issue_ms": round(bd.construct_issue * 1e3, 2),
                        "walk_issue_ms": round(bd.walk_issue * 1e3, 2),
                        "memory_ms": round(bd.memory * 1e3, 2),
                        "latency_ms": round(bd.latency * 1e3, 3),
                        "bound": bd.bound,
                    }
                )
        return rows


# ----------------------------------------------------------------------
# Process-pool shard workers (module-level so they pickle by name).
#
# Each pool worker builds one private ExperimentSuite at startup and
# reuses it for every shard it executes, so datasets generated for one
# (device, k) cell are cached for later same-k cells in that process.
# Results cross the process boundary as checkpoint-codec dicts — the
# same wire format the on-disk store uses — so the parent rebuilds
# RunRecords without any parallel-only serialization path.
# ----------------------------------------------------------------------

_WORKER_SUITE: ExperimentSuite | None = None


def _init_suite_worker(config: ExperimentConfig) -> None:
    global _WORKER_SUITE
    _WORKER_SUITE = ExperimentSuite(config)


def _run_suite_shard(shard: list[tuple[str, int]]) -> list[dict]:
    """Execute one shard of ``(device_name, k)`` cells; returns codec dicts."""
    suite = _WORKER_SUITE
    if suite is None:  # pragma: no cover - initializer always ran
        raise ReproError("suite worker used before initialization")
    out = []
    for device_name, k in shard:
        rec = suite.run(device_by_name(device_name), k)
        out.append({
            "device": device_name,
            "k": k,
            "result": result_to_dict(rec.result),
            "full_profile": profile_to_dict(rec.full_profile),
            "from_checkpoint": rec.from_checkpoint,
        })
    return out
