"""Serve-path benchmarks: coalesced waves vs one-launch-per-job.

Drives a real :class:`~repro.serve.AssemblyService` (bound to an
ephemeral port, spoken to over its actual HTTP protocol) with a swarm of
concurrent clients, each burst-submitting a batch of small jobs and then
polling them to completion. Every pinned scale is measured twice:

* **coalesced** — the service's coalescing window on, so the burst fuses
  into megabatch waves;
* **solo** — ``window_s = 0``, the degenerate one-launch-per-job mode,
  which is exactly what a service without cross-request coalescing
  would do.

Both modes run the same job set on the same single-lane worker, so the
ratio of their request throughputs isolates the coalescing win. The
document written to ``BENCH_serve.json`` mirrors ``BENCH_engine.json``
(see :mod:`repro.analysis.bench`):

* **counters** — per-job result fingerprints (timing-free hashes of the
  full result payload). Deterministic for a pinned scale, gated by
  *exact equality* against the committed baseline; additionally the
  solo and coalesced runs must agree fingerprint-for-fingerprint
  *within* a run (multi-tenant parity, checked every collection).
* **coalesced / solo** — wall clock, requests/sec, p50/p99 job latency
  of the best-of-``repeats`` swarm, plus the wave counters of that run.
* **speedup** — coalesced over solo requests/sec, gated against the
  scale's pinned floor (lenient at the smoke scale, the tentpole's
  >= 3x acceptance floor at the full scale's 8 concurrent clients).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import resource
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import ReproError
from repro.genomics.io import dumps_dat
from repro.genomics.simulate import ErrorProfile, ScenarioSpec, simulate_batch
from repro.serve import AssemblyService

#: Format version of ``BENCH_serve.json``.
BENCH_SERVE_SCHEMA = 1

#: Default location of the serve bench baseline, relative to repo root.
DEFAULT_BENCH_SERVE_PATH = "BENCH_serve.json"

#: Default throughput-regression gate (fraction below baseline).
MAX_REGRESSION = 0.25

#: Client poll cadence while waiting on submitted jobs.
_POLL_S = 0.002


@dataclass(frozen=True)
class ServeScale:
    """One pinned load-generator configuration."""

    name: str
    clients: int
    jobs_per_client: int
    n_contigs: int
    k_schedule: tuple[int, ...]
    contig_length: int
    flank_length: int
    read_length: int
    depth: int
    seed_window: int
    window_s: float
    min_speedup: float
    seed: int = 2024

    @property
    def total_jobs(self) -> int:
        return self.clients * self.jobs_per_client


#: CI-fast scale. The floor is lenient — at this size the fused wave is
#: barely bigger than a solo launch, so only "no slowdown" is asserted.
SMOKE = ServeScale(name="smoke", clients=4, jobs_per_client=3, n_contigs=3,
                   k_schedule=(21, 33), contig_length=120, flank_length=50,
                   read_length=70, depth=5, seed_window=40,
                   window_s=0.05, min_speedup=1.0)

#: Acceptance scale: >= 8 concurrent clients of small jobs must clear
#: the tentpole's >= 3x coalescing throughput floor.
FULL = ServeScale(name="full", clients=8, jobs_per_client=4, n_contigs=4,
                  k_schedule=(21, 33), contig_length=150, flank_length=60,
                  read_length=80, depth=6, seed_window=40,
                  window_s=0.05, min_speedup=3.0)

_SCALES = {s.name: s for s in (SMOKE, FULL)}


def serve_jobs(scale: ServeScale) -> list[tuple[str, str]]:
    """``[(key, dat_text)]`` — one distinct small dataset per job.

    Every job gets its own seeded scenario so fingerprints are unique
    (no accidental checkpoint/cache aliasing) and the coalesced and solo
    runs execute the identical byte stream.
    """
    spec = ScenarioSpec(contig_length=scale.contig_length,
                        flank_length=scale.flank_length,
                        read_length=scale.read_length,
                        depth=scale.depth,
                        seed_window=scale.seed_window)
    errors = ErrorProfile(error_rate=0.0, lo_quality_fraction=0.0)
    jobs: list[tuple[str, str]] = []
    for client in range(scale.clients):
        for j in range(scale.jobs_per_client):
            idx = client * scale.jobs_per_client + j
            rng = np.random.default_rng(scale.seed + idx)
            contigs = [sc.contig for sc in
                       simulate_batch(scale.n_contigs, spec, rng, errors)]
            jobs.append((f"c{client}j{j}", dumps_dat(contigs)))
    return jobs


class _HttpClient:
    """One persistent keep-alive connection speaking the serve protocol."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> _HttpClient:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port)
        return self

    async def __aexit__(self, *exc) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def request(self, method: str, path: str,
                      payload: dict | None = None) -> tuple[int, dict]:
        body = json.dumps(payload).encode() if payload is not None else b""
        self._writer.write(
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ReproError("serve bench: server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        while True:
            header = await self._reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b""
        return status, json.loads(data or b"{}")


async def _client_task(port: int, scale: ServeScale,
                       jobs: list[tuple[str, str]]) -> list[tuple]:
    """Burst-submit ``jobs``, poll to completion, fetch every result.

    Returns ``[(key, latency_s, payload)]``; latency is submit-to-done
    as observed by the polling client (the number a caller would see).
    """
    loop = asyncio.get_running_loop()
    out: list[tuple] = []
    async with _HttpClient("127.0.0.1", port) as http:
        pending: dict[str, tuple[str, float]] = {}
        for key, dat in jobs:
            t0 = loop.time()
            status, body = await http.request(
                "POST", "/v1/jobs",
                {"dat": dat, "k_schedule": list(scale.k_schedule)})
            if status != 202:
                raise ReproError(
                    f"serve bench: submit of {key} got HTTP {status}: "
                    f"{body.get('error')}")
            pending[body["job_id"]] = (key, t0)
        while pending:
            for job_id in list(pending):
                _, body = await http.request("GET", f"/v1/jobs/{job_id}")
                if body["status"] not in ("done", "failed"):
                    continue
                key, t0 = pending.pop(job_id)
                latency = loop.time() - t0
                if body["status"] == "failed":
                    raise ReproError(
                        f"serve bench: job {key} failed: {body.get('error')}")
                _, payload = await http.request(
                    "GET", f"/v1/jobs/{job_id}/result")
                out.append((key, latency, payload))
            if pending:
                await asyncio.sleep(_POLL_S)
    return out


async def _swarm(scale: ServeScale, jobs: list[tuple[str, str]],
                 window_s: float) -> tuple[float, list[tuple], dict]:
    """One full client swarm against a fresh service; returns its run."""
    service = AssemblyService(window_s=window_s,
                             max_in_flight=max(256, 2 * scale.total_jobs))
    port = await service.start()
    try:
        m = scale.jobs_per_client
        t0 = time.perf_counter()
        per_client = await asyncio.gather(*[
            _client_task(port, scale, jobs[c * m:(c + 1) * m])
            for c in range(scale.clients)])
        wall = time.perf_counter() - t0
        stats = service.stats()
    finally:
        await service.stop()
    return wall, [r for client in per_client for r in client], stats


def _payload_fingerprint(payload: dict) -> str:
    """Timing-free identity of one job's full result payload."""
    canon = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(canon).hexdigest()[:16]


def _measure(scale: ServeScale, jobs: list[tuple[str, str]],
             window_s: float, repeats: int) -> tuple[dict, dict]:
    """Best-of-``repeats`` swarm; returns (timing doc, payloads by key)."""
    best = None
    for _ in range(max(1, repeats)):
        run = asyncio.run(_swarm(scale, jobs, window_s))
        if best is None or run[0] < best[0]:
            best = run
    wall, results, stats = best
    latencies = np.array(sorted(lat for _, lat, _ in results))
    timing = {
        "wall_s": round(wall, 4),
        "requests_per_s": round(len(results) / wall, 2),
        "p50_latency_ms": round(float(np.percentile(latencies, 50)) * 1e3, 2),
        "p99_latency_ms": round(float(np.percentile(latencies, 99)) * 1e3, 2),
        "waves": stats["batcher"]["waves"],
        "biggest_wave": stats["batcher"]["biggest_wave"],
    }
    return timing, {key: payload for key, _, payload in results}


def run_serve_scale(scale: ServeScale, repeats: int = 2) -> dict:
    """Measure one pinned scale, coalesced and solo, with parity check."""
    jobs = serve_jobs(scale)
    coalesced, coalesced_payloads = _measure(scale, jobs, scale.window_s,
                                             repeats)
    solo, solo_payloads = _measure(scale, jobs, 0.0, repeats)
    fingerprints = {key: _payload_fingerprint(payload)
                    for key, payload in sorted(coalesced_payloads.items())}
    for key, fp in fingerprints.items():
        # _measure returns timing and payloads in one tuple, so the taint
        # pass sees perf_counter reaching this fingerprint; the payloads
        # themselves are deterministic job results (this very parity
        # check is what would catch any drift).
        solo_fp = _payload_fingerprint(solo_payloads[key])  # repro: noqa REP010
        if fp != solo_fp:
            raise ReproError(
                f"multi-tenant parity violated at scale {scale.name!r}: "
                f"job {key} returned {fp} coalesced but {solo_fp} solo")
    speedup = (round(coalesced["requests_per_s"] / solo["requests_per_s"], 2)
               if solo["requests_per_s"] else 0.0)
    return {
        "pins": {**asdict(scale), "k_schedule": list(scale.k_schedule)},
        "counters": {
            "jobs": scale.total_jobs,
            "result_fingerprints": fingerprints,
        },
        "coalesced": coalesced,
        "solo": solo,
        "speedup": speedup,
        "min_speedup": scale.min_speedup,
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    }


def collect_serve_bench(smoke_only: bool = False, repeats: int = 2) -> dict:
    """Run the pinned scales and assemble the ``BENCH_serve.json`` doc."""
    names = ("smoke",) if smoke_only else ("smoke", "full")
    return {
        "schema": BENCH_SERVE_SCHEMA,
        "scales": {n: run_serve_scale(_SCALES[n], repeats) for n in names},
    }


def floor_problems(current: dict) -> list[str]:
    """In-run gate: each measured scale must clear its speedup floor."""
    problems: list[str] = []
    for name, scale in current.get("scales", {}).items():
        floor = scale.get("min_speedup", 0.0)
        speedup = scale.get("speedup", 0.0)
        if speedup < floor:
            problems.append(
                f"{name}: coalescing speedup {speedup:.2f}x is below the "
                f"{floor:.1f}x floor "
                f"(coalesced {scale['coalesced']['requests_per_s']:.2f} "
                f"req/s vs solo {scale['solo']['requests_per_s']:.2f})")
    return problems


def compare_serve_bench(baseline: dict, current: dict,
                        max_regression: float = MAX_REGRESSION) -> list[str]:
    """Baseline gate (empty = pass): exact counters, banded throughput."""
    from repro.analysis.bench import _first_divergence

    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema changed: baseline {baseline.get('schema')} != "
            f"current {current.get('schema')}; re-commit the baseline")
        return problems
    for name, cur in current.get("scales", {}).items():
        base = baseline.get("scales", {}).get(name)
        if base is None:
            continue
        diff = _first_divergence(base.get("counters"), cur.get("counters"))
        if diff is not None:
            problems.append(
                f"{name}: serve result identity diverged from the "
                f"committed baseline at {diff}")
        tp_base = base.get("coalesced", {}).get("requests_per_s") or 0.0
        tp_cur = cur.get("coalesced", {}).get("requests_per_s") or 0.0
        if tp_base > 0 and tp_cur < tp_base * (1.0 - max_regression):
            problems.append(
                f"{name}: coalesced throughput regressed to {tp_cur:.2f} "
                f"req/s (baseline {tp_base:.2f}, gate at "
                f"-{max_regression:.0%})")
    return problems
