"""The coalescing batcher: fuse queued jobs into megabatch waves.

Jobs bucket by their :attr:`~repro.serve.protocol.JobOptions.coalescing_key`
(only jobs that would run on the same kernel configuration may fuse).
The first job landing in an empty bucket arms a **window timer**; every
further job joins the bucket until either

* the window expires (latency bound: a lone job never waits longer than
  the window), or
* the bucket's warp estimate crosses the **high-water mark** (throughput
  bound: a burst flushes as soon as a wave is big enough to be worth
  launching, without waiting out the window).

Either trigger flushes the bucket as one wave to the dispatch callback.
``window == 0`` degenerates to one-launch-per-job — the uncoalesced
baseline the benchmark compares against.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.serve.protocol import JobSpec

DEFAULT_WINDOW_S = 0.01
DEFAULT_MAX_WAVE_WARPS = 4096


@dataclass
class _Bucket:
    jobs: list[JobSpec] = field(default_factory=list)
    warps: int = 0
    timer: asyncio.Task | None = None


class CoalescingBatcher:
    """Window-or-high-water job fusion in front of the worker pool.

    ``dispatch(key, jobs)`` is an async callable invoked once per wave,
    on the event loop, with at least one job. Single-threaded by
    construction: submits and flushes both run on the loop, so bucket
    state needs no locking.
    """

    def __init__(self, dispatch, window_s: float = DEFAULT_WINDOW_S,
                 max_wave_warps: int = DEFAULT_MAX_WAVE_WARPS,
                 window_scale=None) -> None:
        if window_s < 0:
            raise ReproError(f"window_s must be >= 0, got {window_s}")
        if max_wave_warps < 1:
            raise ReproError(
                f"max_wave_warps must be >= 1, got {max_wave_warps}")
        self._dispatch = dispatch
        self.window_s = window_s
        self.max_wave_warps = max_wave_warps
        # optional () -> float in [0, 1]: the load shedder shrinks the
        # effective window as in-flight depth grows; sampled per submit
        self._window_scale = window_scale
        self._buckets: dict[tuple, _Bucket] = {}
        self.waves = 0
        self.jobs_waved = 0
        self.biggest_wave = 0

    def effective_window_s(self) -> float:
        if self._window_scale is None:
            return self.window_s
        return self.window_s * max(0.0, min(1.0, self._window_scale()))

    async def submit(self, spec: JobSpec) -> None:
        """Add one admitted job; may flush a wave before returning."""
        key = spec.options.coalescing_key
        window = self.effective_window_s()
        if window == 0:
            # permanently (window_s == 0: the uncoalesced baseline) or
            # temporarily (fully shed): flush this job as a solo wave
            await self._launch(key, [spec])
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
        bucket.jobs.append(spec)
        # each contig runs as one warp per extension direction
        bucket.warps += 2 * spec.n_contigs
        if bucket.warps >= self.max_wave_warps:
            await self._flush(key)
        elif bucket.timer is None:
            bucket.timer = asyncio.get_running_loop().create_task(
                self._window_expiry(key, window))

    async def flush_all(self) -> None:
        """Flush every armed bucket now (drain on shutdown)."""
        for key in list(self._buckets):
            await self._flush(key)

    def stats(self) -> dict:
        return {"waves": self.waves, "jobs_waved": self.jobs_waved,
                "biggest_wave": self.biggest_wave,
                "window_s": self.window_s,
                "effective_window_s": self.effective_window_s(),
                "max_wave_warps": self.max_wave_warps,
                "pending_buckets": len(self._buckets)}

    async def _window_expiry(self, key: tuple, window: float) -> None:
        await asyncio.sleep(window)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.timer = None  # expired, not cancelled
            await self._flush(key)

    async def _flush(self, key: tuple) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None or not bucket.jobs:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        await self._launch(key, bucket.jobs)

    async def _launch(self, key: tuple, jobs: list[JobSpec]) -> None:
        self.waves += 1
        self.jobs_waved += len(jobs)
        self.biggest_wave = max(self.biggest_wave, len(jobs))
        await self._dispatch(key, jobs)


__all__ = ["CoalescingBatcher", "DEFAULT_MAX_WAVE_WARPS", "DEFAULT_WINDOW_S"]
