"""Admission control: a bounded in-flight budget for the service.

The coalescing batcher makes queueing *attractive* — a deep backlog
fuses into bigger, cheaper waves — but an unbounded backlog turns burst
overload into unbounded latency and memory. Admission control caps the
number of jobs accepted-but-not-finished; a submit past the cap is
rejected immediately (HTTP 429) so clients can back off and retry,
rather than queue behind work the service cannot promise to start.
"""

from __future__ import annotations

from repro.errors import ReproError

DEFAULT_MAX_IN_FLIGHT = 256


class AdmissionControl:
    """Counting gate over jobs between acceptance and completion.

    Purely synchronous bookkeeping — the service calls :meth:`try_admit`
    on submit and :meth:`release` when a job reaches a terminal state,
    all on the event loop, so no locking is needed.
    """

    def __init__(self, max_in_flight: int = DEFAULT_MAX_IN_FLIGHT) -> None:
        if max_in_flight < 1:
            raise ReproError(
                f"max_in_flight must be >= 1, got {max_in_flight}")
        self.max_in_flight = max_in_flight
        self.in_flight = 0
        self.admitted = 0
        self.rejected = 0

    def try_admit(self, budget: int | None = None) -> bool:
        """Admit one job, or refuse when the in-flight budget is spent.

        ``budget`` optionally tightens (never widens) the configured
        budget for this one decision — the load shedder passes a
        reduced budget while the service is degraded.
        """
        limit = self.max_in_flight
        if budget is not None:
            limit = min(limit, budget)
        if self.in_flight >= limit:
            self.rejected += 1
            return False
        self.in_flight += 1
        self.admitted += 1
        return True

    def admit(self) -> None:
        """Admit unconditionally (journal recovery re-seats acknowledged
        jobs even when the budget would refuse new work)."""
        self.in_flight += 1
        self.admitted += 1

    def release(self) -> None:
        """A previously admitted job reached a terminal state."""
        if self.in_flight <= 0:
            raise ReproError("release() without a matching try_admit()")
        self.in_flight -= 1

    def stats(self) -> dict:
        return {"in_flight": self.in_flight,
                "max_in_flight": self.max_in_flight,
                "admitted": self.admitted,
                "rejected": self.rejected}


__all__ = ["AdmissionControl", "DEFAULT_MAX_IN_FLIGHT"]
