"""Crash-safe job journal: an append-only, CRC-framed write-ahead log.

The service's in-memory job table dies with the process; the journal is
its durable shadow. Every lifecycle transition appends one framed
record::

    <crc32 hex8> <canonical JSON>\n

The JSON carries a monotonically increasing ``seq``, the operation
(``submit`` / ``dispatch`` / ``finish`` / ``shutdown``) and the
operation's data. Appends are flushed and (by default) fsynced before
the caller proceeds — the service journals a ``submit`` *before*
acknowledging it with 202, so an acknowledged job is always recoverable.

Recovery (:meth:`JobJournal.replay`) tolerates a torn tail: a kill -9
mid-append leaves at most one partial line, which fails its CRC frame
and is dropped (counted, for the post-mortem) without invalidating the
records before it. Replays fold the record stream into the last known
phase per job: ``finish``ed jobs resume from their checkpoints, anything
acknowledged but unfinished re-dispatches.

Framing follows the same discipline as
:class:`~repro.resilience.CheckpointStore`: corruption must be
*detected*, never silently parsed — but unlike checkpoints (one atomic
file per result) a WAL cannot rename-over per append, so each record
carries its own CRC instead.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Bumped when the record framing changes incompatibly.
JOURNAL_FORMAT = 1

#: The lifecycle operations a journal may record.
JOURNAL_OPS = ("open", "submit", "dispatch", "finish", "shutdown")


class JournalError(ReproError):
    """A journal cannot be appended to or replayed."""


def frame_record(record: dict) -> bytes:
    """Frame one record as ``<crc32 hex8> <json>\\n``."""
    body = json.dumps(record, sort_keys=True).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + body + b"\n"


def parse_frame(line: bytes) -> dict | None:
    """Parse one framed line; ``None`` for torn / corrupt frames."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:].rstrip(b"\n")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


@dataclass
class JournalState:
    """The fold of a journal's record stream at recovery time."""

    #: job_id -> last known record data, with a ``"phase"`` key folded in.
    jobs: dict[str, dict] = field(default_factory=dict)
    #: highest numeric job id seen (resume the id counter past it).
    max_job_ordinal: int = 0
    #: frames read successfully.
    records: int = 0
    #: frames dropped (torn tail from a crash, or on-disk damage).
    torn: int = 0
    #: the journal ends with a clean ``shutdown`` record.
    clean_shutdown: bool = False

    def pending(self) -> list[dict]:
        """Jobs acknowledged but not finished — these must re-dispatch."""
        return [job for job in self.jobs.values()
                if job.get("phase") != "finish"]

    def finished(self) -> list[dict]:
        """Jobs that reached a terminal state before the crash."""
        return [job for job in self.jobs.values()
                if job.get("phase") == "finish"]


class JobJournal:
    """Append-only WAL over one journal file.

    Appends are serialized by an internal lock so the service may issue
    them from executor threads; each append writes one framed line,
    flushes, and fsyncs (``fsync=False`` trades durability for test
    speed). All methods are synchronous file I/O — the service calls
    them via ``run_in_executor``, never on the event loop.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._seq = 0
        self.appends = 0
        self._fh = open(self.path, "ab")
        self.append("open", format=JOURNAL_FORMAT, pid=os.getpid())

    def append(self, op: str, **data) -> int:
        """Durably append one record; returns its sequence number."""
        if op not in JOURNAL_OPS:
            raise JournalError(f"unknown journal op {op!r}")
        with self._lock:
            if self._fh.closed:
                raise JournalError(f"journal {self.path} is closed")
            self._seq += 1
            record = {"seq": self._seq, "op": op, **data}
            self._fh.write(frame_record(record))
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self.appends += 1
            return self._seq

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    # ------------------------------------------------------------------
    # recovery

    @staticmethod
    def replay(path: str | Path) -> JournalState:
        """Fold a journal file into per-job recovery state.

        Corrupt frames are dropped and counted; a ``submit`` whose frame
        was torn was never acknowledged (the 202 waits for the append),
        so dropping it loses nothing the client was promised.
        """
        state = JournalState()
        p = Path(path)
        if not p.exists():
            return state
        for line in p.read_bytes().splitlines(keepends=True):
            record = parse_frame(line)
            if record is None:
                if line.strip():
                    state.torn += 1
                continue
            state.records += 1
            op = record.get("op")
            job_id = record.get("job_id")
            if op == "shutdown":
                state.clean_shutdown = True
                continue
            state.clean_shutdown = False
            if op == "submit" and isinstance(job_id, str):
                job = {k: v for k, v in record.items()
                       if k not in ("seq", "op")}
                job["phase"] = "submit"
                state.jobs[job_id] = job
                if job_id.startswith("j"):
                    try:
                        state.max_job_ordinal = max(
                            state.max_job_ordinal, int(job_id[1:]))
                    except ValueError:
                        pass
            elif op in ("dispatch", "finish"):
                # dispatch records cover a whole wave ("job_ids"); finish
                # records are per job ("job_id")
                ids = record.get("job_ids") or (
                    [job_id] if isinstance(job_id, str) else [])
                for jid in ids:
                    job = state.jobs.get(jid)
                    if job is not None:
                        job["phase"] = op
                        for key in ("status", "resumed"):
                            if key in record:
                                job[key] = record[key]
        return state


__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_OPS",
    "JobJournal",
    "JournalError",
    "JournalState",
    "frame_record",
    "parse_frame",
]
