"""The async assembly service: HTTP front, coalescing middle, waves out.

Endpoints (HTTP/1.1, JSON bodies)::

    POST /v1/jobs             submit a job  -> 202 {"job_id", "status"}
                              over budget   -> 429 {"error"}
                              malformed     -> 400 {"error"}
    GET  /v1/jobs/<id>        poll          -> 200 {"status", ...}
    GET  /v1/jobs/<id>/result result        -> 200 payload | 409 pending
    GET  /v1/stats            service counters (admission, waves, cache)

The request path is fully async (stdlib ``asyncio.start_server`` plus a
minimal HTTP parser — no third-party dependencies); assembly itself runs
in an executor so the event loop keeps accepting and coalescing during a
wave. ``workers <= 1`` uses a dedicated single-thread executor (one
wave at a time, cache shared in-process); ``workers > 1`` uses a
process pool so independent waves overlap across cores.

With a checkpoint directory configured, every finished job is persisted
through :class:`~repro.resilience.CheckpointStore` under its request
fingerprint, and an identical resubmission — same payload, same
execution options — completes instantly from the checkpoint instead of
recomputing (the poll body says ``"resumed": true``). Checkpoint I/O is
synchronous file I/O and therefore also runs in the executor, never on
the event loop.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import CheckpointError, ReproError
from repro.resilience.checkpoint import (
    CheckpointStore,
    result_from_dict,
    result_to_dict,
)
from repro.serve.batcher import (
    DEFAULT_MAX_WAVE_WARPS,
    DEFAULT_WINDOW_S,
    CoalescingBatcher,
)
from repro.serve.protocol import JobSpec, JobStatus, ProtocolError, \
    parse_job_request
from repro.serve.queue import DEFAULT_MAX_IN_FLIGHT, AdmissionControl
from repro.serve.worker import (
    DEFAULT_CACHE_ENTRIES,
    configure_worker,
    prep_cache,
    run_wave,
)
from repro.simt.device import device_by_name

_MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass
class JobRecord:
    spec: JobSpec
    status: JobStatus = JobStatus.QUEUED
    payload: dict | None = None
    error: str | None = None
    resumed: bool = False
    submitted_at: float = 0.0
    finished_at: float = 0.0

    def status_body(self) -> dict:
        body = {"job_id": self.spec.job_id, "status": self.status.value,
                "fingerprint": self.spec.fingerprint}
        if self.resumed:
            body["resumed"] = True
        if self.error is not None:
            body["error"] = self.error
        return body


class AssemblyService:
    """A long-lived coalescing assembly server over one event loop.

    Args:
        window_s: coalescing window; 0 disables fusion (solo waves).
        max_wave_warps: high-water mark flushing a bucket early.
        max_in_flight: admission budget (submits past it get 429).
        workers: > 1 runs waves on a process pool; otherwise a thread.
        checkpoint_dir: enables per-job checkpoint/resume when set.
        cache_entries: bound of each worker's shared prepare cache.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 max_wave_warps: int = DEFAULT_MAX_WAVE_WARPS,
                 max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
                 workers: int = 1,
                 checkpoint_dir: str | None = None,
                 cache_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.admission = AdmissionControl(max_in_flight)
        self.batcher = CoalescingBatcher(self._dispatch, window_s=window_s,
                                         max_wave_warps=max_wave_warps)
        self.workers = workers
        self.cache_entries = cache_entries
        self.checkpoint_dir = checkpoint_dir
        self._store: CheckpointStore | None = None
        self._jobs: dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self._pool: Executor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._wave_tasks: set[asyncio.Task] = set()
        self._clients: set[asyncio.Task] = set()
        self.completed = 0
        self.failed = 0
        self.resumed = 0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and serve; returns the actual port (0 picks one)."""
        if self.workers > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=configure_worker,
                initargs=(self.cache_entries,))
        else:
            # A dedicated single-thread lane, NOT the default executor:
            # waves must run one at a time (the documented workers=1
            # semantics, and what the coalescing benchmark relies on for
            # a fair one-launch-per-job baseline), while checkpoint I/O
            # keeps the default executor to itself.
            configure_worker(self.cache_entries)
            self._pool = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="wave")
        if self.checkpoint_dir is not None:
            loop = asyncio.get_running_loop()
            self._store = await loop.run_in_executor(
                None, lambda: CheckpointStore(self.checkpoint_dir,
                                              meta={"suite": "serve"}))
        self._server = await asyncio.start_server(
            self._handle_client, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Drain armed buckets, finish in-flight waves, close the server."""
        await self.batcher.flush_all()
        while self._wave_tasks:
            await asyncio.gather(*list(self._wave_tasks),
                                 return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*list(self._clients),
                                 return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # job flow

    async def submit(self, body: dict) -> tuple[int, dict]:
        """Admit, fingerprint, resume-or-enqueue one submission."""
        if not self.admission.try_admit():
            return 429, {"error": "service at capacity, retry later",
                         **self.admission.stats()}
        try:
            spec = parse_job_request(body, job_id=f"j{next(self._ids)}")
        except ProtocolError as exc:
            self.admission.release()
            return 400, {"error": str(exc)}
        record = JobRecord(spec=spec,
                           submitted_at=asyncio.get_running_loop().time())
        self._jobs[spec.job_id] = record
        resumed = await self._try_resume(record)
        if not resumed:
            await self.batcher.submit(spec)
        return 202, record.status_body()

    async def _try_resume(self, record: JobRecord) -> bool:
        """Complete a job from its fingerprint checkpoint, if present."""
        if self._store is None:
            return False
        spec = record.spec
        device = device_by_name(spec.options.device)
        loop = asyncio.get_running_loop()
        try:
            loaded = await loop.run_in_executor(
                None, self._store.load_named,
                f"job-{spec.fingerprint}", spec.options.k_schedule[-1],
                device)
        except CheckpointError:
            return False  # unreadable checkpoint: recompute
        if loaded is None:
            return False
        result, _profile = loaded
        record.payload = {"ok": True, "result": result_to_dict(result)}
        record.resumed = True
        self.resumed += 1
        self._finish(record, JobStatus.DONE)
        return True

    async def _dispatch(self, key: tuple, jobs: list[JobSpec]) -> None:
        """Batcher callback: run one wave in the executor, scatter back."""
        task = asyncio.get_running_loop().create_task(
            self._run_wave(key, jobs))
        self._wave_tasks.add(task)
        task.add_done_callback(self._wave_tasks.discard)

    async def _run_wave(self, key: tuple, jobs: list[JobSpec]) -> None:
        for spec in jobs:
            self._jobs[spec.job_id].status = JobStatus.RUNNING
        wave = {"options": jobs[0].options.to_dict(),
                "jobs": [{"job_id": s.job_id, "dat": s.dat,
                          "fingerprint": s.fingerprint} for s in jobs]}
        loop = asyncio.get_running_loop()
        try:
            payloads = await loop.run_in_executor(self._pool, run_wave, wave)
        except Exception as exc:  # wave-level failure fails every job
            for spec in jobs:
                record = self._jobs[spec.job_id]
                record.error = str(exc)
                self._finish(record, JobStatus.FAILED)
            return
        for spec, payload in zip(jobs, payloads):
            record = self._jobs[spec.job_id]
            record.payload = payload
            if payload.get("ok"):
                await self._save_checkpoint(record)
                self._finish(record, JobStatus.DONE)
            else:
                record.error = payload.get("error")
                self._finish(record, JobStatus.FAILED)

    async def _save_checkpoint(self, record: JobRecord) -> None:
        if self._store is None:
            return
        spec = record.spec
        device = device_by_name(spec.options.device)
        result = result_from_dict(record.payload["result"], device)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self._store.save, f"job-{spec.fingerprint}",
            spec.options.k_schedule[-1], result, result.profile)

    def _finish(self, record: JobRecord, status: JobStatus) -> None:
        record.status = status
        record.finished_at = asyncio.get_running_loop().time()
        if status is JobStatus.DONE:
            self.completed += 1
        else:
            self.failed += 1
        self.admission.release()

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, payload = await self._route(method, path, body)
                data = json.dumps(payload).encode()
                writer.write(
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: keep-alive\r\n\r\n".encode() + data)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # stop() may cancel a handler that is already draining
                # its closed transport; that is a clean exit, not noise
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode().split()
        except ValueError:
            return None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode().partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, dict]:
        if method == "POST" and path == "/v1/jobs":
            try:
                parsed = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                return 400, {"error": f"bad JSON body: {exc}"}
            return await self.submit(parsed)
        if method == "GET" and path == "/v1/stats":
            return 200, self.stats()
        if method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            record = self._jobs.get(job_id)
            if record is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            if tail == "":
                return 200, record.status_body()
            if tail == "result":
                if record.status is JobStatus.DONE:
                    return 200, record.payload
                if record.status is JobStatus.FAILED:
                    return 200, record.payload or {
                        "ok": False, "error": record.error}
                return 409, {"error": "job still pending",
                             **record.status_body()}
        return 404, {"error": f"no route for {method} {path}"}

    def stats(self) -> dict:
        cache = prep_cache()
        return {
            "admission": self.admission.stats(),
            "batcher": self.batcher.stats(),
            "jobs": {"completed": self.completed, "failed": self.failed,
                     "resumed": self.resumed, "known": len(self._jobs)},
            "prep_cache": {"hits": cache.hits, "misses": cache.misses,
                           "evictions": cache.evictions,
                           "entries": len(cache)},
            "workers": self.workers,
        }


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 429: "Too Many Requests"}


async def serve_forever(host: str, port: int, **kwargs) -> None:
    """CLI entry: run an :class:`AssemblyService` until cancelled."""
    service = AssemblyService(**kwargs)
    bound = await service.start(host, port)
    print(f"repro serve: listening on http://{host}:{bound} "
          f"(window={service.batcher.window_s * 1000:g}ms, "
          f"high-water={service.batcher.max_wave_warps} warps, "
          f"workers={service.workers})")
    try:
        await asyncio.Event().wait()
    finally:
        await service.stop()


__all__ = ["AssemblyService", "JobRecord", "serve_forever"]
