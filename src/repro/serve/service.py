"""The async assembly service: HTTP front, coalescing middle, waves out.

Endpoints (HTTP/1.1, JSON bodies)::

    POST /v1/jobs             submit a job  -> 202 {"job_id", "status"}
                              over budget   -> 429 {"error"}
                              malformed     -> 400 {"error"}
                              draining      -> 503 {"error"}
    GET  /v1/jobs/<id>        poll          -> 200 {"status", ...}
    GET  /v1/jobs/<id>/result result        -> 200 payload | 409 pending
    GET  /v1/stats            service counters (admission, waves, cache)

The request path is fully async (stdlib ``asyncio.start_server`` plus a
minimal HTTP parser — no third-party dependencies); assembly itself runs
in an executor so the event loop keeps accepting and coalescing during a
wave. ``workers <= 1`` uses a dedicated single-thread executor (one
wave at a time, cache shared in-process); ``workers > 1`` uses a
process pool so independent waves overlap across cores.

Every wave runs under the :class:`~repro.serve.supervisor.WaveSupervisor`
fault boundary: per-job deadlines, seeded backoff+jitter retries for
transient failures, blast-radius bisection for crashes and timeouts, a
per-coalescing-key circuit breaker, and load shedding that shrinks the
coalescing window and tightens admission as depth grows. A worker crash
therefore fails only the poisoned job, byte-identically to what its
co-tenants would have produced anyway (record/replay parity).

With a checkpoint directory configured, every finished job is persisted
through :class:`~repro.resilience.CheckpointStore` under its request
fingerprint, and an identical resubmission — same payload, same
execution options — completes instantly from the checkpoint instead of
recomputing (the poll body says ``"resumed": true``). With a journal
path configured, every submit is durably logged *before* its 202
acknowledgement, so ``repro serve --recover`` after a kill -9 re-seats
every acknowledged job: finished ones from their checkpoints, in-flight
ones by re-dispatch. Checkpoint and journal I/O are synchronous file
I/O and therefore always run in the executor, never on the event loop.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import json
import signal
from concurrent.futures import BrokenExecutor, Executor, \
    ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import CheckpointError, ReproError
from repro.resilience.checkpoint import (
    CheckpointStore,
    result_from_dict,
    result_to_dict,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    corrupt_file,
)
from repro.serve.batcher import (
    DEFAULT_MAX_WAVE_WARPS,
    DEFAULT_WINDOW_S,
    CoalescingBatcher,
)
from repro.serve.journal import JobJournal, JournalState
from repro.serve.protocol import JobOptions, JobSpec, JobStatus, \
    ProtocolError, parse_job_request
from repro.serve.queue import DEFAULT_MAX_IN_FLIGHT, AdmissionControl
from repro.serve.supervisor import (
    DEFAULT_BREAKER_COOLDOWN_S,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_DEADLINE_S,
    CircuitBreaker,
    LoadShedder,
    WaveSupervisor,
)
from repro.serve.worker import (
    DEFAULT_CACHE_ENTRIES,
    configure_worker,
    prep_cache,
    run_wave,
)
from repro.simt.device import device_by_name

_MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass
class JobRecord:
    spec: JobSpec
    status: JobStatus = JobStatus.QUEUED
    payload: dict | None = None
    error: str | None = None
    resumed: bool = False
    recovered: bool = False
    submitted_at: float = 0.0
    finished_at: float = 0.0

    def status_body(self) -> dict:
        body = {"job_id": self.spec.job_id, "status": self.status.value,
                "fingerprint": self.spec.fingerprint}
        if self.resumed:
            body["resumed"] = True
        if self.recovered:
            body["recovered"] = True
        if self.error is not None:
            body["error"] = self.error
        return body


class AssemblyService:
    """A long-lived coalescing assembly server over one event loop.

    Args:
        window_s: coalescing window; 0 disables fusion (solo waves).
        max_wave_warps: high-water mark flushing a bucket early.
        max_in_flight: admission budget (submits past it get 429).
        workers: > 1 runs waves on a process pool; otherwise a thread.
        checkpoint_dir: enables per-job checkpoint/resume when set.
        cache_entries: bound of each worker's shared prepare cache.
        journal_path: enables the crash-safe job journal when set.
        recover: replay the journal on start, re-seating acknowledged
            jobs (requires ``journal_path``).
        default_deadline_s: per-job deadline when a submission has none.
        wave_retries: transient re-attempts per wave before bisection.
        drain_timeout_s: default bound on :meth:`stop`'s drain phase.
        breaker_threshold / breaker_cooldown_s: circuit breaker tuning.
        fault_plan: optional seeded chaos plan; wave- and
            checkpoint-scoped faults fire in the service process.
        seed: seeds the retry-jitter generator.
        journal_fsync: fsync each journal append (disable in tests).
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 max_wave_warps: int = DEFAULT_MAX_WAVE_WARPS,
                 max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
                 workers: int = 1,
                 checkpoint_dir: str | None = None,
                 cache_entries: int = DEFAULT_CACHE_ENTRIES,
                 journal_path: str | None = None,
                 recover: bool = False,
                 default_deadline_s: float = DEFAULT_DEADLINE_S,
                 wave_retries: int = 2,
                 drain_timeout_s: float | None = None,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
                 fault_plan: FaultPlan | None = None,
                 seed: int = 0,
                 journal_fsync: bool = True) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if recover and journal_path is None:
            raise ReproError("recover=True requires a journal_path")
        self.admission = AdmissionControl(max_in_flight)
        self.shedder = LoadShedder(max_in_flight)
        self.supervisor = WaveSupervisor(
            self._execute_wave,
            default_deadline_s=default_deadline_s,
            retries=wave_retries,
            seed=seed,
            breaker=CircuitBreaker(threshold=breaker_threshold,
                                   cooldown_s=breaker_cooldown_s),
            injector=(FaultInjector(fault_plan)
                      if fault_plan is not None else None))
        self.batcher = CoalescingBatcher(
            self._dispatch, window_s=window_s,
            max_wave_warps=max_wave_warps,
            window_scale=lambda: self.shedder.window_scale(
                self.admission.in_flight))
        self.workers = workers
        self.cache_entries = cache_entries
        self.checkpoint_dir = checkpoint_dir
        self.journal_path = journal_path
        self.journal_fsync = journal_fsync
        self.recover = recover
        self.drain_timeout_s = drain_timeout_s
        self._store: CheckpointStore | None = None
        self._journal: JobJournal | None = None
        self._jobs: dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self._pool: Executor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._wave_tasks: set[asyncio.Task] = set()
        self._clients: set[asyncio.Task] = set()
        self._draining = False
        self.completed = 0
        self.failed = 0
        self.resumed = 0
        self.recovered_finished = 0
        self.recovered_pending = 0
        self.recovery_torn = 0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and serve; returns the actual port (0 picks one)."""
        loop = asyncio.get_running_loop()
        if self.workers > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=configure_worker,
                initargs=(self.cache_entries,))
        else:
            # A dedicated single-thread lane, NOT the default executor:
            # waves must run one at a time (the documented workers=1
            # semantics, and what the coalescing benchmark relies on for
            # a fair one-launch-per-job baseline), while checkpoint I/O
            # keeps the default executor to itself.
            configure_worker(self.cache_entries)
            self._pool = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="wave")
        if self.checkpoint_dir is not None:
            self._store = await loop.run_in_executor(
                None, lambda: CheckpointStore(self.checkpoint_dir,
                                              meta={"suite": "serve"}))
        recovered: JournalState | None = None
        if self.journal_path is not None:
            if self.recover:
                recovered = await loop.run_in_executor(
                    None, JobJournal.replay, self.journal_path)
            self._journal = await loop.run_in_executor(
                None, lambda: JobJournal(self.journal_path,
                                         fsync=self.journal_fsync))
        if recovered is not None:
            await self._recover(recovered)
        self._server = await asyncio.start_server(
            self._handle_client, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def _recover(self, state: JournalState) -> None:
        """Re-seat every acknowledged job from a replayed journal.

        Jobs the journal saw finish come back from their checkpoints
        (``done``) or their recorded error (``failed``); anything
        acknowledged but unfinished — including jobs whose checkpoint
        went missing or corrupt in the crash — re-dispatches through the
        batcher. Admission is seated unconditionally: these jobs were
        already promised a result.
        """
        self.recovery_torn = state.torn
        if state.max_job_ordinal:
            self._ids = itertools.count(state.max_job_ordinal + 1)
        loop = asyncio.get_running_loop()
        for job_id, job in state.jobs.items():
            try:
                options = JobOptions(
                    device=job["options"]["device"],
                    backend=job["options"]["backend"],
                    k_schedule=tuple(job["options"]["k_schedule"]),
                    overflow_policy=job["options"]["overflow_policy"])
                spec = JobSpec(job_id=job_id, dat=job["dat"],
                               n_contigs=int(job["n_contigs"]),
                               options=options,
                               fingerprint=job["fingerprint"],
                               deadline_s=job.get("deadline_s"))
            except (KeyError, TypeError, ValueError):
                continue  # a damaged submit record cannot be re-seated
            record = JobRecord(spec=spec, recovered=True,
                               submitted_at=loop.time())
            self._jobs[job_id] = record
            self.admission.admit()
            if job.get("phase") == "finish" and job.get("status") == "failed":
                record.error = job.get("error")
                record.payload = {"ok": False, "error": record.error}
                self._finish(record, JobStatus.FAILED)
                self.recovered_finished += 1
                continue
            if await self._try_resume(record):
                self.recovered_finished += 1
                continue
            # acknowledged but not durably finished: run it (again)
            self.recovered_pending += 1
            await self.batcher.submit(spec)

    async def stop(self, drain_timeout_s: float | None = None) -> bool:
        """Drain, journal the final state, close the server.

        New submits are refused with 503 the moment draining starts.
        The drain (flush armed buckets + await in-flight waves) is
        bounded by ``drain_timeout_s`` (falling back to the constructor
        default; ``None`` drains without bound). Returns ``True`` when
        the drain completed, ``False`` when the bound expired with work
        still in flight — which the journal records, so a later
        ``--recover`` re-dispatches the abandoned jobs.
        """
        self._draining = True
        timeout = (drain_timeout_s if drain_timeout_s is not None
                   else self.drain_timeout_s)
        drained = True
        try:
            if timeout is not None:
                await asyncio.wait_for(self._drain(), timeout)
            else:
                await self._drain()
        except asyncio.TimeoutError:
            drained = False
        if self._journal is not None:
            await self._journal_append("shutdown", drained=drained)
            journal, self._journal = self._journal, None
            await asyncio.get_running_loop().run_in_executor(
                None, journal.close)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*list(self._clients),
                                 return_exceptions=True)
        if self._pool is not None:
            # an expired drain must not hang shutdown on a stuck wave
            self._pool.shutdown(wait=drained, cancel_futures=not drained)
            self._pool = None
        return drained

    async def _drain(self) -> None:
        await self.batcher.flush_all()
        while self._wave_tasks:
            await asyncio.gather(*list(self._wave_tasks),
                                 return_exceptions=True)

    # ------------------------------------------------------------------
    # job flow

    async def submit(self, body: dict) -> tuple[int, dict]:
        """Admit, journal, fingerprint, resume-or-enqueue one submission."""
        if self._draining:
            return 503, {"error": "service is draining, submit elsewhere"}
        budget = self.shedder.admission_budget(
            self.supervisor.breaker.open_keys())
        if not self.admission.try_admit(budget):
            return 429, {"error": "service at capacity, retry later",
                         **self.admission.stats()}
        try:
            spec = parse_job_request(body, job_id=f"j{next(self._ids)}")
        except ProtocolError as exc:
            self.admission.release()
            return 400, {"error": str(exc)}
        record = JobRecord(spec=spec,
                           submitted_at=asyncio.get_running_loop().time())
        self._jobs[spec.job_id] = record
        # durability before acknowledgement: the 202 below promises the
        # job will survive a crash, so the submit record hits disk first
        await self._journal_append(
            "submit", job_id=spec.job_id, dat=spec.dat,
            n_contigs=spec.n_contigs, options=spec.options.to_dict(),
            fingerprint=spec.fingerprint, deadline_s=spec.deadline_s)
        resumed = await self._try_resume(record)
        if not resumed:
            await self.batcher.submit(spec)
        return 202, record.status_body()

    async def _journal_append(self, op: str, **data) -> None:
        if self._journal is None:
            return
        await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(self._journal.append, op, **data))

    async def _try_resume(self, record: JobRecord) -> bool:
        """Complete a job from its fingerprint checkpoint, if present."""
        if self._store is None:
            return False
        spec = record.spec
        device = device_by_name(spec.options.device)
        loop = asyncio.get_running_loop()
        try:
            loaded = await loop.run_in_executor(
                None, self._store.load_named,
                f"job-{spec.fingerprint}", spec.options.k_schedule[-1],
                device)
        except CheckpointError:
            return False  # configuration mismatch: recompute
        if loaded is None:
            return False  # missing — or corrupt and quarantined
        result, _profile = loaded
        record.payload = {"ok": True, "result": result_to_dict(result)}
        record.resumed = True
        self.resumed += 1
        self._finish(record, JobStatus.DONE)
        await self._journal_append("finish", job_id=spec.job_id,
                                   status="done", resumed=True)
        return True

    async def _dispatch(self, key: tuple, jobs: list[JobSpec]) -> None:
        """Batcher callback: supervise one wave, scatter results back."""
        task = asyncio.get_running_loop().create_task(
            self._run_wave(key, jobs))
        self._wave_tasks.add(task)
        task.add_done_callback(self._wave_tasks.discard)

    async def _run_wave(self, key: tuple, jobs: list[JobSpec]) -> None:
        for spec in jobs:
            self._jobs[spec.job_id].status = JobStatus.RUNNING
        await self._journal_append("dispatch",
                                   job_ids=[s.job_id for s in jobs])
        try:
            payloads = await self.supervisor.run(key, jobs)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # the supervisor absorbs wave failures; this is the backstop
            # for bugs in the supervision path itself
            payloads = [{"ok": False, "error": str(exc),
                         "error_type": type(exc).__name__}
                        for _ in jobs]
        for spec, payload in zip(jobs, payloads):
            record = self._jobs[spec.job_id]
            record.payload = payload
            if payload.get("ok"):
                await self._save_checkpoint(record)
                self._finish(record, JobStatus.DONE)
            else:
                record.error = payload.get("error")
                self._finish(record, JobStatus.FAILED)
            await self._journal_append("finish", job_id=spec.job_id,
                                       status=record.status.value,
                                       error=record.error)

    async def _execute_wave(self, jobs: list[JobSpec]) -> list[dict]:
        """The supervisor's executor dispatch (retried / bisected there)."""
        wave = {"options": jobs[0].options.to_dict(),
                "jobs": [{"job_id": s.job_id, "dat": s.dat,
                          "fingerprint": s.fingerprint} for s in jobs]}
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._pool, run_wave, wave)
        except BrokenExecutor:
            # the pool is dead with the worker; stand up a fresh one so
            # the supervisor's bisection has somewhere to re-run
            self._rebuild_pool()
            raise

    def _rebuild_pool(self) -> None:
        if self.workers <= 1:
            return  # a thread lane survives worker exceptions
        old, self._pool = self._pool, ProcessPoolExecutor(
            max_workers=self.workers, initializer=configure_worker,
            initargs=(self.cache_entries,))
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    async def _save_checkpoint(self, record: JobRecord) -> None:
        if self._store is None:
            return
        spec = record.spec
        injector = self.supervisor.injector
        fault = (injector.checkpoint_fault(spec.fingerprint)
                 if injector is not None else None)
        if fault is not None and fault.kind is FaultKind.SLOW_DISK:
            await asyncio.sleep(fault.delay_s)
        device = device_by_name(spec.options.device)
        result = result_from_dict(record.payload["result"], device)
        loop = asyncio.get_running_loop()
        path = await loop.run_in_executor(
            None, self._store.save, f"job-{spec.fingerprint}",
            spec.options.k_schedule[-1], result, result.profile)
        if fault is not None and fault.kind is FaultKind.CHECKPOINT_CORRUPTION:
            # damage lands after the atomic write: modeled bit rot. The
            # next resume CRC-checks, quarantines, and recomputes.
            await loop.run_in_executor(None, corrupt_file, path)

    def _finish(self, record: JobRecord, status: JobStatus) -> None:
        record.status = status
        record.finished_at = asyncio.get_running_loop().time()
        if status is JobStatus.DONE:
            self.completed += 1
        else:
            self.failed += 1
        self.admission.release()

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, payload = await self._route(method, path, body)
                data = json.dumps(payload).encode()
                writer.write(
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: keep-alive\r\n\r\n".encode() + data)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # stop() may cancel a handler that is already draining
                # its closed transport; that is a clean exit, not noise
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode().split()
        except ValueError:
            return None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode().partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, dict]:
        if method == "POST" and path == "/v1/jobs":
            try:
                parsed = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                return 400, {"error": f"bad JSON body: {exc}"}
            return await self.submit(parsed)
        if method == "GET" and path == "/v1/stats":
            return 200, self.stats()
        if method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            record = self._jobs.get(job_id)
            if record is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            if tail == "":
                return 200, record.status_body()
            if tail == "result":
                if record.status is JobStatus.DONE:
                    return 200, record.payload
                if record.status is JobStatus.FAILED:
                    return 200, record.payload or {
                        "ok": False, "error": record.error}
                return 409, {"error": "job still pending",
                             **record.status_body()}
        return 404, {"error": f"no route for {method} {path}"}

    def stats(self) -> dict:
        cache = prep_cache()
        open_keys = self.supervisor.breaker.open_keys()
        body = {
            "admission": self.admission.stats(),
            "batcher": self.batcher.stats(),
            "jobs": {"completed": self.completed, "failed": self.failed,
                     "resumed": self.resumed, "known": len(self._jobs)},
            "prep_cache": {"hits": cache.hits, "misses": cache.misses,
                           "evictions": cache.evictions,
                           "entries": len(cache)},
            "workers": self.workers,
            "supervisor": self.supervisor.stats(),
            "shed": self.shedder.stats(self.admission.in_flight, open_keys),
            "draining": self._draining,
        }
        if self.journal_path is not None:
            body["journal"] = {
                "path": str(self.journal_path),
                "appends": (self._journal.appends
                            if self._journal is not None else 0),
                "recovered_finished": self.recovered_finished,
                "recovered_pending": self.recovered_pending,
                "recovery_torn": self.recovery_torn,
            }
        if self._store is not None:
            body["checkpoints"] = {
                "quarantined": len(self._store.quarantined)}
        return body


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 429: "Too Many Requests",
            503: "Service Unavailable"}


async def serve_forever(host: str, port: int,
                        drain_timeout_s: float | None = None,
                        **kwargs) -> None:
    """CLI entry: run an :class:`AssemblyService` until signalled.

    SIGTERM and SIGINT both trigger a graceful stop: refuse new submits
    with 503, drain in-flight waves (bounded by ``drain_timeout_s``),
    journal the final state, then exit.
    """
    service = AssemblyService(**kwargs)
    bound = await service.start(host, port)
    print(f"repro serve: listening on http://{host}:{bound} "
          f"(window={service.batcher.window_s * 1000:g}ms, "
          f"high-water={service.batcher.max_wave_warps} warps, "
          f"workers={service.workers})", flush=True)
    stopper = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stopper.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # platforms without loop signal handlers
    try:
        await stopper.wait()
    finally:
        drained = await service.stop(drain_timeout_s)
        print(f"repro serve: stopped "
              f"({'drained' if drained else 'drain timed out'})",
              flush=True)


__all__ = ["AssemblyService", "JobRecord", "serve_forever"]
