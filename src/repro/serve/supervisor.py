"""Wave supervision: deadlines, retries, bisection, breakers, shedding.

PR 7's service had exactly one failure mode for a fused wave: any
exception fails *every* job coalesced into it. This module is the fault
boundary that replaces that hole.

**WaveSupervisor** runs each wave under a deadline derived from the
jobs' own ``deadline_s`` budgets (minimum across the wave — a fused
launch can't honor one tenant's deadline by blowing another's).
Transient failures (:class:`~repro.errors.TransientError`) retry in
place with the shared :func:`~repro.resilience.retry.backoff_delay`
schedule, jittered by a seeded generator so retry storms decorrelate
deterministically. A worker crash (``BrokenExecutor`` /
:class:`~repro.resilience.InjectedCrashError`), a blown deadline, or a
deterministic wave poison triggers **blast-radius bisection**: the wave
re-runs as two halves, recursively, down to solo launches. Because
coalesced execution is byte-identical to solo execution per job (the
record/replay parity invariant of
:func:`~repro.kernels.engine.run_schedule_coalesced`), re-running a
half-wave yields exactly the results the original wave would have — so
a poisoned job fails alone while its co-tenants' results are unchanged,
bytewise. Bisection recurses sequentially (left half, then right) so
chaos runs replay deterministically.

**CircuitBreaker** tracks consecutive failures per coalescing key.
A key that keeps failing stops being fused — its jobs degrade to solo
launches (isolation, not rejection: solo work still completes) — until
a cooldown passes and a half-open probe wave is allowed to re-coalesce.

**LoadShedder** converts in-flight depth into backpressure: past a
configurable depth the batcher's coalescing window shrinks linearly to
zero (deep backlogs flush immediately instead of queueing further), and
while any breaker is open the admission budget is halved (degraded
capacity should refuse early, not accept work it will run slowly).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import BrokenExecutor

import numpy as np

from repro.errors import ReproError, TransientError
from repro.resilience.faults import FaultInjector, FaultKind, \
    InjectedCrashError
from repro.resilience.retry import (
    DEFAULT_BACKOFF,
    DEFAULT_JITTER,
    DEFAULT_RETRIES,
    backoff_delay,
)
from repro.serve.protocol import JobSpec

#: Per-job deadline when the submission does not name one.
DEFAULT_DEADLINE_S = 60.0

#: Consecutive failures per key before its breaker opens.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds an open breaker waits before allowing a half-open probe.
DEFAULT_BREAKER_COOLDOWN_S = 5.0


class WaveDeadlineError(ReproError):
    """A wave ran past the deadline derived from its jobs' budgets."""


class CircuitBreaker:
    """Per-coalescing-key failure tracking with half-open recovery.

    Purely synchronous bookkeeping on the event loop; the clock is
    injectable so tests control time.
    """

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
                 clock=time.monotonic) -> None:
        if threshold < 1:
            raise ReproError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._keys: dict[tuple, dict] = {}
        self.opened = 0

    def _entry(self, key: tuple) -> dict:
        entry = self._keys.get(key)
        if entry is None:
            entry = self._keys[key] = {
                "state": "closed", "failures": 0, "opened_at": 0.0}
        return entry

    def state(self, key: tuple) -> str:
        entry = self._keys.get(key)
        return entry["state"] if entry is not None else "closed"

    def allows_fusion(self, key: tuple) -> bool:
        """May this key's jobs still be coalesced into shared waves?"""
        entry = self._entry(key)
        if entry["state"] == "open":
            if self._clock() - entry["opened_at"] >= self.cooldown_s:
                entry["state"] = "half-open"
                return True
            return False
        return True

    def record_success(self, key: tuple) -> None:
        entry = self._entry(key)
        entry["state"] = "closed"
        entry["failures"] = 0

    def record_failure(self, key: tuple) -> None:
        entry = self._entry(key)
        if entry["state"] == "half-open":
            # the probe failed: straight back to open, cooldown restarts
            entry["state"] = "open"
            entry["opened_at"] = self._clock()
            self.opened += 1
            return
        entry["failures"] += 1
        if entry["state"] == "closed" and entry["failures"] >= self.threshold:
            entry["state"] = "open"
            entry["opened_at"] = self._clock()
            self.opened += 1

    def open_keys(self) -> int:
        return sum(1 for e in self._keys.values() if e["state"] == "open")

    def stats(self) -> dict:
        return {
            "keys": len(self._keys),
            "open": self.open_keys(),
            "half_open": sum(1 for e in self._keys.values()
                             if e["state"] == "half-open"),
            "opened_total": self.opened,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
        }


class LoadShedder:
    """Depth-proportional backpressure for the batcher and admission.

    ``window_scale`` multiplies the batcher's coalescing window: 1.0 up
    to ``shed_start`` of the in-flight budget, then linearly down to 0.0
    at the full budget (a saturated service flushes immediately — fusing
    is for throughput, and a deep backlog already has waves' worth of
    jobs per flush without waiting out a window). ``admission_budget``
    halves while any circuit breaker is open: degraded capacity refuses
    work up front instead of queueing it behind solo launches.
    """

    def __init__(self, max_in_flight: int,
                 shed_start: float = 0.5,
                 degraded_fraction: float = 0.5) -> None:
        if not 0.0 <= shed_start < 1.0:
            raise ReproError(
                f"shed_start must be in [0, 1), got {shed_start}")
        if not 0.0 < degraded_fraction <= 1.0:
            raise ReproError(
                f"degraded_fraction must be in (0, 1], got "
                f"{degraded_fraction}")
        self.max_in_flight = max_in_flight
        self.shed_start = shed_start
        self.degraded_fraction = degraded_fraction

    def window_scale(self, in_flight: int) -> float:
        start = self.shed_start * self.max_in_flight
        if in_flight <= start:
            return 1.0
        span = self.max_in_flight - start
        if span <= 0:
            return 0.0
        return max(0.0, 1.0 - (in_flight - start) / span)

    def admission_budget(self, open_breakers: int) -> int:
        if open_breakers <= 0:
            return self.max_in_flight
        return max(1, int(self.max_in_flight * self.degraded_fraction))

    def stats(self, in_flight: int, open_breakers: int) -> dict:
        return {
            "window_scale": round(self.window_scale(in_flight), 4),
            "admission_budget": self.admission_budget(open_breakers),
            "shed_start": self.shed_start,
        }


class WaveSupervisor:
    """The fault boundary between the batcher and the worker pool.

    Args:
        execute: async callable ``execute(jobs) -> list[dict]`` running
            one wave (the service's executor dispatch).
        default_deadline_s: per-job deadline when a submission has none.
        retries: in-place re-attempts for transient failures per wave.
        backoff_s: base of the geometric retry backoff.
        jitter: jitter fraction on the backoff (seeded, deterministic).
        seed: seeds the jitter generator.
        breaker: shared :class:`CircuitBreaker` (one per service).
        injector: optional seeded :class:`~repro.resilience.FaultInjector`
            whose wave-scoped faults fire here, in the service process —
            pool workers cannot share the plan's ``times`` accounting,
            and firing before dispatch keeps chaos deterministic under
            bisection and retry.
    """

    def __init__(self, execute, *,
                 default_deadline_s: float = DEFAULT_DEADLINE_S,
                 retries: int = DEFAULT_RETRIES,
                 backoff_s: float = DEFAULT_BACKOFF,
                 jitter: float = DEFAULT_JITTER,
                 seed: int = 0,
                 breaker: CircuitBreaker | None = None,
                 injector: FaultInjector | None = None) -> None:
        if default_deadline_s <= 0:
            raise ReproError(
                f"default_deadline_s must be > 0, got {default_deadline_s}")
        self.execute = execute
        self.default_deadline_s = default_deadline_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.jitter = jitter
        self.rng = np.random.default_rng(seed)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.injector = injector
        self.waves_launched = 0
        self.waves_timed_out = 0
        self.waves_crashed = 0
        self.transient_retries = 0
        self.bisections = 0
        self.degraded_waves = 0
        self.jobs_failed = 0

    def deadline_for(self, jobs: list[JobSpec]) -> float:
        """The wave deadline: the tightest job budget in the wave."""
        budgets = [job.deadline_s for job in jobs
                   if job.deadline_s is not None]
        budgets.append(self.default_deadline_s)
        return min(budgets)

    async def run(self, key: tuple, jobs: list[JobSpec]) -> list[dict]:
        """Supervise one wave; always returns one payload per job."""
        if len(jobs) > 1 and not self.breaker.allows_fusion(key):
            # open breaker: this key has been failing — stop fusing and
            # run each job alone, so one tenant's poison cannot keep
            # taking co-tenants down while the key recovers
            self.degraded_waves += 1
            payloads: list[dict] = []
            for job in jobs:
                payloads.extend(await self._supervise(key, [job]))
            return payloads
        return await self._supervise(key, jobs)

    async def _attempt(self, jobs: list[JobSpec]) -> list[dict]:
        deadline = self.deadline_for(jobs)
        if self.injector is not None:
            spec = self.injector.wave_fault([j.fingerprint for j in jobs])
            if spec is not None:
                if spec.kind is FaultKind.WORKER_CRASH:
                    raise InjectedCrashError(
                        f"injected worker crash mid-wave ({len(jobs)} jobs)")
                # WAVE_STALL: the wave hangs for delay_s. Model the hang
                # here (the real lane stays free, so chaos runs stay
                # fast and deterministic); past the deadline it
                # surfaces exactly like a genuine timeout.
                await asyncio.sleep(min(spec.delay_s, deadline))
                if spec.delay_s >= deadline:
                    raise WaveDeadlineError(
                        f"wave deadline exceeded after {deadline:g}s "
                        f"(injected stall of {spec.delay_s:g}s)")
        try:
            return await asyncio.wait_for(self.execute(jobs),
                                          timeout=deadline)
        except asyncio.TimeoutError:
            raise WaveDeadlineError(
                f"wave deadline exceeded after {deadline:g}s "
                f"({len(jobs)} jobs)") from None

    async def _supervise(self, key: tuple,
                         jobs: list[JobSpec]) -> list[dict]:
        attempt = 0
        while True:
            self.waves_launched += 1
            try:
                payloads = await self._attempt(jobs)
            except TransientError as exc:
                self.breaker.record_failure(key)
                if attempt < self.retries:
                    self.transient_retries += 1
                    delay = backoff_delay(attempt, backoff=self.backoff_s,
                                          jitter=self.jitter, rng=self.rng)
                    if delay > 0:
                        await asyncio.sleep(delay)
                    attempt += 1
                    continue
                return await self._bisect(key, jobs, exc)
            except WaveDeadlineError as exc:
                self.waves_timed_out += 1
                self.breaker.record_failure(key)
                return await self._bisect(key, jobs, exc)
            except (BrokenExecutor, InjectedCrashError) as exc:
                self.waves_crashed += 1
                self.breaker.record_failure(key)
                return await self._bisect(key, jobs, exc)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # deterministic wave-level poison (bad backend, a bug):
                # bisection attributes it to the job(s) that trigger it
                self.breaker.record_failure(key)
                return await self._bisect(key, jobs, exc)
            else:
                self.breaker.record_success(key)
                return payloads

    async def _bisect(self, key: tuple, jobs: list[JobSpec],
                      exc: Exception) -> list[dict]:
        """Shrink the blast radius: re-run halves, fail solo jobs alone."""
        if len(jobs) == 1:
            self.jobs_failed += 1
            return [{
                "ok": False,
                "error": str(exc) or type(exc).__name__,
                "error_type": type(exc).__name__,
                "supervised": True,
            }]
        self.bisections += 1
        mid = len(jobs) // 2
        left = await self._supervise(key, jobs[:mid])
        right = await self._supervise(key, jobs[mid:])
        return left + right

    def stats(self) -> dict:
        return {
            "waves_launched": self.waves_launched,
            "waves_timed_out": self.waves_timed_out,
            "waves_crashed": self.waves_crashed,
            "transient_retries": self.transient_retries,
            "bisections": self.bisections,
            "degraded_waves": self.degraded_waves,
            "jobs_failed": self.jobs_failed,
            "default_deadline_s": self.default_deadline_s,
            "breaker": self.breaker.stats(),
        }


__all__ = [
    "DEFAULT_BREAKER_COOLDOWN_S",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_DEADLINE_S",
    "CircuitBreaker",
    "LoadShedder",
    "WaveDeadlineError",
    "WaveSupervisor",
]
