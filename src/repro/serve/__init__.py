"""The async coalescing assembly service (DESIGN.md decision #15).

Many small local-assembly requests fuse into one megabatch launch wave:
jobs landing within a configurable window — or until a warps-per-wave
high-water mark — are concatenated into a single multi-tenant launch
per execution configuration, run through the vectorized engine once via
:func:`repro.kernels.engine.run_schedule_coalesced`, and scattered back
per job with byte-exact provenance (profiles, overflow sets, sanitizer
verdicts all attributable to the owning job). Pure stdlib: asyncio for
the request path, an executor for the waves.
"""

from repro.serve.batcher import (
    DEFAULT_MAX_WAVE_WARPS,
    DEFAULT_WINDOW_S,
    CoalescingBatcher,
)
from repro.serve.protocol import (
    DEFAULT_K_SCHEDULE,
    JobOptions,
    JobSpec,
    JobStatus,
    ProtocolError,
    job_fingerprint,
    parse_job_request,
)
from repro.serve.queue import DEFAULT_MAX_IN_FLIGHT, AdmissionControl
from repro.serve.service import AssemblyService, serve_forever
from repro.serve.worker import configure_worker, run_wave

__all__ = [
    "AdmissionControl",
    "AssemblyService",
    "CoalescingBatcher",
    "DEFAULT_K_SCHEDULE",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_MAX_WAVE_WARPS",
    "DEFAULT_WINDOW_S",
    "JobOptions",
    "JobSpec",
    "JobStatus",
    "ProtocolError",
    "configure_worker",
    "job_fingerprint",
    "parse_job_request",
    "run_wave",
    "serve_forever",
]
