"""The async coalescing assembly service (DESIGN.md decision #15).

Many small local-assembly requests fuse into one megabatch launch wave:
jobs landing within a configurable window — or until a warps-per-wave
high-water mark — are concatenated into a single multi-tenant launch
per execution configuration, run through the vectorized engine once via
:func:`repro.kernels.engine.run_schedule_coalesced`, and scattered back
per job with byte-exact provenance (profiles, overflow sets, sanitizer
verdicts all attributable to the owning job). Pure stdlib: asyncio for
the request path, an executor for the waves.

Fault tolerance (DESIGN.md decision #16) wraps every wave in the
:class:`WaveSupervisor` boundary — per-job deadlines, seeded
backoff+jitter retries, blast-radius bisection down to solo launches,
a per-key :class:`CircuitBreaker` and depth-proportional load shedding
— and the :class:`JobJournal` write-ahead log makes acknowledged jobs
survive a kill -9 (``repro serve --recover``).
"""

from repro.serve.batcher import (
    DEFAULT_MAX_WAVE_WARPS,
    DEFAULT_WINDOW_S,
    CoalescingBatcher,
)
from repro.serve.journal import (
    JOURNAL_FORMAT,
    JobJournal,
    JournalError,
    JournalState,
)
from repro.serve.protocol import (
    DEFAULT_K_SCHEDULE,
    JobOptions,
    JobSpec,
    JobStatus,
    ProtocolError,
    job_fingerprint,
    parse_job_request,
)
from repro.serve.queue import DEFAULT_MAX_IN_FLIGHT, AdmissionControl
from repro.serve.service import AssemblyService, serve_forever
from repro.serve.supervisor import (
    DEFAULT_BREAKER_COOLDOWN_S,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_DEADLINE_S,
    CircuitBreaker,
    LoadShedder,
    WaveDeadlineError,
    WaveSupervisor,
)
from repro.serve.worker import configure_worker, run_wave

__all__ = [
    "AdmissionControl",
    "AssemblyService",
    "CircuitBreaker",
    "CoalescingBatcher",
    "DEFAULT_BREAKER_COOLDOWN_S",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_DEADLINE_S",
    "DEFAULT_K_SCHEDULE",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_MAX_WAVE_WARPS",
    "DEFAULT_WINDOW_S",
    "JOURNAL_FORMAT",
    "JobJournal",
    "JobOptions",
    "JobSpec",
    "JobStatus",
    "JournalError",
    "JournalState",
    "LoadShedder",
    "ProtocolError",
    "WaveDeadlineError",
    "WaveSupervisor",
    "configure_worker",
    "job_fingerprint",
    "parse_job_request",
    "run_wave",
    "serve_forever",
]
