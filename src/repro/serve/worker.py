"""Wave execution: the synchronous half of the assembly service.

One wave — N jobs sharing a coalescing key — runs here, off the event
loop, via :func:`repro.kernels.engine.run_schedule_coalesced`. The
module keeps a **process-global** bounded LRU
:class:`~repro.kernels.engine.PrepareCache`, shared across every wave a
worker executes; each job sees it through a
:meth:`~repro.kernels.engine.PrepareCache.scoped` view keyed by the
job's fingerprint, so repeat submissions of the same dataset hit warm
flattens while distinct tenants can never collide on cache keys.

Everything crossing the executor boundary is plain JSON-able data
(waves in, payload dicts out), so the same function serves both the
in-thread executor (``workers <= 1``) and a ``ProcessPoolExecutor``
(waves pickled to worker processes, which each grow their own cache).
"""

from __future__ import annotations

from repro.core.extension import PRODUCTION_POLICY
from repro.errors import ReproError
from repro.kernels import backend_for_device, create_backend
from repro.kernels.engine import PrepareCache, run_schedule_coalesced
from repro.serve.protocol import (
    JobOptions,
    error_to_payload,
    parse_contigs,
    result_to_payload,
)
from repro.simt.device import device_by_name

DEFAULT_CACHE_ENTRIES = 256

_PREP_CACHE: PrepareCache | None = None


def configure_worker(cache_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
    """(Re)initialize the process-global prepare cache.

    Called once per worker process (the pool initializer) and by tests;
    idempotent across waves — reconfiguring drops the warm cache.
    """
    global _PREP_CACHE
    _PREP_CACHE = PrepareCache(maxsize=cache_entries)


def prep_cache() -> PrepareCache:
    global _PREP_CACHE
    if _PREP_CACHE is None:
        configure_worker()
    return _PREP_CACHE


def _build_kernel(options: JobOptions):
    device = device_by_name(options.device)
    kw = {"policy": PRODUCTION_POLICY,
          "overflow_policy": options.overflow_policy}
    if options.backend == "auto":
        return backend_for_device(device, **kw)
    return create_backend(options.backend, device=device, **kw)


def run_wave(wave: dict) -> list[dict]:
    """Execute one fused wave; returns one payload dict per job, aligned.

    ``wave`` is ``{"options": {...}, "jobs": [{"job_id", "dat",
    "fingerprint"}, ...]}`` as built by the service's dispatch path. A
    job-level failure (overflow under the raise policy) yields an error
    payload in that job's slot; co-tenant jobs are unaffected. A
    wave-level failure (bad backend name and the like) raises — the
    service fails every job of the wave with it.
    """
    options = JobOptions(
        device=wave["options"]["device"],
        backend=wave["options"]["backend"],
        k_schedule=tuple(wave["options"]["k_schedule"]),
        overflow_policy=wave["options"]["overflow_policy"],
    )
    jobs = wave["jobs"]
    if not jobs:
        raise ReproError("run_wave needs at least one job")
    kernel = _build_kernel(options)
    contigs = [parse_contigs(j["dat"], j["job_id"]) for j in jobs]
    store = prep_cache()
    caches = [store.scoped(j["fingerprint"]) for j in jobs]
    outcomes = run_schedule_coalesced(
        kernel, contigs, options.k_schedule, prep_caches=caches,
        fingerprints=[j["fingerprint"] for j in jobs])
    payloads: list[dict] = []
    for outcome in outcomes:
        if outcome.error is not None:
            payloads.append(error_to_payload(outcome.error))
        else:
            payloads.append(result_to_payload(
                outcome.result, replay=outcome.replay,
                sanitizer_report=outcome.sanitizer_report))
    return payloads


__all__ = ["DEFAULT_CACHE_ENTRIES", "configure_worker", "prep_cache",
           "run_wave"]
