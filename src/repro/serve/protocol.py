"""Wire protocol of the coalescing assembly service.

A job submission is a JSON object::

    {
      "dat": "<.dat format text>",          # contigs + reads (required)
      "k_schedule": [21, 33, 55, 77],       # optional, validated
      "device": "A100",                     # optional, default A100
      "backend": "auto",                    # optional backend name
      "overflow_policy": "drop-contig",     # optional, default drop-contig
      "deadline_s": 10.0                    # optional latency budget
    }

Everything except the payload and the deadline forms the job's
**coalescing key**: only
jobs whose execution configuration matches byte-for-byte may share a
fused launch wave (they must agree on the kernel that runs them). The
**fingerprint** additionally hashes the payload and is the job's
checkpoint/resume identity — resubmitting the exact same request hits
the checkpoint store instead of recomputing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from enum import Enum

from repro.errors import DatasetError, ReproError
from repro.genomics.contig import Contig
from repro.genomics.io import loads_dat
from repro.kernels.engine import validate_k_schedule
from repro.resilience.checkpoint import profile_to_dict, result_to_dict
from repro.resilience.policy import OverflowPolicy
from repro.simt.device import device_by_name

DEFAULT_K_SCHEDULE = (21, 33, 55, 77)


class JobStatus(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class ProtocolError(ReproError):
    """Malformed job submission (maps to HTTP 400)."""


@dataclass(frozen=True)
class JobOptions:
    """The execution configuration shared by every job of a wave."""

    device: str = "A100"
    backend: str = "auto"
    k_schedule: tuple[int, ...] = DEFAULT_K_SCHEDULE
    overflow_policy: str = "drop-contig"

    @property
    def coalescing_key(self) -> tuple:
        return (self.device, self.backend, self.k_schedule,
                self.overflow_policy)

    def to_dict(self) -> dict:
        return {"device": self.device, "backend": self.backend,
                "k_schedule": list(self.k_schedule),
                "overflow_policy": self.overflow_policy}


@dataclass
class JobSpec:
    """One parsed, validated submission.

    ``deadline_s`` is the client's per-job latency budget; the wave
    supervisor derives each fused wave's timeout from the tightest
    budget aboard. It is deliberately *not* part of
    :class:`JobOptions`: deadlines affect scheduling, not execution, so
    they must change neither the coalescing key (jobs with different
    budgets may still fuse) nor the fingerprint (a resubmission with a
    different budget still resumes from its checkpoint).
    """

    job_id: str
    dat: str
    n_contigs: int
    options: JobOptions
    fingerprint: str
    deadline_s: float | None = None


def parse_job_request(body: dict, job_id: str) -> JobSpec:
    """Validate a submission body into a :class:`JobSpec`.

    Raises :class:`ProtocolError` for anything malformed — including an
    empty contig list, which the engine cannot run (and which a fused
    wave could otherwise silently misattribute).
    """
    if not isinstance(body, dict):
        raise ProtocolError("job body must be a JSON object")
    dat = body.get("dat")
    if not isinstance(dat, str) or not dat:
        raise ProtocolError("job body needs a non-empty 'dat' string")
    try:
        contigs = loads_dat(dat, source=f"job {job_id}")
    except DatasetError as exc:
        raise ProtocolError(f"bad .dat payload: {exc}") from None
    if not contigs:
        raise ProtocolError("job payload contains no contigs")
    ks = body.get("k_schedule", list(DEFAULT_K_SCHEDULE))
    try:
        ks = tuple(int(k) for k in ks)
        validate_k_schedule(ks)
    except (TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"bad k_schedule: {exc}") from None
    device = body.get("device", "A100")
    try:
        device_by_name(device)
    except ReproError as exc:
        raise ProtocolError(str(exc)) from None
    backend = body.get("backend", "auto")
    if not isinstance(backend, str):
        raise ProtocolError("backend must be a string")
    try:
        policy = OverflowPolicy.parse(
            body.get("overflow_policy", "drop-contig"))
    except (ReproError, ValueError) as exc:
        raise ProtocolError(f"bad overflow_policy: {exc}") from None
    deadline_s = body.get("deadline_s")
    if deadline_s is not None:
        try:
            deadline_s = float(deadline_s)
        except (TypeError, ValueError):
            raise ProtocolError("deadline_s must be a number") from None
        if not deadline_s > 0:
            raise ProtocolError(
                f"deadline_s must be > 0, got {deadline_s}")
    options = JobOptions(device=device, backend=backend, k_schedule=ks,
                         overflow_policy=policy.value)
    return JobSpec(job_id=job_id, dat=dat, n_contigs=len(contigs),
                   options=options,
                   fingerprint=job_fingerprint(dat, options),
                   deadline_s=deadline_s)


def job_fingerprint(dat: str, options: JobOptions) -> str:
    """Stable identity of (payload, execution configuration)."""
    h = hashlib.sha256()
    h.update(json.dumps(options.to_dict(), sort_keys=True).encode())
    h.update(b"\x00")
    h.update(dat.encode())
    return h.hexdigest()[:32]


def parse_contigs(spec_dat: str, job_id: str) -> list[Contig]:
    """Re-parse a validated spec's payload (worker side)."""
    return loads_dat(spec_dat, source=f"job {job_id}")


def result_to_payload(result, replay=None, sanitizer_report=None) -> dict:
    """JSON-able success payload for one job (the poll/result body)."""
    payload = {"ok": True, "result": result_to_dict(result)}
    if replay:
        payload["replay_launches"] = len(replay)
    if sanitizer_report is not None:
        payload["sanitizer_ok"] = bool(sanitizer_report.ok)
    return payload


def error_to_payload(error: Exception) -> dict:
    """JSON-able failure payload (overflow under the raise policy)."""
    payload: dict = {"ok": False, "error": str(error),
                     "error_type": type(error).__name__}
    for attr in ("contig_id", "k", "capacity", "probes"):
        value = getattr(error, attr, None)
        if value is not None:
            payload[attr] = value
    return payload


__all__ = [
    "DEFAULT_K_SCHEDULE",
    "JobOptions",
    "JobSpec",
    "JobStatus",
    "ProtocolError",
    "error_to_payload",
    "job_fingerprint",
    "parse_contigs",
    "parse_job_request",
    "profile_to_dict",
    "result_to_payload",
]
