"""Extension votes and the mer-walk step-resolution rule.

Each hash-table slot accumulates, per possible next base, how many reads
voted for that base with high quality and how many with low quality
(the ``hi_q_exts`` / ``low_q_exts`` arrays of the GPU ``loc_ht`` struct).
A walk step inspects those eight counters and decides to *extend* with a
base, declare a *fork* (ambiguous branch), or *end* (insufficient
evidence) — the three terminal conditions of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.genomics.dna import BASES
from repro.genomics.reads import DEFAULT_QUAL_THRESHOLD


class WalkState(Enum):
    """Terminal (or per-step) state of a mer-walk."""

    EXTEND = "extend"    # per-step: a base was chosen
    END = "end"          # no sufficiently supported next base
    FORK = "fork"        # two well-supported competing next bases
    LOOP = "loop"        # walk revisited a k-mer
    MAX_LEN = "max_len"  # hit the walk-length cap
    MISSING = "missing"  # k-mer not present in the table


@dataclass
class ExtensionVotes:
    """Per-base extension evidence for one k-mer (one hash-table value)."""

    hi_q: np.ndarray = field(default_factory=lambda: np.zeros(4, dtype=np.int64))
    low_q: np.ndarray = field(default_factory=lambda: np.zeros(4, dtype=np.int64))
    count: int = 0

    def vote(self, base_code: int, qual: int,
             threshold: int = DEFAULT_QUAL_THRESHOLD) -> None:
        """Record one read's vote for ``base_code`` with phred ``qual``."""
        if qual >= threshold:
            self.hi_q[base_code] += 1
        else:
            self.low_q[base_code] += 1
        self.count += 1

    def merge(self, other: "ExtensionVotes") -> None:
        """Accumulate another vote set (used when merging thread collisions)."""
        self.hi_q += other.hi_q
        self.low_q += other.low_q
        self.count += other.count


@dataclass(frozen=True)
class WalkPolicy:
    """Tunable thresholds of the walk-resolution rule.

    Attributes:
        hi_q_min_depth: minimum high-quality votes for the hi-q counters
            alone to be trusted; below this, hi+low pooled counts are used.
        min_depth: minimum votes on the winning base to extend at all.
        dominance: the winner must have at least ``dominance`` times the
            votes of the runner-up, otherwise the step is a FORK.
    """

    hi_q_min_depth: int = 2
    min_depth: int = 2
    dominance: int = 2


DEFAULT_POLICY = WalkPolicy()

#: MetaHipMer-like production thresholds: a single confident read may carry
#: a walk (extensions chain across reads, giving the long extensions of
#: Table II), ambiguity still forks. The paper-reproduction experiments use
#: this policy; the conservative :data:`DEFAULT_POLICY` remains the library
#: default.
PRODUCTION_POLICY = WalkPolicy(hi_q_min_depth=2, min_depth=1, dominance=2)


def resolve_extension(
    votes: ExtensionVotes, policy: WalkPolicy = DEFAULT_POLICY
) -> tuple[WalkState, int]:
    """Decide the next walk step from one slot's vote counters.

    Returns ``(state, base_code)``; ``base_code`` is only meaningful when
    ``state is WalkState.EXTEND``. The rule (matching MetaHipMer's
    walk semantics at the level the paper describes):

    1. Use high-quality counts if their best base reaches
       ``hi_q_min_depth``; otherwise pool the counts with high-quality
       votes carrying double weight (a confident base call outvotes a
       low-quality one — this is what the hi/low split in the ``loc_ht``
       value exists for; without it every low-quality sequencing error
       would tie a true high-quality vote and fork the walk).
    2. END if the best base has fewer than ``min_depth`` *raw* votes
       (hi + low, unweighted — a lone low-quality read is still evidence
       when nothing contradicts it).
    3. FORK if the runner-up is too competitive on the weighted counts
       (``runner * dominance > best``).
    4. Otherwise EXTEND with the best base.

    Weighted comparisons run on doubled counts so the half-weight of
    low-quality votes stays in integers.
    """
    hi_best = int(votes.hi_q.max())
    if hi_best >= policy.hi_q_min_depth:
        counts = 2 * votes.hi_q
    else:
        counts = 2 * votes.hi_q + votes.low_q
    order = np.argsort(counts, kind="stable")
    best_code = int(order[-1])
    best = int(counts[best_code])
    runner = int(counts[order[-2]])
    raw_best = int(votes.hi_q[best_code] + votes.low_q[best_code])
    if raw_best < policy.min_depth:
        return WalkState.END, -1
    if runner * policy.dominance > best:
        return WalkState.FORK, -1
    return WalkState.EXTEND, best_code


#: Integer codes used by the vectorized resolver (order matters for tests).
STATE_CODES = {WalkState.EXTEND: 0, WalkState.END: 1, WalkState.FORK: 2}

#: Integer codes covering *every* walk state, for lockstep state arrays
#: (the megabatched walk keeps per-warp terminal states as int8). The
#: first three agree with :data:`STATE_CODES` so resolver output can be
#: stored directly.
WALK_STATE_CODES = {
    WalkState.EXTEND: 0,
    WalkState.END: 1,
    WalkState.FORK: 2,
    WalkState.LOOP: 3,
    WalkState.MAX_LEN: 4,
    WalkState.MISSING: 5,
}

#: Inverse of :data:`WALK_STATE_CODES`, indexable by code.
CODE_TO_WALK_STATE = tuple(
    s for s, _ in sorted(WALK_STATE_CODES.items(), key=lambda kv: kv[1])
)


def resolve_extension_batch(
    hi_q: np.ndarray, low_q: np.ndarray, policy: WalkPolicy = DEFAULT_POLICY
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`resolve_extension` over ``(n, 4)`` count matrices.

    Returns ``(state_codes, base_codes)`` where state codes follow
    :data:`STATE_CODES` and base codes are -1 except for EXTEND rows.
    Row ``i`` resolves identically to
    ``resolve_extension(ExtensionVotes(hi_q[i], low_q[i]))`` — a property
    the test suite checks exhaustively.
    """
    hi_q = np.asarray(hi_q, dtype=np.int64).reshape(-1, 4)
    low_q = np.asarray(low_q, dtype=np.int64).reshape(-1, 4)
    use_hi = hi_q.max(axis=1) >= policy.hi_q_min_depth
    counts = np.where(use_hi[:, None], 2 * hi_q, 2 * hi_q + low_q)
    order = np.argsort(counts, axis=1, kind="stable")
    best_code = order[:, -1]
    rows = np.arange(counts.shape[0])
    best = counts[rows, best_code]
    runner = counts[rows, order[:, -2]]
    states = np.full(counts.shape[0], STATE_CODES[WalkState.EXTEND], dtype=np.int8)
    bases = best_code.astype(np.int8)
    fork = runner * policy.dominance > best
    states[fork] = STATE_CODES[WalkState.FORK]
    bases[fork] = -1
    raw_best = (hi_q + low_q)[rows, best_code]
    end = raw_best < policy.min_depth
    states[end] = STATE_CODES[WalkState.END]
    bases[end] = -1
    return states, bases


def describe_votes(votes: ExtensionVotes) -> str:
    """Human-readable rendering, e.g. ``A:3+1 C:0+0 G:1+0 T:0+2 (7 reads)``."""
    parts = [
        f"{BASES[i]}:{int(votes.hi_q[i])}+{int(votes.low_q[i])}" for i in range(4)
    ]
    return " ".join(parts) + f" ({votes.count} reads)"
