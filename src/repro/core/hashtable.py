"""The ``loc_ht`` open-addressing k-mer hash table (CPU reference form).

Faithful to the GPU data structure the paper describes: fixed-capacity
array of slots, MurmurHashAligned2 of the k-mer bytes for the home slot,
linear probing for hash collisions, and per-slot extension votes. The GPU
resolves *thread* collisions with ``atomicCAS``; the CPU form is serial so
identical k-mers simply merge votes into the same slot.

Probe statistics are tracked because the performance model charges one
hash-table memory transaction per probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HashTableFullError, KmerError
from repro.core.extension import ExtensionVotes
from repro.genomics.dna import decode
from repro.hashing.murmur import murmur_aligned2

#: Sentinel meaning "slot unoccupied" (mirrors the GPU's EMPTY key.length).
EMPTY_SLOT = -1


@dataclass
class Slot:
    """One occupied hash-table slot: the key k-mer plus its votes."""

    key: np.ndarray
    votes: ExtensionVotes = field(default_factory=ExtensionVotes)

    @property
    def kmer(self) -> str:
        return decode(self.key)


@dataclass
class ProbeStats:
    """Memory-access accounting for the performance model."""

    inserts: int = 0
    lookups: int = 0
    probes: int = 0
    collisions: int = 0  # probes beyond the home slot

    @property
    def mean_probe_length(self) -> float:
        ops = self.inserts + self.lookups
        return self.probes / ops if ops else 0.0


class LocalHashTable:
    """Open-addressing k-mer hash table with linear probing.

    Args:
        capacity: number of slots; must exceed the number of distinct keys
            or :class:`HashTableFullError` is raised on overflow.
        k: key length in bases (all keys must have exactly this length).
        seed: Murmur seed.
    """

    def __init__(self, capacity: int, k: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise KmerError(f"capacity must be positive, got {capacity}")
        if k <= 0:
            raise KmerError(f"k must be positive, got {k}")
        self.capacity = int(capacity)
        self.k = int(k)
        self.seed = seed
        self._slots: list[Slot | None] = [None] * self.capacity
        self._occupied = 0
        self.stats = ProbeStats()

    def __len__(self) -> int:
        return self._occupied

    @property
    def load_factor(self) -> float:
        return self._occupied / self.capacity

    def _home_slot(self, key: np.ndarray) -> int:
        return murmur_aligned2(key, self.seed) % self.capacity

    def _check_key(self, key: np.ndarray) -> np.ndarray:
        key = np.asarray(key, dtype=np.uint8)
        if key.shape != (self.k,):
            raise KmerError(f"key length {key.shape} != (k={self.k},)")
        return key

    def _probe(self, key: np.ndarray, for_insert: bool) -> int | None:
        """Linear probe; returns a slot index or None (lookup miss).

        For inserts the returned slot is either the key's existing slot or
        the first empty one; raises :class:`HashTableFullError` when the
        probe wraps all the way around (the GPU prints ``*hashtable full*``).
        """
        idx = self._home_slot(key)
        start = idx
        probes = 0
        while True:
            probes += 1
            slot = self._slots[idx]
            if slot is None:
                self.stats.probes += probes
                self.stats.collisions += probes - 1
                return idx if for_insert else None
            if np.array_equal(slot.key, key):
                self.stats.probes += probes
                self.stats.collisions += probes - 1
                return idx
            idx = (idx + 1) % self.capacity
            if idx == start:
                if for_insert:
                    raise HashTableFullError(
                        "hash table full", k=self.k,
                        capacity=self.capacity, probes=probes,
                    )
                self.stats.probes += probes
                self.stats.collisions += probes - 1
                return None

    def insert(self, key: np.ndarray, ext_code: int, qual: int) -> Slot:
        """Insert (or merge into) ``key`` a vote for next-base ``ext_code``."""
        key = self._check_key(key)
        self.stats.inserts += 1
        idx = self._probe(key, for_insert=True)
        assert idx is not None
        slot = self._slots[idx]
        if slot is None:
            slot = Slot(key=key.copy())
            self._slots[idx] = slot
            self._occupied += 1
        slot.votes.vote(int(ext_code), int(qual))
        return slot

    def lookup(self, key: np.ndarray) -> Slot | None:
        """Find the slot for ``key`` or None if absent."""
        key = self._check_key(key)
        self.stats.lookups += 1
        idx = self._probe(key, for_insert=False)
        return self._slots[idx] if idx is not None else None

    def __contains__(self, key: np.ndarray) -> bool:
        saved = (self.stats.lookups, self.stats.probes, self.stats.collisions)
        found = self.lookup(np.asarray(key, dtype=np.uint8)) is not None
        self.stats.lookups, self.stats.probes, self.stats.collisions = saved
        return found

    def slots(self) -> list[Slot]:
        """All occupied slots (order is table order, not insertion order)."""
        return [s for s in self._slots if s is not None]

    def keys(self) -> list[str]:
        return [s.kmer for s in self.slots()]
