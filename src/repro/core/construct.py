"""Algorithm 1: k-mer hash-table construction.

For every read assigned to a contig, every k-mer that has a following
base contributes one insertion: key = the k-mer, vote = the next base
with its quality score. A read of length L therefore contributes
``max(0, L - k)`` insertions — which is exactly how the paper's Table II
"total hash insertions" column relates to its read counts and lengths.
"""

from __future__ import annotations

import math

from repro.core.hashtable import LocalHashTable
from repro.genomics.contig import Contig
from repro.genomics.reads import ReadSet

#: Default table occupancy target; the GPU pre-processing phase reserves
#: capacity for the estimated insertion upper bound at this load factor.
DEFAULT_LOAD_FACTOR = 0.66


def insertions_for(reads: ReadSet, k: int) -> int:
    """Number of hash insertions Algorithm 1 performs for ``reads``."""
    return sum(max(0, len(r) - k) for r in reads)


def estimate_table_slots(
    n_insertions: int, load_factor: float = DEFAULT_LOAD_FACTOR
) -> int:
    """Upper-bound slot count for a table receiving ``n_insertions``.

    This mirrors the "Estimate Hash Table Sizes" box of Figure 3: the GPU
    cannot grow tables mid-kernel, so capacity is reserved for the worst
    case (every insertion a distinct key) divided by the target load
    factor, with a small floor so tiny contigs still get a usable table.
    """
    if n_insertions < 0:
        raise ValueError(f"n_insertions must be >= 0, got {n_insertions}")
    if not 0.0 < load_factor <= 1.0:
        raise ValueError(f"load_factor must be in (0, 1], got {load_factor}")
    return max(16, math.ceil(n_insertions / load_factor))


def estimate_table_slots_upper_bound(
    reads: ReadSet, load_factor: float = DEFAULT_LOAD_FACTOR
) -> int:
    """K-independent capacity upper bound, as the GPU pre-processing uses.

    The number of k-mers a read set can produce never exceeds its total
    base count, so the GPU workflow (Figure 3) reserves
    ``total_bases / load_factor`` slots per contig *before* knowing which
    k iteration will run — tables must be sized once, up front, for the
    worst case. The consequence the paper observes: at large k the tables
    are generously sized (short probe chains) but their aggregate
    footprint stays read-volume-proportional, which is what interacts
    with each GPU's L2 capacity.
    """
    if not 0.0 < load_factor <= 1.0:
        raise ValueError(f"load_factor must be in (0, 1], got {load_factor}")
    return max(16, math.ceil(reads.total_bases / load_factor))


def build_table(
    reads: ReadSet,
    k: int,
    capacity: int | None = None,
    seed: int = 0,
    load_factor: float = DEFAULT_LOAD_FACTOR,
) -> LocalHashTable:
    """Construct the de Bruijn hash table for one contig's reads.

    Args:
        reads: the reads aligned to the contig's ends.
        k: k-mer size.
        capacity: explicit slot count; estimated from the reads if omitted.
        seed: Murmur seed.
        load_factor: target occupancy used when estimating capacity.
    """
    if capacity is None:
        capacity = estimate_table_slots(insertions_for(reads, k), load_factor)
    table = LocalHashTable(capacity=capacity, k=k, seed=seed)
    for read in reads:
        codes, quals = read.codes, read.quals
        for i in range(len(codes) - k):
            table.insert(codes[i : i + k], int(codes[i + k]), int(quals[i + k]))
    return table


def build_table_for_contig(
    contig: Contig, k: int, seed: int = 0, load_factor: float = DEFAULT_LOAD_FACTOR
) -> LocalHashTable:
    """Convenience wrapper: :func:`build_table` over ``contig.reads``."""
    return build_table(contig.reads, k, seed=seed, load_factor=load_factor)
