"""Contig binning and batch formation (the Figure 3 pre-processing phase).

The mer-walk has a non-deterministic amount of work per contig, and the
GPU runs many contigs per kernel launch (one per warp). If contigs with
wildly different work land in the same launch, warps that finish early
idle while stragglers run — the *warp stalling* the paper describes.
Binning groups contigs by assigned-read count (the dominant work
predictor) so each launch has similar per-warp work, and caps each
batch's aggregate hash-table memory so it fits the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.construct import DEFAULT_LOAD_FACTOR, estimate_table_slots, insertions_for
from repro.genomics.contig import Contig


@dataclass
class Bin:
    """One work bin: contig indices with similar read counts.

    Attributes:
        contig_indices: indices into the original contig list.
        min_depth / max_depth: read-count range of the bin.
        total_insertions: hash insertions the bin will perform for a given k.
        table_slots: per-contig reserved slot counts (same order as
            ``contig_indices``).
    """

    contig_indices: list[int] = field(default_factory=list)
    min_depth: int = 0
    max_depth: int = 0
    total_insertions: int = 0
    table_slots: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.contig_indices)


def bin_contigs(
    contigs: list[Contig],
    k: int,
    depth_ratio: float = 2.0,
    max_batch_insertions: int | None = None,
    load_factor: float = DEFAULT_LOAD_FACTOR,
) -> list[Bin]:
    """Group contigs into work-similar bins.

    Contigs are sorted by read count; a bin closes when the next contig's
    depth exceeds ``depth_ratio`` times the bin's minimum (work would no
    longer be similar) or when the bin's aggregate insertions would exceed
    ``max_batch_insertions`` (the device-memory cap of Figure 3).

    Returns bins in increasing-depth order; every input contig appears in
    exactly one bin. Contigs with zero eligible insertions still get a
    (minimal) table so the kernels need no special-casing.
    """
    if depth_ratio < 1.0:
        raise ValueError(f"depth_ratio must be >= 1, got {depth_ratio}")
    order = sorted(range(len(contigs)), key=lambda i: contigs[i].depth)
    bins: list[Bin] = []
    current: Bin | None = None
    for idx in order:
        c = contigs[idx]
        ins = insertions_for(c.reads, k)
        slots = estimate_table_slots(ins, load_factor)
        depth = c.depth
        close = (
            current is None
            or depth > max(1, current.min_depth) * depth_ratio
            or (
                max_batch_insertions is not None
                and current.total_insertions + ins > max_batch_insertions
                and len(current) > 0
            )
        )
        if close:
            current = Bin(min_depth=depth, max_depth=depth)
            bins.append(current)
        current.contig_indices.append(idx)
        current.max_depth = depth
        current.total_insertions += ins
        current.table_slots.append(slots)
    return bins


def binning_imbalance(contigs: list[Contig], bins: list[Bin], k: int) -> float:
    """Mean (max/mean) work imbalance across bins; 1.0 is perfect.

    Used by the binning ablation bench: without binning the whole dataset
    is one bin and this ratio is large; with binning it approaches 1.
    """
    ratios = []
    for b in bins:
        work = [insertions_for(contigs[i].reads, k) for i in b.contig_indices]
        mean = sum(work) / len(work) if work else 0
        if mean > 0:
            ratios.append(max(work) / mean)
    return sum(ratios) / len(ratios) if ratios else 1.0
