"""The full local-assembly pipeline (Figures 2 and 3, CPU form).

For each contig: construct the de Bruijn hash table from its reads and
mer-walk both ends. The right end walks the table directly; the left end
is handled by reverse-complementing the reads and the seed so it becomes
a right walk (the GPU version launches separate right- and left-extension
kernels, Figure 3). If a walk ends at a *fork*, the pipeline retries with
the next k-mer size in the schedule — larger k resolves forks (Figure 1)
— keeping the longest accepted extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.construct import build_table
from repro.core.extension import DEFAULT_POLICY, WalkPolicy, WalkState
from repro.core.merwalk import DEFAULT_MAX_WALK_LEN, WalkResult, mer_walk
from repro.errors import KmerError
from repro.genomics.contig import Contig, ContigExtension, End
from repro.genomics.dna import reverse_complement
from repro.genomics.reads import Read, ReadSet

#: MetaHipMer's production k-mer schedule (Figure 2).
DEFAULT_K_SCHEDULE = (21, 33, 55, 77)


def _reverse_complement_reads(reads: ReadSet) -> ReadSet:
    """Reverse-complement every read (qualities reverse along with bases)."""
    out = ReadSet()
    for r in reads:
        out.append(
            Read(name=r.name + "/rc", codes=reverse_complement(r.codes),
                 quals=r.quals[::-1].copy())
        )
    return out


@dataclass
class AssemblyResult:
    """Per-contig outcome of the pipeline.

    Attributes:
        contig: the input contig, with extension records attached.
        right_walks / left_walks: every walk attempted (one per k tried).
    """

    contig: Contig
    right_walks: list[WalkResult] = field(default_factory=list)
    left_walks: list[WalkResult] = field(default_factory=list)

    @property
    def extension_length(self) -> int:
        return self.contig.total_extension_length()


class LocalAssembler:
    """Drives Algorithm 1 + Algorithm 2 over a set of contigs.

    Args:
        k_schedule: increasing k-mer sizes to iterate through (Figure 2).
        max_walk_len: cap on each extension's length.
        policy: vote-resolution thresholds.
        seed: Murmur seed for all tables.
    """

    def __init__(
        self,
        k_schedule: tuple[int, ...] = DEFAULT_K_SCHEDULE,
        max_walk_len: int = DEFAULT_MAX_WALK_LEN,
        policy: WalkPolicy = DEFAULT_POLICY,
        seed: int = 0,
    ) -> None:
        if not k_schedule:
            raise KmerError("k_schedule must not be empty")
        if list(k_schedule) != sorted(set(k_schedule)):
            raise KmerError(f"k_schedule must be strictly increasing, got {k_schedule}")
        self.k_schedule = tuple(int(k) for k in k_schedule)
        self.max_walk_len = max_walk_len
        self.policy = policy
        self.seed = seed

    def _walk_one_end(
        self, contig: Contig, reads: ReadSet, end: End
    ) -> tuple[ContigExtension, list[WalkResult]]:
        """Iterate the k schedule for one contig end; keep the best walk."""
        walks: list[WalkResult] = []
        best: WalkResult | None = None
        for k in self.k_schedule:
            if k > len(contig) or reads.kmer_count(k + 1) == 0:
                break
            table = build_table(reads, k, seed=self.seed)
            seed_kmer = contig.end_kmer(k, End.RIGHT) if end is End.RIGHT else None
            if end is End.LEFT:
                seed_kmer = reverse_complement(contig.end_kmer(k, End.LEFT))
            walk = mer_walk(table, seed_kmer, self.max_walk_len, self.policy)
            walks.append(walk)
            # An accepted walk always beats a kept fork (even a longer
            # one — the fork's bases are unresolved guesses); within the
            # same acceptance class the longest extension wins.
            if (
                best is None
                or (walk.accepted and not best.accepted)
                or (walk.accepted == best.accepted and len(walk) > len(best))
            ):
                best = walk
            if walk.accepted and walk.state is not WalkState.MISSING:
                break
        if best is None:
            best = WalkResult(bases="", state=WalkState.MISSING, steps=0,
                              k=self.k_schedule[0])
        bases = best.bases
        if end is End.LEFT and bases:
            rc = reverse_complement(bases)
            assert isinstance(rc, str)
            bases = rc
        ext = ContigExtension(
            end=end, bases=bases, walk_state=best.state.value,
            kmer_size=best.k, steps=best.steps,
        )
        return ext, walks

    def assemble_contig(self, contig: Contig) -> AssemblyResult:
        """Extend both ends of one contig; attaches extension records.

        When the contig carries read-to-end assignments
        (``read_end_hints``), each walk only sees its own end's reads,
        exactly like the GPU's separate right/left extension kernels.
        """
        result = AssemblyResult(contig=contig)
        right_ext, result.right_walks = self._walk_one_end(
            contig, contig.reads_for_end(End.RIGHT), End.RIGHT
        )
        rc_reads = _reverse_complement_reads(contig.reads_for_end(End.LEFT))
        left_ext, result.left_walks = self._walk_one_end(contig, rc_reads, End.LEFT)
        contig.right_extension = right_ext
        contig.left_extension = left_ext
        return result

    def assemble(self, contigs: list[Contig]) -> list[AssemblyResult]:
        """Extend every contig; returns one result per input contig."""
        return [self.assemble_contig(c) for c in contigs]
