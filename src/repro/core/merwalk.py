"""Algorithm 2: DNA walks (mer-walks) through the de Bruijn hash table.

Starting from the k-mer at the end of a contig, each step looks the
current k-mer up in the table, resolves the extension votes, appends the
chosen base, and shifts the k-mer window by one. The walk terminates on:

* ``END``  — no sufficiently supported next base,
* ``FORK`` — ambiguous branch (two well-supported bases),
* ``LOOP`` — the next k-mer was already visited in this walk,
* ``MAX_LEN`` — the configured cap on extension length,
* ``MISSING`` — the seed (or a shifted k-mer) is absent from the table.

On the GPU a single lane of the warp performs this loop (the other lanes
are predicated off); the CPU form here is the behavioural reference the
SIMT kernels are differential-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.extension import DEFAULT_POLICY, WalkPolicy, WalkState, resolve_extension
from repro.core.hashtable import LocalHashTable
from repro.errors import KmerError
from repro.genomics.dna import decode

#: Default cap on walk length, matching the GPU kernel's max_walk_len.
DEFAULT_MAX_WALK_LEN = 300


@dataclass
class WalkResult:
    """Outcome of one mer-walk.

    Attributes:
        bases: the appended extension (may be empty).
        state: terminal :class:`WalkState`.
        steps: number of hash-table lookups performed.
        k: the k-mer size used.
    """

    bases: str
    state: WalkState
    steps: int
    k: int

    def __len__(self) -> int:
        return len(self.bases)

    @property
    def accepted(self) -> bool:
        """The paper's "walk accepted?" test (Figure 4).

        A walk is accepted unless it stopped at a *fork*: forks are
        exactly what re-running with a larger k can resolve (Figure 1),
        so a forked walk triggers the next k iteration.
        """
        return self.state is not WalkState.FORK


def mer_walk(
    table: LocalHashTable,
    seed_kmer: np.ndarray,
    max_walk_len: int = DEFAULT_MAX_WALK_LEN,
    policy: WalkPolicy = DEFAULT_POLICY,
) -> WalkResult:
    """Walk the de Bruijn graph rightwards from ``seed_kmer``.

    Args:
        table: a constructed :class:`LocalHashTable` (keys of length ``k``).
        seed_kmer: encoded k-mer at the contig end (length must equal
            ``table.k``).
        max_walk_len: maximum number of bases to append.
        policy: vote-resolution thresholds.
    """
    seed_kmer = np.asarray(seed_kmer, dtype=np.uint8)
    if seed_kmer.shape != (table.k,):
        raise KmerError(
            f"seed k-mer length {seed_kmer.shape[0] if seed_kmer.ndim else 0} != k={table.k}"
        )
    current = seed_kmer.copy()
    visited: set[bytes] = {current.tobytes()}
    out: list[str] = []
    steps = 0
    state = WalkState.MAX_LEN
    while len(out) < max_walk_len:
        steps += 1
        slot = table.lookup(current)
        if slot is None:
            state = WalkState.MISSING if steps == 1 else WalkState.END
            break
        step_state, base_code = resolve_extension(slot.votes, policy)
        if step_state is not WalkState.EXTEND:
            state = step_state
            break
        current = np.concatenate([current[1:], np.uint8([base_code])])
        key = current.tobytes()
        if key in visited:
            state = WalkState.LOOP
            break
        visited.add(key)
        out.append(decode(np.uint8([base_code])))
    else:
        state = WalkState.MAX_LEN
    return WalkResult(bases="".join(out), state=state, steps=steps, k=table.k)
