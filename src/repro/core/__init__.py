"""The paper's kernel, as a CPU library: de Bruijn graphs via hash tables.

* :mod:`repro.core.hashtable` — the ``loc_ht`` open-addressing table.
* :mod:`repro.core.extension` — hi/low-quality extension votes and the
  walk-step resolution rule (extend / end / fork).
* :mod:`repro.core.construct` — Algorithm 1 (hash-table construction).
* :mod:`repro.core.merwalk` — Algorithm 2 (DNA walks).
* :mod:`repro.core.binning` — contig binning + hash-table size estimation
  (the pre-processing phase of Figure 3).
* :mod:`repro.core.pipeline` — the full iterative local-assembly pipeline.
* :mod:`repro.core.reference` — a deliberately simple dict-based
  implementation used for differential testing.
"""

from repro.core.hashtable import EMPTY_SLOT, LocalHashTable, Slot
from repro.core.extension import ExtensionVotes, WalkState, resolve_extension
from repro.core.construct import build_table, estimate_table_slots
from repro.core.merwalk import WalkResult, mer_walk
from repro.core.binning import Bin, bin_contigs
from repro.core.pipeline import AssemblyResult, LocalAssembler

__all__ = [
    "EMPTY_SLOT",
    "LocalHashTable",
    "Slot",
    "ExtensionVotes",
    "WalkState",
    "resolve_extension",
    "build_table",
    "estimate_table_slots",
    "WalkResult",
    "mer_walk",
    "Bin",
    "bin_contigs",
    "AssemblyResult",
    "LocalAssembler",
]
