"""Deliberately simple dict-based local assembly, for differential testing.

This module re-implements Algorithm 1 + Algorithm 2 with Python dicts and
strings — no hash tables, no probing, no encodings — so that the
optimized implementations (:mod:`repro.core` and the SIMT kernels in
:mod:`repro.kernels`) can be checked against an implementation whose
correctness is obvious by inspection.
"""

from __future__ import annotations

from repro.core.extension import (
    DEFAULT_POLICY,
    ExtensionVotes,
    WalkPolicy,
    WalkState,
    resolve_extension,
)
from repro.genomics.contig import Contig, End
from repro.genomics.dna import BASES, reverse_complement
from repro.genomics.reads import ReadSet


def reference_table(reads: ReadSet, k: int) -> dict[str, ExtensionVotes]:
    """Dict-of-votes version of Algorithm 1."""
    table: dict[str, ExtensionVotes] = {}
    for read in reads:
        seq = read.sequence
        for i in range(len(seq) - k):
            votes = table.setdefault(seq[i : i + k], ExtensionVotes())
            votes.vote("ACGT".index(seq[i + k]), int(read.quals[i + k]))
    return table


def reference_walk(
    table: dict[str, ExtensionVotes],
    seed: str,
    max_walk_len: int = 300,
    policy: WalkPolicy = DEFAULT_POLICY,
) -> tuple[str, WalkState, int]:
    """String version of Algorithm 2; returns ``(bases, state, steps)``."""
    current = seed
    visited = {current}
    out: list[str] = []
    steps = 0
    while len(out) < max_walk_len:
        steps += 1
        votes = table.get(current)
        if votes is None:
            return "".join(out), (WalkState.MISSING if steps == 1 else WalkState.END), steps
        state, code = resolve_extension(votes, policy)
        if state is not WalkState.EXTEND:
            return "".join(out), state, steps
        current = current[1:] + BASES[code]
        if current in visited:
            return "".join(out), WalkState.LOOP, steps
        visited.add(current)
        out.append(BASES[code])
    return "".join(out), WalkState.MAX_LEN, steps


def reference_extend(
    contig: Contig,
    k: int,
    max_walk_len: int = 300,
    policy: WalkPolicy = DEFAULT_POLICY,
) -> dict[End, tuple[str, WalkState]]:
    """Extend both ends of ``contig`` at a single k; returns per-end results.

    The left end is handled exactly like the pipeline does it: walk the
    reverse-complemented problem rightwards, then reverse-complement the
    extension back.
    """
    results: dict[End, tuple[str, WalkState]] = {}
    table = reference_table(contig.reads, k)
    seed = contig.sequence[-k:]
    bases, state, _ = reference_walk(table, seed, max_walk_len, policy)
    results[End.RIGHT] = (bases, state)

    rc_reads = ReadSet()
    from repro.genomics.reads import Read

    for r in contig.reads:
        rc_reads.append(Read(name=r.name, codes=reverse_complement(r.codes),
                             quals=r.quals[::-1].copy()))
    rc_table = reference_table(rc_reads, k)
    rc_seed = reverse_complement(contig.sequence[:k])
    assert isinstance(rc_seed, str)
    bases, state, _ = reference_walk(rc_table, rc_seed, max_walk_len, policy)
    rc_bases = reverse_complement(bases)
    assert isinstance(rc_bases, str)
    results[End.LEFT] = (rc_bases, state)
    return results
