"""Multi-process local assembly for the CPU pipeline.

Contigs are embarrassingly parallel (each owns its reads and hash
tables — the same property that lets the GPU assign one contig per warp),
so the host-side pipeline parallelizes with a process pool: contigs are
chunked to amortize pickling, workers assemble their chunks, and the
extensions are re-attached to the caller's contig objects.

Results are bit-identical to the serial pipeline (asserted by tests);
only wall-clock changes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.pipeline import AssemblyResult, LocalAssembler
from repro.errors import ReproError
from repro.genomics.contig import Contig


def _assemble_chunk(args: tuple) -> list[tuple[int, Contig]]:
    """Worker: assemble one chunk; returns (index, extended contig) pairs."""
    assembler, indexed_contigs = args
    out = []
    for idx, contig in indexed_contigs:
        assembler.assemble_contig(contig)
        out.append((idx, contig))
    return out


def assemble_parallel(
    contigs: list[Contig],
    assembler: LocalAssembler | None = None,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[AssemblyResult]:
    """Assemble ``contigs`` across a process pool.

    Args:
        contigs: contigs to extend; their extension records are populated
            in place, exactly as :meth:`LocalAssembler.assemble` does.
        assembler: pipeline configuration (defaults to ``LocalAssembler()``).
        workers: pool size; defaults to the CPU count. ``workers=1`` (or a
            single-chunk input) runs serially in-process — useful under
            debuggers and on platforms without fork.
        chunk_size: contigs per task; defaults to an even split into
            ~4 tasks per worker (load balancing vs pickling overhead).
    """
    assembler = assembler or LocalAssembler()
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 0:
        raise ReproError(f"workers must be positive, got {workers}")
    if not contigs:
        return []
    if chunk_size is None:
        chunk_size = max(1, len(contigs) // (workers * 4))
    indexed = list(enumerate(contigs))
    chunks = [indexed[i : i + chunk_size] for i in range(0, len(indexed), chunk_size)]

    if workers == 1 or len(chunks) == 1:
        merged = [pair for chunk in chunks for pair in _assemble_chunk((assembler, chunk))]
    else:
        merged = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for part in pool.map(_assemble_chunk,
                                 ((assembler, chunk) for chunk in chunks)):
                merged.extend(part)

    # re-attach extensions to the caller's objects (workers used copies)
    results: list[AssemblyResult] = [None] * len(contigs)  # type: ignore
    for idx, extended in merged:
        original = contigs[idx]
        original.left_extension = extended.left_extension
        original.right_extension = extended.right_extension
        results[idx] = AssemblyResult(contig=original)
    return results
