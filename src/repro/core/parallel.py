"""Multi-process local assembly for the CPU pipeline.

Contigs are embarrassingly parallel (each owns its reads and hash
tables — the same property that lets the GPU assign one contig per warp),
so the host-side pipeline parallelizes with a process pool: contigs are
chunked to amortize pickling, workers assemble their chunks, and the
extensions are re-attached to the caller's contig objects.

Results are bit-identical to the serial pipeline (asserted by tests);
only wall-clock changes.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.pipeline import AssemblyResult, LocalAssembler
from repro.errors import ReproError
from repro.genomics.contig import Contig

#: Target tasks per worker: enough chunks for load balancing, few enough
#: to amortize per-task pickling.
TASKS_PER_WORKER = 4


def chunk_size_for(n_items: int, workers: int,
                   tasks_per_worker: int = TASKS_PER_WORKER) -> int:
    """Chunk size yielding at most ``workers * tasks_per_worker`` tasks.

    Ceil division: ``floor`` would let the remainder spill into extra
    tasks (up to nearly double the target) and degenerate to 1-item
    chunks for small inputs.
    """
    if workers <= 0:
        raise ReproError(f"workers must be positive, got {workers}")
    return max(1, math.ceil(n_items / (workers * tasks_per_worker)))


def chunk_evenly(items: list, workers: int,
                 tasks_per_worker: int = TASKS_PER_WORKER,
                 chunk_size: int | None = None) -> list[list]:
    """Split ``items`` into contiguous chunks of :func:`chunk_size_for` size.

    Shared by :func:`assemble_parallel` (contig chunks) and
    :meth:`repro.analysis.experiments.ExperimentSuite.run_all`
    (``(device, k)`` shards).
    """
    if chunk_size is None:
        chunk_size = chunk_size_for(len(items), workers, tasks_per_worker)
    return [items[i: i + chunk_size]
            for i in range(0, len(items), chunk_size)]


def _assemble_chunk(args: tuple) -> list[tuple[int, Contig]]:
    """Worker: assemble one chunk; returns (index, extended contig) pairs."""
    assembler, indexed_contigs = args
    out = []
    for idx, contig in indexed_contigs:
        assembler.assemble_contig(contig)
        out.append((idx, contig))
    return out


def assemble_parallel(
    contigs: list[Contig],
    assembler: LocalAssembler | None = None,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[AssemblyResult]:
    """Assemble ``contigs`` across a process pool.

    Args:
        contigs: contigs to extend; their extension records are populated
            in place, exactly as :meth:`LocalAssembler.assemble` does.
        assembler: pipeline configuration (defaults to ``LocalAssembler()``).
        workers: pool size; defaults to the CPU count. ``workers=1`` (or a
            single-chunk input) runs serially in-process — useful under
            debuggers and on platforms without fork.
        chunk_size: contigs per task; defaults to
            :func:`chunk_size_for` — at most ``workers * 4`` tasks
            (load balancing vs pickling overhead).
    """
    assembler = assembler or LocalAssembler()
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 0:
        raise ReproError(f"workers must be positive, got {workers}")
    if not contigs:
        return []
    indexed = list(enumerate(contigs))
    chunks = chunk_evenly(indexed, workers, chunk_size=chunk_size)

    if workers == 1 or len(chunks) == 1:
        merged = [pair for chunk in chunks for pair in _assemble_chunk((assembler, chunk))]
    else:
        merged = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for part in pool.map(_assemble_chunk,
                                 ((assembler, chunk) for chunk in chunks)):
                merged.extend(part)

    # re-attach extensions to the caller's objects (workers used copies)
    results: list[AssemblyResult] = [None] * len(contigs)  # type: ignore
    for idx, extended in merged:
        original = contigs[idx]
        original.left_extension = extended.left_extension
        original.right_extension = extended.right_extension
        results[idx] = AssemblyResult(contig=original)
    return results
