"""Integer-operation cost model for the hash path (paper Table V).

The paper counts the integer operations executed per hash-table access:
a fixed initialization and cleanup cost, a mix-loop cost proportional to
the number of 4-byte words of the k-mer, and key-handling work (reading /
comparing the k-mer bytes) proportional to k. The closed form

``INTOP1(k) = 33 + 25 * (k // 4) + 31 + (5 * k) // 4``

reproduces Table V exactly: 215 / 305 / 457 / 635 INTOPs for
k = 21 / 33 / 55 / 77. Lookups during the mer-walk (Algorithm 2) execute
the same hash function, so ``INTOP2(k) == INTOP1(k)`` (Table VI uses
``INTOP1 + INTOP2 = 2 * INTOP1`` per loop cycle).
"""

from __future__ import annotations

from repro.errors import ModelError

#: Fixed integer ops to set up the hash state (Table V "Initialization").
INIT_INTOPS = 33

#: Fixed integer ops in the avalanche/cleanup phase (Table V "Cleanup").
CLEANUP_INTOPS = 31

#: Integer ops per 4-byte word in the mix loop (Table V "Mix Loop" / (k//4)).
MIX_INTOPS_PER_WORD = 25

#: Integer ops per 4 bases of key handling (load + compare), i.e. 5k/4 total.
KEY_HANDLING_INTOPS_PER_4_BASES = 5


def _check_k(k: int) -> None:
    if k <= 0:
        raise ModelError(f"k must be positive, got {k}")


def mix_loop_intops(k: int) -> int:
    """Integer ops spent in the MurmurHash2 mix loop for a k-base key."""
    _check_k(k)
    return MIX_INTOPS_PER_WORD * (k // 4)


def key_handling_intops(k: int) -> int:
    """Integer ops spent loading/comparing the k-mer bytes themselves."""
    _check_k(k)
    return (KEY_HANDLING_INTOPS_PER_4_BASES * k) // 4


def hash_intops(k: int) -> int:
    """Total integer operations per hash-table access for k-base keys.

    This is the paper's ``INTOP1`` (construction insert) and, equivalently,
    ``INTOP2`` (walk lookup): Table V gives 215/305/457/635 for
    k = 21/33/55/77.
    """
    _check_k(k)
    return INIT_INTOPS + mix_loop_intops(k) + CLEANUP_INTOPS + key_handling_intops(k)


def hash_intops_breakdown(k: int) -> dict[str, int]:
    """Per-phase INTOP breakdown, keyed like Table V's rows."""
    _check_k(k)
    return {
        "initialization": INIT_INTOPS,
        "mix_loop": mix_loop_intops(k),
        "cleanup": CLEANUP_INTOPS,
        "key_handling": key_handling_intops(k),
        "total": hash_intops(k),
    }
