"""Hashing substrate: MurmurHashAligned2 and its integer-operation cost model."""

from repro.hashing.murmur import (
    MURMUR_M,
    MURMUR_R,
    murmur2,
    murmur2_batch,
    murmur_aligned2,
)
from repro.hashing.opcount import (
    CLEANUP_INTOPS,
    INIT_INTOPS,
    KEY_HANDLING_INTOPS_PER_4_BASES,
    MIX_INTOPS_PER_WORD,
    hash_intops,
    hash_intops_breakdown,
)

__all__ = [
    "MURMUR_M",
    "MURMUR_R",
    "murmur2",
    "murmur2_batch",
    "murmur_aligned2",
    "INIT_INTOPS",
    "CLEANUP_INTOPS",
    "MIX_INTOPS_PER_WORD",
    "KEY_HANDLING_INTOPS_PER_4_BASES",
    "hash_intops",
    "hash_intops_breakdown",
]
