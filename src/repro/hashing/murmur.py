"""MurmurHash2 / MurmurHashAligned2 (Austin Appleby, public domain).

The local-assembly kernel hashes each k-mer with ``MurmurHashAligned2``
[20]. We implement the 32-bit MurmurHash2 family faithfully (same
constants ``m = 0x5bd1e995``, ``r = 24``, same mix and tail handling) in
three forms:

* :func:`murmur2` — scalar reference, byte-for-byte identical to the C
  version for aligned input.
* :func:`murmur_aligned2` — the aligned variant; for inputs that are
  4-byte aligned (which ours always are, we own the buffers) it produces
  the same digest as :func:`murmur2`.
* :func:`murmur2_batch` — vectorized over a matrix of equal-length keys,
  used by the SIMT kernels to hash every pending k-mer of a batch in a
  handful of NumPy passes.
* :func:`murmur2_stream` — vectorized over equal-length *windows of one
  flat byte stream*, addressed by start offset. Digest-identical to
  gathering each window and calling :func:`murmur2_batch`, but the word
  loads gather 4 bytes at a time straight from the stream, so the
  ``(n, length)`` window matrix is never materialized — the form the
  batch preparer uses on its concatenated read streams.

All arithmetic is modulo 2**32 (uint32 wraparound), matching C.
"""

from __future__ import annotations

import numpy as np

#: MurmurHash2 multiplicative constant.
MURMUR_M = 0x5BD1E995

#: MurmurHash2 rotation constant.
MURMUR_R = 24

_U32 = 0xFFFFFFFF


def _mmix(h: int, k: int) -> tuple[int, int]:
    """One MurmurHash2 mix round (scalar)."""
    k = (k * MURMUR_M) & _U32
    k ^= k >> MURMUR_R
    k = (k * MURMUR_M) & _U32
    h = (h * MURMUR_M) & _U32
    h ^= k
    return h, k


def murmur2(data: bytes | np.ndarray, seed: int = 0) -> int:
    """32-bit MurmurHash2 of ``data`` (little-endian word reads, as on GPU)."""
    buf = bytes(np.asarray(data, dtype=np.uint8).tobytes()) if isinstance(data, np.ndarray) else bytes(data)
    n = len(buf)
    h = (seed ^ n) & _U32
    i = 0
    while n - i >= 4:
        k = int.from_bytes(buf[i : i + 4], "little")
        h, _ = _mmix(h, k)
        i += 4
    tail = n - i
    if tail == 3:
        h ^= buf[i + 2] << 16
    if tail >= 2:
        h ^= buf[i + 1] << 8
    if tail >= 1:
        h ^= buf[i]
        h = (h * MURMUR_M) & _U32
    h ^= h >> 13
    h = (h * MURMUR_M) & _U32
    h ^= h >> 15
    return h


def murmur_aligned2(data: bytes | np.ndarray, seed: int = 0) -> int:
    """MurmurHashAligned2: identical digest for 4-byte-aligned buffers.

    The aligned variant in SMHasher only changes *how* unaligned buffers
    are read (shift/or assembly of words); for aligned buffers — the only
    case the GPU kernel produces, since it owns its device allocations —
    the digest equals plain MurmurHash2. We therefore delegate, and keep
    this name as the API the kernels call so the correspondence with the
    paper's source is explicit.
    """
    return murmur2(data, seed)


def murmur2_words(stream: np.ndarray) -> np.ndarray:
    """Little-endian 4-byte word assembly over a whole byte stream.

    ``murmur2_words(s)[i]`` is the word MurmurHash2 would read at offset
    ``i`` — the length-independent half of :func:`murmur2_stream`, so a
    k-schedule can assemble the words once per stream and reuse them for
    every window length.
    """
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    if stream.size < 4:
        return np.empty(0, dtype=np.uint32)
    return (
        stream[: stream.size - 3].astype(np.uint32)
        | (stream[1: stream.size - 2].astype(np.uint32) << np.uint32(8))
        | (stream[2: stream.size - 1].astype(np.uint32) << np.uint32(16))
        | (stream[3:].astype(np.uint32) << np.uint32(24))
    )


def murmur2_stream(stream: np.ndarray, starts: np.ndarray, length: int,
                   seed: int = 0, words: np.ndarray | None = None) -> np.ndarray:
    """MurmurHash2 of ``stream[s : s + length]`` for every ``s`` in ``starts``.

    Equivalent to ``murmur2_batch(stream[starts[:, None] + arange(length)],
    seed)`` — same word assembly, same mix order, same tail handling —
    without building the window matrix: little-endian words are
    pre-assembled once over the whole stream (four O(n) passes), then
    each of the ``length // 4`` word rounds is a single gather. ``words``
    accepts a precomputed :func:`murmur2_words` of the same stream.
    """
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    starts = np.asarray(starts, dtype=np.int64)
    if length <= 0:
        raise ValueError(f"window length must be positive, got {length}")
    if starts.size and (int(starts.min()) < 0
                        or int(starts.max()) + length > stream.size):
        raise ValueError("window [start, start + length) out of stream bounds")
    m = np.uint32(MURMUR_M)
    h = np.full(starts.size, (seed ^ length) & _U32, dtype=np.uint32)
    with np.errstate(over="ignore"):
        nwords = length // 4
        if nwords and starts.size:
            if words is None:
                words = murmur2_words(stream)
            for j in range(nwords):
                k = words[starts + 4 * j] * m
                k ^= k >> np.uint32(MURMUR_R)
                k *= m
                h *= m
                h ^= k
        tail = length - nwords * 4
        i = nwords * 4
        if tail == 3:
            h ^= stream[starts + (i + 2)].astype(np.uint32) << np.uint32(16)
        if tail >= 2:
            h ^= stream[starts + (i + 1)].astype(np.uint32) << np.uint32(8)
        if tail >= 1:
            h ^= stream[starts + i].astype(np.uint32)
            h *= m
        h ^= h >> np.uint32(13)
        h *= m
        h ^= h >> np.uint32(15)
    return h


def murmur2_batch(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized MurmurHash2 over a ``(n, length)`` uint8 key matrix.

    Returns a ``uint32`` array of ``n`` digests, each identical to
    ``murmur2(keys[i], seed)``. The word loop runs ``length // 4 + 1``
    vectorized passes; there is no per-key Python loop.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint8)
    if keys.ndim != 2:
        raise ValueError(f"expected (n, length) key matrix, got shape {keys.shape}")
    n, length = keys.shape
    m = np.uint32(MURMUR_M)
    h = np.full(n, (seed ^ length) & _U32, dtype=np.uint32)
    with np.errstate(over="ignore"):
        nwords = length // 4
        if nwords:
            words = (
                keys[:, : nwords * 4]
                .reshape(n, nwords, 4)
                .astype(np.uint32)
            )
            # little-endian word assembly
            w = (
                words[:, :, 0]
                | (words[:, :, 1] << np.uint32(8))
                | (words[:, :, 2] << np.uint32(16))
                | (words[:, :, 3] << np.uint32(24))
            )
            for j in range(nwords):
                k = w[:, j] * m
                k ^= k >> np.uint32(MURMUR_R)
                k *= m
                h *= m
                h ^= k
        tail = length - nwords * 4
        i = nwords * 4
        if tail == 3:
            h ^= keys[:, i + 2].astype(np.uint32) << np.uint32(16)
        if tail >= 2:
            h ^= keys[:, i + 1].astype(np.uint32) << np.uint32(8)
        if tail >= 1:
            h ^= keys[:, i].astype(np.uint32)
            h *= m
        h ^= h >> np.uint32(13)
        h *= m
        h ^= h >> np.uint32(15)
    return h
