"""Memory-hierarchy models: trace-driven cache simulation + analytic model.

Two models, per DESIGN.md decision #2:

* :class:`CacheSim` — an exact set-associative LRU cache usable as L1 or
  L2, fed with address traces. The scalar :meth:`CacheSim.access` path is
  O(trace length) in Python and kept as the differential-testing
  reference; :meth:`CacheSim.replay` computes the identical hit/miss
  outcomes with NumPy by grouping the trace by cache set and replaying
  one access per set per vectorized *round*, so exact simulation runs at
  full-trace scale (see ``benchmarks/bench_cachesim_replay.py``).
* :class:`AnalyticCacheModel` — a capacity/working-set model evaluated per
  *access category* (random table probes, random key compares, streaming
  read-buffer traffic, ...). For a random-access category whose per-CU
  working set is ``W`` and cache capacity ``C``, the hit probability is
  the resident fraction ``min(1, C / W)`` — the standard fully-associative
  approximation for uniform random access — applied level by level.
  Streaming categories hit with a fixed high probability (hardware
  prefetchers handle them) but always pay compulsory traffic.

The analytic model also enforces the *compulsory floor*: a batch can
never move fewer HBM bytes than its cold footprint (every byte of the
tables and read buffers must cross the bus at least once).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.simt.device import CacheSpec, DeviceSpec

#: Hit probability of streaming (sequential, prefetchable) accesses in L1.
STREAM_L1_HIT = 0.90

#: Hit probability of streaming accesses in L2 given an L1 miss.
STREAM_L2_HIT = 0.80


@dataclass(frozen=True)
class AccessCategory:
    """One class of memory accesses a kernel performs.

    Attributes:
        name: label ("table_probe", "key_compare", "read_stream", ...).
        accesses: number of accesses in the batch.
        bytes_per_access: logical payload bytes per access.
        working_set_per_warp: bytes of distinct data one warp touches in
            this category (drives the capacity model).
        pattern: "random" or "stream".
        writes: whether the accesses are stores (write-allocate +
            write-back doubles their HBM cost on a miss).
        atomic: atomic operations execute at the L2 on every GPU modeled
            here (atomicCAS / atomicAdd bypass the L1 entirely), so atomic
            categories never hit L1.
    """

    name: str
    accesses: int
    bytes_per_access: float
    working_set_per_warp: float
    pattern: str = "random"
    writes: bool = False
    atomic: bool = False

    def __post_init__(self) -> None:
        if self.pattern not in ("random", "stream"):
            raise ModelError(f"unknown access pattern {self.pattern!r}")
        if self.accesses < 0 or self.bytes_per_access < 0:
            raise ModelError(f"negative access counts in category {self.name!r}")


@dataclass
class MemoryTraffic:
    """Per-level byte accounting for one batch."""

    l1_bytes: float = 0.0
    l2_bytes: float = 0.0
    hbm_bytes: float = 0.0
    by_category: dict = field(default_factory=dict)

    @property
    def total_accessed_bytes(self) -> float:
        return self.l1_bytes + self.l2_bytes + self.hbm_bytes


def _lines(payload: float, line_bytes: int) -> float:
    """Transaction bytes needed to move ``payload`` at line granularity."""
    if payload <= 0:
        return 0.0
    return float(np.ceil(payload / line_bytes)) * line_bytes


class AnalyticCacheModel:
    """Working-set cache model for one device.

    Args:
        device: the simulated GPU.
        warps_in_flight: warps whose data competes for the L2 during the
            batch (the batch's warp count — tables stay resident in global
            memory for the whole launch, so the full batch footprint
            pressures the L2 even though only ``max_resident`` warps
            execute at any instant).
        l2_churn: multiplier on the effective L2 working set, accounting
            for conflict misses and the interleaving of probe, vote and
            stream traffic in one shared cache (calibration constant).
    """

    def __init__(self, device: DeviceSpec, warps_in_flight: int,
                 l2_churn: float = 1.0) -> None:
        if warps_in_flight <= 0:
            raise ModelError("warps_in_flight must be positive")
        if l2_churn < 1.0:
            raise ModelError("l2_churn must be >= 1")
        self.device = device
        self.warps_in_flight = warps_in_flight
        self.l2_churn = l2_churn
        # Warps sharing one CU's L1.
        self.warps_per_cu = max(
            1,
            min(
                device.max_resident_warps_per_cu,
                -(-warps_in_flight // device.compute_units),  # ceil div
            ),
        )

    def hit_rates(self, cat: AccessCategory) -> tuple[float, float]:
        """(L1 hit prob, L2 hit prob given L1 miss) for a category."""
        if cat.pattern == "stream":
            return STREAM_L1_HIT, STREAM_L2_HIT
        if cat.atomic:
            l1_hit = 0.0
        else:
            l1_ws = cat.working_set_per_warp * self.warps_per_cu
            l1_hit = min(1.0, self.device.l1.size_bytes / l1_ws) if l1_ws > 0 else 1.0
        l2_ws = cat.working_set_per_warp * self.warps_in_flight * self.l2_churn
        l2_hit = min(1.0, self.device.l2.size_bytes / l2_ws) if l2_ws > 0 else 1.0
        return l1_hit, l2_hit

    def traffic(
        self, categories: list[AccessCategory], cold_footprint_bytes: float = 0.0
    ) -> MemoryTraffic:
        """Evaluate all categories; returns per-level byte totals.

        ``cold_footprint_bytes`` is the batch's distinct data footprint;
        HBM traffic is floored at it (compulsory misses), attributed to a
        synthetic ``"compulsory"`` category when the floor binds.
        """
        out = MemoryTraffic()
        for cat in categories:
            l1_hit, l2_hit = self.hit_rates(cat)
            l1_tx = _lines(cat.bytes_per_access, self.device.l1.line_bytes)
            l2_tx = _lines(cat.bytes_per_access, self.device.l2.line_bytes)
            write_factor = 2.0 if cat.writes else 1.0
            l1_b = cat.accesses * l1_hit * l1_tx
            l2_b = cat.accesses * (1 - l1_hit) * l2_hit * l2_tx
            hbm_b = cat.accesses * (1 - l1_hit) * (1 - l2_hit) * l2_tx * write_factor
            out.l1_bytes += l1_b
            out.l2_bytes += l2_b
            out.hbm_bytes += hbm_b
            out.by_category[cat.name] = hbm_b
        if out.hbm_bytes < cold_footprint_bytes:
            out.by_category["compulsory"] = cold_footprint_bytes - out.hbm_bytes
            out.hbm_bytes = cold_footprint_bytes
        return out


class CacheSim:
    """Exact set-associative LRU cache (trace-driven).

    Usable standalone as one level, or stacked via :meth:`access_trace`'s
    returned miss addresses. Addresses are byte addresses; each access
    touches a single line (callers expand multi-line accesses).
    """

    def __init__(self, spec: CacheSpec, ways: int = 8) -> None:
        if ways <= 0:
            raise ModelError("ways must be positive")
        n_lines = spec.size_bytes // spec.line_bytes
        if n_lines < ways:
            raise ModelError("cache too small for the requested associativity")
        self.spec = spec
        self.ways = ways
        self.n_sets = max(1, n_lines // ways)
        # tags[set, way]; -1 marks invalid. lru[set, way]: higher = more recent.
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self._lru = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.spec.line_bytes
        s = line % self.n_sets
        self._clock += 1
        ways = self._tags[s]
        hit = np.nonzero(ways == line)[0]
        if hit.size:
            self._lru[s, hit[0]] = self._clock
            self.hits += 1
            return True
        victim = int(np.argmin(self._lru[s]))
        self._tags[s, victim] = line
        self._lru[s, victim] = self._clock
        self.misses += 1
        return False

    def access_trace(self, addresses: np.ndarray) -> np.ndarray:
        """Access a sequence of addresses; returns the boolean hit vector.

        Scalar reference path — one Python iteration per access. Kept for
        differential testing against :meth:`replay`, which produces the
        same hit vector and end state vectorized.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        return np.fromiter(
            (self.access(int(a)) for a in addresses), dtype=bool, count=len(addresses)
        )

    def replay(self, addresses: np.ndarray) -> np.ndarray:
        """Batched :meth:`access_trace`: same outcomes, vectorized over sets.

        Cache sets are independent and grouping preserves each set's
        access order, so replaying one access per set per *round* — each
        round a single vectorized tag-compare + LRU update across every
        set still holding accesses — reproduces the scalar loop exactly:
        identical per-access hits, identical tags/LRU stamps/clock after
        the call (the two paths can be interleaved freely). The Python
        loop runs ``max(accesses landing in one set)`` rounds instead of
        ``len(addresses)`` iterations.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.size
        hits = np.zeros(n, dtype=bool)
        if n == 0:
            return hits
        lines = addresses // self.spec.line_bytes
        sets = lines % self.n_sets
        order = np.argsort(sets, kind="stable")  # per-set order == trace order
        sorted_sets = sets[order]
        starts = np.flatnonzero(np.r_[True, sorted_sets[1:] != sorted_sets[:-1]])
        counts = np.diff(np.r_[starts, n])
        group_sets = sorted_sets[starts]
        # deepest groups first: round r's active groups are a prefix
        by_depth = np.argsort(-counts, kind="stable")
        starts = starts[by_depth]
        counts = counts[by_depth]
        group_sets = group_sets[by_depth]
        neg_counts = -counts
        base = self._clock
        # Rounds only touch the sets present in the trace, and always as
        # a *prefix* of the depth-sorted groups — so compact those rows
        # into dense scratch tables once, run every round on contiguous
        # slices, and scatter back once at the end. This removes the big
        # strided tag/LRU gathers from the loop body.
        tags = self._tags[group_sets]
        lru = self._lru[group_sets]
        rows = np.arange(group_sets.size)
        for r in range(int(counts[0])):
            m = int(np.searchsorted(neg_counts, -r, side="left"))
            idx = order[starts[:m] + r]     # original trace positions
            line_r = lines[idx]
            row = rows[:m]
            match = tags[:m] == line_r[:, None]
            hit_way = match.argmax(axis=1)
            is_hit = match[row, hit_way]    # argmax==0 may mean "no match"
            way = np.where(is_hit, hit_way, lru[:m].argmin(axis=1))
            tags[row, way] = line_r
            lru[row, way] = base + 1 + idx  # the scalar path's clock stamp
            hits[idx] = is_hit
        self._tags[group_sets] = tags
        self._lru[group_sets] = lru
        self._clock = base + n
        n_hits = int(np.count_nonzero(hits))
        self.hits += n_hits
        self.misses += n - n_hits
        return hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        """Invalidate all lines and clear statistics (cold cache)."""
        self._tags.fill(-1)
        self._lru.fill(0)
        self._clock = 0
        self.reset_stats()


class CacheHierarchy:
    """Composed L1 -> L2 -> HBM trace simulation for one device.

    Accesses try the L1 first; misses fall through to the L2; L2 misses
    count HBM transactions. ``atomic`` accesses bypass the L1 (as on the
    real GPUs). One instance models a single CU's L1 plus the shared L2 —
    trace-replay validation runs one warp stream at a time, which is what
    the tests and the validation bench need.
    """

    def __init__(self, device: DeviceSpec, ways: int = 8) -> None:
        self.device = device
        self.l1 = CacheSim(device.l1, ways=ways)
        self.l2 = CacheSim(device.l2, ways=max(ways, 16))
        self.hbm_transactions = 0

    def access(self, address: int, atomic: bool = False) -> str:
        """Access one address; returns the serving level: "l1"/"l2"/"hbm"."""
        if not atomic and self.l1.access(address):
            return "l1"
        if self.l2.access(address):
            return "l2"
        self.hbm_transactions += 1
        return "hbm"

    def access_trace(self, addresses: np.ndarray,
                     atomic: bool = False) -> dict[str, int]:
        """Replay a trace scalar-ly; returns per-level hit counts.

        Reference path; :meth:`replay` gives identical counts batched.
        """
        counts = {"l1": 0, "l2": 0, "hbm": 0}
        for a in np.asarray(addresses, dtype=np.int64):
            counts[self.access(int(a), atomic=atomic)] += 1
        return counts

    def replay(self, addresses: np.ndarray, atomic: bool = False,
               return_levels: bool = False):
        """Batched trace replay through L1 -> L2 -> HBM.

        Each level sees exactly the subsequence the scalar path would
        feed it (the whole trace for the L1, the L1-miss subsequence for
        the L2), so per-level counts and cache end states match
        :meth:`access_trace` exactly. With ``return_levels`` the per-level
        counts come with the serving level of every access
        (:data:`REPLAY_LEVELS` codes: 0 = L1, 1 = L2, 2 = HBM).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.size
        if atomic:
            l1_hits = np.zeros(n, dtype=bool)
            l2_hits = self.l2.replay(addresses)
        else:
            l1_hits = self.l1.replay(addresses)
            l2_hits = self.l2.replay(addresses[~l1_hits])
        n_l1 = int(np.count_nonzero(l1_hits))
        n_l2 = int(np.count_nonzero(l2_hits))
        n_hbm = n - n_l1 - n_l2
        self.hbm_transactions += n_hbm
        counts = {"l1": n_l1, "l2": n_l2, "hbm": n_hbm}
        if not return_levels:
            return counts
        levels = np.zeros(n, dtype=np.int8)
        miss_l1 = np.nonzero(~l1_hits)[0]
        levels[miss_l1[l2_hits]] = 1
        levels[miss_l1[~l2_hits]] = 2
        return counts, levels

    @property
    def hbm_bytes(self) -> int:
        """Bytes moved over the memory bus (line-granular)."""
        return self.hbm_transactions * self.device.l2.line_bytes

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.hbm_transactions = 0

    def reset(self) -> None:
        """Cold-start both levels and clear all statistics."""
        self.l1.reset()
        self.l2.reset()
        self.hbm_transactions = 0


#: Serving-level names for :meth:`CacheHierarchy.replay` level codes.
REPLAY_LEVELS = ("l1", "l2", "hbm")


def implied_l2_churn(device: DeviceSpec, warps_in_flight: int,
                     working_set_per_warp: float,
                     measured_l2_hit: float) -> float:
    """Invert the analytic L2 capacity model against a measured hit rate.

    The analytic model predicts ``l2_hit = min(1, C / (W * warps * churn))``
    for a random category; given an exact-replay hit rate this returns the
    ``l2_churn`` that makes the model reproduce it (clamped to the model's
    ``>= 1`` domain). A saturated hit rate (>= 1) or an empty working set
    leaves the inversion unconstrained — every churn up to ``C / W``
    reproduces it — so the least-commitment answer 1.0 is returned.
    """
    ws = working_set_per_warp * warps_in_flight
    if measured_l2_hit <= 0.0:
        raise ModelError("measured_l2_hit must be positive to invert")
    if ws <= 0 or measured_l2_hit >= 1.0:
        return 1.0
    return max(1.0, device.l2.size_bytes / (ws * measured_l2_hit))
