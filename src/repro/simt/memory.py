"""Memory-hierarchy models: trace-driven cache simulation + analytic model.

Two models, per DESIGN.md decision #2:

* :class:`CacheSim` — an exact set-associative LRU cache usable as L1 or
  L2, fed with address traces. Exact but O(trace length) in Python, so it
  is used for small inputs, unit tests, and for validating the analytic
  model's hit rates.
* :class:`AnalyticCacheModel` — a capacity/working-set model evaluated per
  *access category* (random table probes, random key compares, streaming
  read-buffer traffic, ...). For a random-access category whose per-CU
  working set is ``W`` and cache capacity ``C``, the hit probability is
  the resident fraction ``min(1, C / W)`` — the standard fully-associative
  approximation for uniform random access — applied level by level.
  Streaming categories hit with a fixed high probability (hardware
  prefetchers handle them) but always pay compulsory traffic.

The analytic model also enforces the *compulsory floor*: a batch can
never move fewer HBM bytes than its cold footprint (every byte of the
tables and read buffers must cross the bus at least once).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.simt.device import CacheSpec, DeviceSpec

#: Hit probability of streaming (sequential, prefetchable) accesses in L1.
STREAM_L1_HIT = 0.90

#: Hit probability of streaming accesses in L2 given an L1 miss.
STREAM_L2_HIT = 0.80


@dataclass(frozen=True)
class AccessCategory:
    """One class of memory accesses a kernel performs.

    Attributes:
        name: label ("table_probe", "key_compare", "read_stream", ...).
        accesses: number of accesses in the batch.
        bytes_per_access: logical payload bytes per access.
        working_set_per_warp: bytes of distinct data one warp touches in
            this category (drives the capacity model).
        pattern: "random" or "stream".
        writes: whether the accesses are stores (write-allocate +
            write-back doubles their HBM cost on a miss).
        atomic: atomic operations execute at the L2 on every GPU modeled
            here (atomicCAS / atomicAdd bypass the L1 entirely), so atomic
            categories never hit L1.
    """

    name: str
    accesses: int
    bytes_per_access: float
    working_set_per_warp: float
    pattern: str = "random"
    writes: bool = False
    atomic: bool = False

    def __post_init__(self) -> None:
        if self.pattern not in ("random", "stream"):
            raise ModelError(f"unknown access pattern {self.pattern!r}")
        if self.accesses < 0 or self.bytes_per_access < 0:
            raise ModelError(f"negative access counts in category {self.name!r}")


@dataclass
class MemoryTraffic:
    """Per-level byte accounting for one batch."""

    l1_bytes: float = 0.0
    l2_bytes: float = 0.0
    hbm_bytes: float = 0.0
    by_category: dict = field(default_factory=dict)

    @property
    def total_accessed_bytes(self) -> float:
        return self.l1_bytes + self.l2_bytes + self.hbm_bytes


def _lines(payload: float, line_bytes: int) -> float:
    """Transaction bytes needed to move ``payload`` at line granularity."""
    if payload <= 0:
        return 0.0
    return float(np.ceil(payload / line_bytes)) * line_bytes


class AnalyticCacheModel:
    """Working-set cache model for one device.

    Args:
        device: the simulated GPU.
        warps_in_flight: warps whose data competes for the L2 during the
            batch (the batch's warp count — tables stay resident in global
            memory for the whole launch, so the full batch footprint
            pressures the L2 even though only ``max_resident`` warps
            execute at any instant).
        l2_churn: multiplier on the effective L2 working set, accounting
            for conflict misses and the interleaving of probe, vote and
            stream traffic in one shared cache (calibration constant).
    """

    def __init__(self, device: DeviceSpec, warps_in_flight: int,
                 l2_churn: float = 1.0) -> None:
        if warps_in_flight <= 0:
            raise ModelError("warps_in_flight must be positive")
        if l2_churn < 1.0:
            raise ModelError("l2_churn must be >= 1")
        self.device = device
        self.warps_in_flight = warps_in_flight
        self.l2_churn = l2_churn
        # Warps sharing one CU's L1.
        self.warps_per_cu = max(
            1,
            min(
                device.max_resident_warps_per_cu,
                -(-warps_in_flight // device.compute_units),  # ceil div
            ),
        )

    def hit_rates(self, cat: AccessCategory) -> tuple[float, float]:
        """(L1 hit prob, L2 hit prob given L1 miss) for a category."""
        if cat.pattern == "stream":
            return STREAM_L1_HIT, STREAM_L2_HIT
        if cat.atomic:
            l1_hit = 0.0
        else:
            l1_ws = cat.working_set_per_warp * self.warps_per_cu
            l1_hit = min(1.0, self.device.l1.size_bytes / l1_ws) if l1_ws > 0 else 1.0
        l2_ws = cat.working_set_per_warp * self.warps_in_flight * self.l2_churn
        l2_hit = min(1.0, self.device.l2.size_bytes / l2_ws) if l2_ws > 0 else 1.0
        return l1_hit, l2_hit

    def traffic(
        self, categories: list[AccessCategory], cold_footprint_bytes: float = 0.0
    ) -> MemoryTraffic:
        """Evaluate all categories; returns per-level byte totals.

        ``cold_footprint_bytes`` is the batch's distinct data footprint;
        HBM traffic is floored at it (compulsory misses), attributed to a
        synthetic ``"compulsory"`` category when the floor binds.
        """
        out = MemoryTraffic()
        for cat in categories:
            l1_hit, l2_hit = self.hit_rates(cat)
            l1_tx = _lines(cat.bytes_per_access, self.device.l1.line_bytes)
            l2_tx = _lines(cat.bytes_per_access, self.device.l2.line_bytes)
            write_factor = 2.0 if cat.writes else 1.0
            l1_b = cat.accesses * l1_hit * l1_tx
            l2_b = cat.accesses * (1 - l1_hit) * l2_hit * l2_tx
            hbm_b = cat.accesses * (1 - l1_hit) * (1 - l2_hit) * l2_tx * write_factor
            out.l1_bytes += l1_b
            out.l2_bytes += l2_b
            out.hbm_bytes += hbm_b
            out.by_category[cat.name] = hbm_b
        if out.hbm_bytes < cold_footprint_bytes:
            out.by_category["compulsory"] = cold_footprint_bytes - out.hbm_bytes
            out.hbm_bytes = cold_footprint_bytes
        return out


class CacheSim:
    """Exact set-associative LRU cache (trace-driven).

    Usable standalone as one level, or stacked via :meth:`access_trace`'s
    returned miss addresses. Addresses are byte addresses; each access
    touches a single line (callers expand multi-line accesses).
    """

    def __init__(self, spec: CacheSpec, ways: int = 8) -> None:
        if ways <= 0:
            raise ModelError("ways must be positive")
        n_lines = spec.size_bytes // spec.line_bytes
        if n_lines < ways:
            raise ModelError("cache too small for the requested associativity")
        self.spec = spec
        self.ways = ways
        self.n_sets = max(1, n_lines // ways)
        # tags[set, way]; -1 marks invalid. lru[set, way]: higher = more recent.
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self._lru = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.spec.line_bytes
        s = line % self.n_sets
        self._clock += 1
        ways = self._tags[s]
        hit = np.nonzero(ways == line)[0]
        if hit.size:
            self._lru[s, hit[0]] = self._clock
            self.hits += 1
            return True
        victim = int(np.argmin(self._lru[s]))
        self._tags[s, victim] = line
        self._lru[s, victim] = self._clock
        self.misses += 1
        return False

    def access_trace(self, addresses: np.ndarray) -> np.ndarray:
        """Access a sequence of addresses; returns the boolean hit vector."""
        addresses = np.asarray(addresses, dtype=np.int64)
        return np.fromiter(
            (self.access(int(a)) for a in addresses), dtype=bool, count=len(addresses)
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class CacheHierarchy:
    """Composed L1 -> L2 -> HBM trace simulation for one device.

    Accesses try the L1 first; misses fall through to the L2; L2 misses
    count HBM transactions. ``atomic`` accesses bypass the L1 (as on the
    real GPUs). One instance models a single CU's L1 plus the shared L2 —
    trace-replay validation runs one warp stream at a time, which is what
    the tests and the validation bench need.
    """

    def __init__(self, device: DeviceSpec, ways: int = 8) -> None:
        self.device = device
        self.l1 = CacheSim(device.l1, ways=ways)
        self.l2 = CacheSim(device.l2, ways=max(ways, 16))
        self.hbm_transactions = 0

    def access(self, address: int, atomic: bool = False) -> str:
        """Access one address; returns the serving level: "l1"/"l2"/"hbm"."""
        if not atomic and self.l1.access(address):
            return "l1"
        if self.l2.access(address):
            return "l2"
        self.hbm_transactions += 1
        return "hbm"

    def access_trace(self, addresses: np.ndarray,
                     atomic: bool = False) -> dict[str, int]:
        """Replay a trace; returns per-level hit counts."""
        counts = {"l1": 0, "l2": 0, "hbm": 0}
        for a in np.asarray(addresses, dtype=np.int64):
            counts[self.access(int(a), atomic=atomic)] += 1
        return counts

    @property
    def hbm_bytes(self) -> int:
        """Bytes moved over the memory bus (line-granular)."""
        return self.hbm_transactions * self.device.l2.line_bytes

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.hbm_transactions = 0
