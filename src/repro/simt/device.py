"""Simulated device specifications (paper Tables I and III, Figure 6 peaks).

Each :class:`DeviceSpec` bundles the architectural numbers the paper's
analysis depends on: warp/sub-group width, compute-unit count, cache
capacities and line sizes, HBM capacity/bandwidth, the integer-operation
peak and the machine balance of the INTOP roofline, plus the calibration
constants of the timing model (documented per field).

The MI250X spec models **one GCD** and the Max 1550 spec **one tile**,
exactly as the paper's experiments do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class CacheSpec:
    """One cache level.

    Attributes:
        size_bytes: capacity.
        line_bytes: granularity of a memory transaction at this level
            (NVIDIA counts 32 B sectors; AMD and Intel move 64 B lines).
        latency_cycles: load-to-use latency on a hit.
    """

    size_bytes: int
    line_bytes: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.latency_cycles <= 0:
            raise DeviceError(f"invalid cache spec: {self}")


@dataclass(frozen=True)
class DeviceSpec:
    """A simulated GPU (one die/tile, matching the paper's setup).

    Architectural fields come straight from Tables I/III and Figure 6.
    ``pipeline_efficiency`` and ``memory_efficiency`` are the two
    calibration constants of the timing model: the sustained fraction of
    the INTOP peak / HBM bandwidth an irregular integer kernel achieves.
    They are device properties (issue width, atomics throughput, memory
    controller behaviour), not per-dataset knobs.
    """

    name: str
    vendor: str
    programming_model: str
    compiler: str
    hpc_system: str
    warp_size: int
    compute_units: int
    l1: CacheSpec
    l2: CacheSpec
    hbm_bytes: int
    hbm_bw_gbps: float          # GB/s (Figure 6 ceilings)
    peak_gintops: float         # warp-level G INTOP/s (Figure 6 ceilings)
    clock_ghz: float
    hbm_latency_cycles: int
    max_resident_warps_per_cu: int
    pipeline_efficiency: float
    memory_efficiency: float
    #: Cycles per dependent integer operation (the mer-walk's hash is a
    #: serial dependency chain; superscalar issue cannot parallelize it).
    dependent_cpi: float = 1.0
    #: Sustained integer-issue rate for the *timing* model, when it differs
    #: from the roofline ceiling. The Max 1550's Figure 6 ceiling
    #: (Advisor-measured at sub-group-16 occupancy) understates the
    #: scalar/predicated issue rate the Xe vector engines sustain on this
    #: kernel; None means "same as peak_gintops".
    timing_peak_gintops: float | None = None

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.compute_units <= 0:
            raise DeviceError(f"invalid device spec for {self.name}")
        if not 0.0 < self.pipeline_efficiency <= 1.0:
            raise DeviceError(f"{self.name}: pipeline_efficiency out of (0,1]")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise DeviceError(f"{self.name}: memory_efficiency out of (0,1]")

    @property
    def machine_balance(self) -> float:
        """Ridge point of the INTOP roofline (INTOP/byte), as in Figure 6."""
        return self.peak_gintops / self.hbm_bw_gbps

    @property
    def total_resident_warps(self) -> int:
        """Warp slots across the device (occupancy upper bound)."""
        return self.compute_units * self.max_resident_warps_per_cu

    def with_(self, **kwargs) -> "DeviceSpec":
        """A modified copy (used by ablation benches, e.g. cache sweeps)."""
        return replace(self, **kwargs)


#: NVIDIA A100 (Perlmutter): CUDA 12.0. 108 SMs, 192 KB L1/SM, 40 MB L2.
A100 = DeviceSpec(
    name="A100",
    vendor="NVIDIA",
    programming_model="CUDA",
    compiler="CUDA 12.0",
    hpc_system="Perlmutter (NERSC)",
    warp_size=32,
    compute_units=108,
    l1=CacheSpec(size_bytes=192 * KB, line_bytes=32, latency_cycles=35),
    l2=CacheSpec(size_bytes=40 * MB, line_bytes=32, latency_cycles=200),
    hbm_bytes=40 * GB,
    hbm_bw_gbps=1555.0,
    peak_gintops=358.0,
    clock_ghz=1.41,
    hbm_latency_cycles=500,
    max_resident_warps_per_cu=32,
    pipeline_efficiency=1.0,
    memory_efficiency=0.60,
)

#: AMD MI250X, one GCD (Frontier): HIP / ROCm 5.3.0. 110 CUs per GCD,
#: 16 KB L1/CU, 8 MB L2 per die, 64-wide wavefronts.
MI250X = DeviceSpec(
    name="MI250X",
    vendor="AMD",
    programming_model="HIP",
    compiler="ROCm 5.3.0",
    hpc_system="Frontier (OLCF)",
    warp_size=64,
    compute_units=110,
    l1=CacheSpec(size_bytes=16 * KB, line_bytes=64, latency_cycles=60),
    l2=CacheSpec(size_bytes=8 * MB, line_bytes=64, latency_cycles=250),
    hbm_bytes=64 * GB,
    hbm_bw_gbps=1600.0,
    peak_gintops=374.0,
    clock_ghz=1.70,
    hbm_latency_cycles=600,
    max_resident_warps_per_cu=24,
    pipeline_efficiency=1.0,
    memory_efficiency=0.55,
)

#: Intel Data Center GPU Max 1550, one tile (Sunspot): SYCL / DPC++ 2023.
#: 64 Xe-cores per tile, 204 MB L2 per tile, sub-group size 16.
MAX1550 = DeviceSpec(
    name="MAX1550",
    vendor="Intel",
    programming_model="SYCL",
    compiler="Intel DPC++ 2023",
    hpc_system="Sunspot (ALCF)",
    warp_size=16,
    compute_units=64,
    l1=CacheSpec(size_bytes=512 * KB, line_bytes=64, latency_cycles=50),
    l2=CacheSpec(size_bytes=204 * MB, line_bytes=64, latency_cycles=220),
    hbm_bytes=64 * GB,
    hbm_bw_gbps=1176.21,
    peak_gintops=105.0,
    clock_ghz=1.60,
    hbm_latency_cycles=550,
    max_resident_warps_per_cu=64,
    pipeline_efficiency=1.0,
    memory_efficiency=0.55,
    timing_peak_gintops=230.0,
)

#: The paper's three platforms (Table I order).
PLATFORMS: tuple[DeviceSpec, ...] = (A100, MI250X, MAX1550)


def full_board(device: DeviceSpec) -> DeviceSpec:
    """The whole-board variant of a multi-die device.

    The paper deliberately uses one MI250X GCD and one Max 1550 tile; this
    helper models the full board (both dies/tiles working on one launch)
    by doubling compute units, L2 capacity, HBM capacity/bandwidth, and
    the integer peaks. The A100 is a single die and is returned unchanged.
    Cross-die effects (Infinity Fabric / tile-to-tile traffic) are not
    modeled — this is the optimistic scaling bound.
    """
    if device.name == "A100":
        return device
    return device.with_(
        name=f"{device.name}-full",
        compute_units=device.compute_units * 2,
        l2=CacheSpec(device.l2.size_bytes * 2, device.l2.line_bytes,
                     device.l2.latency_cycles),
        hbm_bytes=device.hbm_bytes * 2,
        hbm_bw_gbps=device.hbm_bw_gbps * 2,
        peak_gintops=device.peak_gintops * 2,
        timing_peak_gintops=(device.timing_peak_gintops * 2
                             if device.timing_peak_gintops else None),
    )


def device_by_name(name: str) -> DeviceSpec:
    """Look a platform up by (case-insensitive) name."""
    for dev in PLATFORMS:
        if dev.name.lower() == name.lower():
            return dev
    raise DeviceError(
        f"unknown device {name!r}; available: {[d.name for d in PLATFORMS]}"
    )
