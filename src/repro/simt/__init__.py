"""SIMT GPU simulator: devices, warps, intrinsics, caches, counters.

This subpackage stands in for the three physical GPUs of the paper
(NVIDIA A100, AMD MI250X, Intel Max 1550). It executes real warp-level
algorithms (the kernels in :mod:`repro.kernels`) over vectorized lane
arrays, and measures — rather than assumes — the quantities the paper
profiles: warp-level integer operations, HBM bytes (through a cache
model), predication/active-lane statistics, and serial dependency depth.
"""

from repro.simt.device import (
    A100,
    MAX1550,
    MI250X,
    PLATFORMS,
    CacheSpec,
    DeviceSpec,
    device_by_name,
)
from repro.simt.counters import KernelProfile
from repro.simt.memory import (
    AccessCategory,
    AnalyticCacheModel,
    CacheHierarchy,
    CacheSim,
    MemoryTraffic,
)

__all__ = [
    "A100",
    "MI250X",
    "MAX1550",
    "PLATFORMS",
    "CacheSpec",
    "DeviceSpec",
    "device_by_name",
    "KernelProfile",
    "AccessCategory",
    "AnalyticCacheModel",
    "CacheHierarchy",
    "CacheSim",
    "MemoryTraffic",
]
