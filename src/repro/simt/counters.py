"""Kernel profiling counters (the simulator's nsight/rocprof/advisor).

:class:`KernelProfile` accumulates every quantity the paper's analysis
consumes. Counts are *measured* by the kernels while they execute —
probe chains, walk steps, and active-lane fractions come from the actual
algorithm running on the actual data — and the memory-model fields are
filled in by :mod:`repro.simt.memory`.

The convention matches the paper's artifact appendix: INTOPs are
**warp-level** (one warp instruction counts once, however many lanes are
active) and HBM bytes are what crosses the device memory bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass
class KernelProfile:
    """Aggregated counters for one kernel run (or a sum of runs).

    Attributes:
        intops: warp-level integer operations executed.
        hbm_bytes: bytes moved to/from device memory.
        l1_hit_bytes / l2_hit_bytes: bytes served by each cache level.
        warp_instructions: warp instructions issued (issue slots used).
        lane_instructions: sum over instructions of active lanes
            (``lane_instructions / (warp_instructions * warp_size)`` is the
            mean active-lane fraction, i.e. 1 - predication waste).
        warp_size: lane width used for the run (for the fraction above).
        inserts / insert_probe_iterations: construction work, measured.
        lookups / lookup_probe_iterations: walk work, measured.
        walk_steps: bases appended + terminal lookups across all walks.
        sync_ops: warp/sub-group synchronization operations executed.
        atomics: atomic operations executed (CAS + vote updates).
        serial_depth: longest per-warp chain of dependent memory accesses
            (probing rounds + walk steps), summed over sequential batches
            — the latency-bound floor of the timing model.
        kernels_launched: number of kernel launches (one per bin per end).
        contigs / extensions_bases: functional outputs for sanity checks.
        seconds: predicted kernel time (filled by the timing model).
    """

    intops: int = 0
    hbm_bytes: float = 0.0
    l1_hit_bytes: float = 0.0
    l2_hit_bytes: float = 0.0
    warp_instructions: int = 0
    lane_instructions: int = 0
    warp_size: int = 32
    inserts: int = 0
    insert_probe_iterations: int = 0
    lookups: int = 0
    lookup_probe_iterations: int = 0
    walk_steps: int = 0
    sync_ops: int = 0
    atomics: int = 0
    serial_depth: int = 0
    #: Issue-slot width each walk instruction occupies. Equals the warp
    #: size for the paper's kernels (one lane walks, the warp stalls);
    #: 1 under the lane-parallel-walk mode that models the paper's
    #: independent-thread-scheduling suggestion.
    walk_issue_width: int = 32
    kernels_launched: int = 0
    contigs: int = 0
    extension_bases: int = 0
    #: Contig-end launches dropped on table overflow (the paper's
    #: ``*hashtable full*`` path, under OverflowPolicy.DROP_CONTIG).
    contigs_dropped: int = 0
    #: Grow-retry re-launches performed after table overflows.
    overflow_retries: int = 0
    #: PrepareCache flatten reuse over the run (k-schedule and, under
    #: the coalescing service, cross-request reuse for repeat tenants).
    prep_cache_hits: int = 0
    prep_cache_misses: int = 0
    prep_cache_evictions: int = 0
    seconds: float = 0.0
    # --- phase breakdown consumed by the timing model ---
    construct_intops: int = 0
    walk_intops: int = 0
    construct_chain_cycles: float = 0.0
    walk_chain_cycles: float = 0.0

    def merge(self, other: "KernelProfile") -> None:
        """Accumulate another profile (e.g. the next batch) into this one."""
        if other.warp_size != self.warp_size and self.warp_instructions:
            raise ModelError("cannot merge profiles from different warp sizes")
        self.warp_size = other.warp_size
        self.walk_issue_width = other.walk_issue_width
        for name in (
            "intops", "warp_instructions", "lane_instructions", "inserts",
            "insert_probe_iterations", "lookups", "lookup_probe_iterations",
            "walk_steps", "sync_ops", "atomics", "serial_depth",
            "kernels_launched", "contigs", "extension_bases",
            "contigs_dropped", "overflow_retries",
            "prep_cache_hits", "prep_cache_misses", "prep_cache_evictions",
            "construct_intops", "walk_intops",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.hbm_bytes += other.hbm_bytes
        self.l1_hit_bytes += other.l1_hit_bytes
        self.l2_hit_bytes += other.l2_hit_bytes
        self.construct_chain_cycles += other.construct_chain_cycles
        self.walk_chain_cycles += other.walk_chain_cycles
        self.seconds += other.seconds

    # ----- derived metrics (the paper's axes) -----

    @property
    def gintops(self) -> float:
        """Total INTOPs in units of 1e9 (the G in GINTOPs)."""
        return self.intops / 1e9

    @property
    def gbytes(self) -> float:
        """Total HBM traffic in GB (1e9 bytes, as the roofline uses)."""
        return self.hbm_bytes / 1e9

    @property
    def intop_intensity(self) -> float:
        """Empirical II = INTOPs / HBM byte (x-axis of Figure 6)."""
        if self.hbm_bytes <= 0:
            raise ModelError("intop_intensity undefined with zero HBM bytes")
        return self.intops / self.hbm_bytes

    @property
    def gintops_per_second(self) -> float:
        """Achieved performance (y-axis of Figure 6)."""
        if self.seconds <= 0:
            raise ModelError("gintops_per_second requires a computed time")
        return self.gintops / self.seconds

    @property
    def active_lane_fraction(self) -> float:
        """Mean fraction of lanes active per issued warp instruction."""
        if self.warp_instructions == 0:
            return 0.0
        return self.lane_instructions / (self.warp_instructions * self.warp_size)

    @property
    def mean_insert_probes(self) -> float:
        """Mean probing iterations per insertion (hash-collision pressure)."""
        return self.insert_probe_iterations / self.inserts if self.inserts else 0.0

    @property
    def cache_hit_fraction(self) -> float:
        """Fraction of accessed bytes served by L1+L2."""
        total = self.l1_hit_bytes + self.l2_hit_bytes + self.hbm_bytes
        return (self.l1_hit_bytes + self.l2_hit_bytes) / total if total else 0.0
