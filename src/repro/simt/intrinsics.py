"""Vectorized emulations of the warp intrinsics the kernels use.

The paper's Appendix A shows three atomic-insert protocols built from
``atomicCAS``, ``__match_any_sync`` + ``__syncwarp(mask)`` (CUDA),
``__all`` + a done flag (HIP), and a sub-group barrier (SYCL). The
functions here provide those primitives over *flat lane arrays*: each
element of the input arrays is one active lane, identified by its warp id
— the layout all the SIMT kernels use, so one NumPy call emulates the
intrinsic across every warp of the launch simultaneously.

Per-warp reductions (:func:`ballot_count_sync`, :func:`all_sync`,
:func:`any_sync`) validate their ``warp_ids`` against ``n_warps`` and
raise a :class:`ValueError` naming the offending lane, instead of the
opaque NumPy ``IndexError`` an out-of-range id used to produce.
"""

from __future__ import annotations

import warnings

import numpy as np


def _checked_warp_ids(warp_ids: np.ndarray, n_warps: int,
                      intrinsic: str) -> np.ndarray:
    """Validate per-lane warp ids against the warp count of the launch."""
    if n_warps < 0:
        raise ValueError(f"{intrinsic}: n_warps must be >= 0, got {n_warps}")
    ids = np.asarray(warp_ids)
    if ids.size:
        bad = (ids < 0) | (ids >= n_warps)
        if bad.any():
            lane = int(np.argmax(bad))
            raise ValueError(
                f"{intrinsic}: lane {lane} names warp {int(ids[lane])}, "
                f"outside the launch's [0, {n_warps}) warp range"
            )
    return ids


def match_any_sync(warp_ids: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``__match_any_sync``: group active lanes of a warp by equal value.

    Returns, for every lane, the index (into the input arrays) of the
    *leader* of its (warp, value) group — the lowest-indexed lane with the
    same value in the same warp. Lanes whose returned leader is their own
    index are group leaders.
    """
    warp_ids = np.asarray(warp_ids)
    values = np.asarray(values)
    if warp_ids.shape != values.shape:
        raise ValueError("warp_ids and values must have identical shapes")
    n = warp_ids.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((np.arange(n), values, warp_ids))
    sw, sv = warp_ids[order], values[order]
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = (sw[1:] != sw[:-1]) | (sv[1:] != sv[:-1])
    # leader (original index) of each sorted group, propagated along the run
    group_idx = np.cumsum(new_group) - 1
    leaders_by_group = order[new_group]
    leaders = np.empty(n, dtype=np.int64)
    leaders[order] = leaders_by_group[group_idx]
    return leaders


def ballot_count_sync(warp_ids: np.ndarray, predicate: np.ndarray,
                      n_warps: int) -> np.ndarray:
    """Per-warp count of lanes with a true predicate.

    This is ``__popc(__ballot_sync(...))`` — the count of set ballot
    bits, not the lane-bit mask itself. (The flat-lane layout has no
    fixed lane positions, so a bitmask would be meaningless here; every
    kernel use of the ballot is a popcount anyway.)
    """
    ids = _checked_warp_ids(warp_ids, n_warps, "ballot_count_sync")
    counts = np.zeros(n_warps, dtype=np.int64)
    np.add.at(counts, ids[np.asarray(predicate, dtype=bool)], 1)
    return counts


def ballot_sync(warp_ids: np.ndarray, predicate: np.ndarray,
                n_warps: int) -> np.ndarray:
    """Deprecated alias of :func:`ballot_count_sync`.

    The old name suggested ``__ballot_sync``'s lane-bit mask, but the
    function has always returned per-warp *counts*.
    """
    warnings.warn(
        "ballot_sync returns per-warp counts, not a lane-bit mask; "
        "use ballot_count_sync (ballot_sync will be removed)",
        DeprecationWarning, stacklevel=2,
    )
    return ballot_count_sync(warp_ids, predicate, n_warps)


def all_sync(warp_ids: np.ndarray, predicate: np.ndarray,
             n_warps: int) -> np.ndarray:
    """``__all``: per-warp AND of the predicate over the listed lanes."""
    ids = _checked_warp_ids(warp_ids, n_warps, "all_sync")
    ok = np.ones(n_warps, dtype=bool)
    np.logical_and.at(ok, ids, np.asarray(predicate, dtype=bool))
    return ok


def any_sync(warp_ids: np.ndarray, predicate: np.ndarray,
             n_warps: int) -> np.ndarray:
    """``__any_sync``: per-warp OR of the predicate over the listed lanes.

    Warps with no listed lanes report False (the vacuous OR), mirroring
    :func:`all_sync`'s vacuous True.
    """
    ids = _checked_warp_ids(warp_ids, n_warps, "any_sync")
    hit = np.zeros(n_warps, dtype=bool)
    np.logical_or.at(hit, ids, np.asarray(predicate, dtype=bool))
    return hit


def shfl_sync(warp_values: np.ndarray, lane_values: np.ndarray,
              warp_ids: np.ndarray) -> np.ndarray:
    """``__shfl_sync`` broadcast: every lane receives its warp's value.

    ``warp_values`` holds one value per warp (the walking lane's result);
    the return value redistributes it to each lane in ``warp_ids`` —
    register-to-register, no memory model involvement, exactly like the
    hardware shuffle the walk uses to broadcast its terminal state.
    """
    return np.asarray(warp_values)[np.asarray(warp_ids)]


def elect_one_per_slot(slot_ids: np.ndarray) -> np.ndarray:
    """``atomicCAS`` winner election: one winner per distinct slot.

    Among lanes attempting to claim the same (globally unique) slot id,
    exactly one wins — the first in lane order, matching the determinism
    the tests need while preserving one-winner semantics. Returns a
    boolean winner mask.
    """
    slot_ids = np.asarray(slot_ids)
    n = slot_ids.size
    if n == 0:
        return np.empty(0, dtype=bool)
    # Stable sort on the slot ids alone == lexsort((lane order, slots)):
    # ties keep lane order, so the first lane per slot still wins.
    order = np.argsort(slot_ids, kind="stable")
    sorted_slots = slot_ids[order]
    first = np.ones(n, dtype=bool)
    first[1:] = sorted_slots[1:] != sorted_slots[:-1]
    winners = np.empty(n, dtype=bool)
    winners[order] = first
    return winners
