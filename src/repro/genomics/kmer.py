"""K-mer extraction, canonicalization, packing, and fingerprints.

A *k-mer* is a length-``k`` substring of a DNA sequence. The de Bruijn
graph underlying local assembly uses k-mers as edges; the hash table in
:mod:`repro.core.hashtable` uses them as keys.

Two machine representations are provided:

* **packed** — the exact 2-bit packing of a k-mer into an arbitrary-size
  Python integer (usable for any k, reversible),
* **fingerprint** — a 64-bit multiplicative rolling fingerprint computed
  vectorized over all k-mers of a sequence. Fingerprints are what the
  vectorized SIMT kernels store in hash-table slots as key identity
  (full-key comparison is still charged in the cost model; a 64-bit
  fingerprint collision over the ≤10M keys of a dataset is vanishingly
  unlikely, and the chance is tested empirically in the test suite).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator

import numpy as np

from repro.errors import KmerError
from repro.genomics.dna import decode, encode, reverse_complement

#: Multiplier for the 64-bit polynomial fingerprint (odd => invertible mod 2^64).
FINGERPRINT_BASE = np.uint64(0x9E3779B97F4A7C15)

#: Offset added to each 2-bit code so the all-``A`` k-mer does not map to 0.
_CODE_OFFSET = np.uint64(0x100000001B3)

#: Multiplicative inverse of :data:`FINGERPRINT_BASE` mod 2^64 (the base
#: is odd, hence invertible) — what makes the O(n) rolling evaluation in
#: :func:`rolling_fingerprints` possible.
_BASE_INV = np.uint64(pow(0x9E3779B97F4A7C15, -1, 1 << 64))


def _check_k(n: int, k: int) -> None:
    if k <= 0:
        raise KmerError(f"k must be positive, got {k}")
    if k > n:
        raise KmerError(f"k={k} exceeds sequence length {n}")


def iter_kmers(seq: str | np.ndarray, k: int) -> Iterator[str]:
    """Yield every k-mer of ``seq`` as a string, left to right."""
    codes = encode(seq)
    _check_k(len(codes), k)
    for i in range(len(codes) - k + 1):
        yield decode(codes[i : i + k])


def kmers_of(seq: str | np.ndarray, k: int) -> list[str]:
    """All k-mers of ``seq`` as a list of strings."""
    return list(iter_kmers(seq, k))


def kmer_matrix(codes: np.ndarray, k: int) -> np.ndarray:
    """Zero-copy ``(n-k+1, k)`` view of all k-mers of an encoded sequence.

    Uses a strided sliding window so no bases are copied — the guides'
    "views, not copies" rule applied to the innermost data structure.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    _check_k(len(codes), k)
    return np.lib.stride_tricks.sliding_window_view(codes, k)


def pack_kmer(kmer: str | np.ndarray, k: int | None = None) -> int:
    """Pack a k-mer into an integer, 2 bits per base, MSB-first.

    Works for any k (Python integers are unbounded). The packing is
    reversible via :func:`unpack_kmer`.
    """
    codes = encode(kmer)
    if k is not None and len(codes) != k:
        raise KmerError(f"k-mer length {len(codes)} != k={k}")
    value = 0
    for c in codes.tolist():
        value = (value << 2) | c
    return value


def unpack_kmer(value: int, k: int) -> str:
    """Inverse of :func:`pack_kmer`."""
    if value < 0:
        raise KmerError("packed k-mer must be non-negative")
    codes = np.empty(k, dtype=np.uint8)
    for i in range(k - 1, -1, -1):
        codes[i] = value & 3
        value >>= 2
    if value:
        raise KmerError(f"packed value has more than {k} bases")
    return decode(codes)


def canonical_kmer(kmer: str) -> str:
    """The lexicographically smaller of a k-mer and its reverse complement."""
    rc = reverse_complement(kmer)
    assert isinstance(rc, str)
    return kmer if kmer <= rc else rc


def count_kmers(seq: str | np.ndarray, k: int, canonical: bool = False) -> Counter:
    """Multiplicity of each k-mer of ``seq`` (optionally canonicalized)."""
    counts: Counter = Counter()
    for m in iter_kmers(seq, k):
        counts[canonical_kmer(m) if canonical else m] += 1
    return counts


def kmer_fingerprints(codes: np.ndarray, k: int) -> np.ndarray:
    """64-bit fingerprints of every k-mer of ``codes``, vectorized.

    ``fp(i) = sum_{j<k} (codes[i+j] + OFFSET) * BASE^(k-1-j)  (mod 2^64)``

    The computation is a windowed polynomial evaluation done with ``k``
    vectorized passes over the window matrix (``O(n*k)`` uint64 ops, no
    Python-level inner loop over k-mers).
    """
    return fingerprint_matrix(kmer_matrix(codes, k))


def fingerprint_matrix(windows: np.ndarray) -> np.ndarray:
    """Fingerprints of a ``(n, k)`` window matrix (same formula as
    :func:`kmer_fingerprints`, for callers that already hold windows)."""
    win = np.asarray(windows, dtype=np.uint64)
    if win.ndim != 2:
        raise KmerError(f"expected (n, k) window matrix, got shape {win.shape}")
    with np.errstate(over="ignore"):
        win = win + _CODE_OFFSET
        acc = np.zeros(win.shape[0], dtype=np.uint64)
        for j in range(win.shape[1]):
            acc = acc * FINGERPRINT_BASE + win[:, j]
    return acc


def shift_fingerprints(fps: np.ndarray, dropped: np.ndarray,
                       appended: np.ndarray, k: int) -> np.ndarray:
    """Advance k-window fingerprints by one base in O(n) total work.

    For a window fingerprint ``fp = sum_j (c_j + OFFSET) * BASE^(k-1-j)``
    sliding one base right (dropping ``dropped``, appending ``appended``):

        ``fp' = (fp - (dropped + OFFSET) * BASE^(k-1)) * BASE
                + (appended + OFFSET)     (mod 2^64)``

    — exact under wrapping uint64 arithmetic, so the result is
    bit-identical to re-evaluating :func:`fingerprint_matrix` on the
    shifted windows. The walk phase uses this to follow each warp's
    current k-mer without re-hashing k bases every step.
    """
    with np.errstate(over="ignore"):
        top = ((np.asarray(dropped).astype(np.uint64) + _CODE_OFFSET)
               * np.uint64(pow(0x9E3779B97F4A7C15, k - 1, 1 << 64)))
        return ((np.asarray(fps, dtype=np.uint64) - top) * FINGERPRINT_BASE
                + (np.asarray(appended).astype(np.uint64) + _CODE_OFFSET))


def fingerprint_prefix(codes: np.ndarray) -> np.ndarray:
    """The k-independent prefix-sum stream behind :func:`rolling_fingerprints`.

    ``prefix[i] = sum_{t<i} (codes[t] + OFFSET) * BASE^-t  (mod 2^64)`` —
    computable once per code stream and reusable for every k of a
    k-schedule (the batch preparer caches it on the flattened bin).
    """
    codes = np.asarray(codes)
    n = codes.size
    with np.errstate(over="ignore"):
        inv_pow = np.empty(n, dtype=np.uint64)
        if n:
            inv_pow[0] = 1
            inv_pow[1:] = _BASE_INV
            np.multiply.accumulate(inv_pow, out=inv_pow)
        terms = (codes.astype(np.uint64) + _CODE_OFFSET) * inv_pow
        prefix = np.empty(n + 1, dtype=np.uint64)
        prefix[0] = 0
        np.cumsum(terms, out=prefix[1:])
    return prefix


def rolling_fingerprints(codes: np.ndarray, k: int,
                         prefix: np.ndarray | None = None) -> np.ndarray:
    """Fingerprints of every k-window of ``codes`` in O(n) total work.

    Bit-identical to ``fingerprint_matrix(kmer_matrix(codes, k))`` but
    evaluated through wrapping prefix sums instead of ``k`` passes over a
    materialized window matrix: with ``Binv = BASE^-1 (mod 2^64)`` and
    ``S`` the cumulative sum of ``(codes[t] + OFFSET) * Binv^t``,

        ``fp(i) = (S[i+k] - S[i]) * BASE^(i+k-1)   (mod 2^64)``

    — every operation wraps mod 2^64, so the values match the windowed
    polynomial exactly. This is what the batch preparer runs over each
    flat read stream; callers that already hold window matrices (the walk
    phase's current k-mers) keep using :func:`fingerprint_matrix`.

    ``prefix`` accepts a precomputed :func:`fingerprint_prefix` of the
    same codes (k-independent, so reusable across a k-schedule).
    """
    codes = np.asarray(codes)
    n = codes.size
    _check_k(n, k)
    if prefix is None:
        prefix = fingerprint_prefix(codes)
    elif prefix.size != n + 1:
        raise KmerError(f"prefix size {prefix.size} does not match "
                        f"{n}-base code stream")
    with np.errstate(over="ignore"):
        m = n - k + 1
        scale = np.empty(m, dtype=np.uint64)
        scale[0] = np.uint64(pow(0x9E3779B97F4A7C15, k - 1, 1 << 64))
        scale[1:] = FINGERPRINT_BASE
        np.multiply.accumulate(scale, out=scale)
        return (prefix[k:] - prefix[:m]) * scale


def fingerprint_of(kmer: str) -> int:
    """Fingerprint of a single k-mer string (matches :func:`kmer_fingerprints`)."""
    codes = encode(kmer)
    return int(kmer_fingerprints(codes, len(codes))[0])
