"""2-bit DNA encoding and elementary sequence operations.

The local-assembly kernel operates on the four-letter alphabet
``A, C, G, T``. Internally every sequence is represented as a
``numpy.uint8`` array with values ``0..3`` (the *code* representation);
strings appear only at API boundaries. This mirrors the byte-level layout
the GPU kernel uses and keeps every hot path vectorizable, following the
"vectorize the bottleneck, strings at the edges" idiom from the HPC Python
guides.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError

#: The DNA alphabet in code order. ``BASES[code]`` decodes a 2-bit code.
BASES = "ACGT"

#: Number of symbols in the DNA alphabet.
ALPHABET_SIZE = 4

# Lookup table: ASCII byte -> 2-bit code (255 marks an invalid character).
_ENCODE_LUT = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _ENCODE_LUT[ord(_b)] = _i
    _ENCODE_LUT[ord(_b.lower())] = _i

# Lookup table: 2-bit code -> ASCII byte.
_DECODE_LUT = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8).copy()

# Complement in code space: A<->T (0<->3), C<->G (1<->2) i.e. 3 - code.
_COMPLEMENT_LUT = np.array([3, 2, 1, 0], dtype=np.uint8)


def encode(seq: str | bytes | np.ndarray) -> np.ndarray:
    """Encode a DNA sequence into a ``uint8`` code array (A=0,C=1,G=2,T=3).

    Accepts a ``str``, ``bytes``, or an already-encoded ``uint8`` array
    (returned unchanged after validation). Lower-case bases are accepted.

    Raises:
        SequenceError: if the sequence contains characters outside
            ``ACGTacgt`` (including ambiguity codes such as ``N``).
    """
    if isinstance(seq, np.ndarray):
        if seq.dtype != np.uint8:
            raise SequenceError(f"encoded sequences must be uint8, got {seq.dtype}")
        if seq.size and int(seq.max(initial=0)) > 3:
            raise SequenceError("encoded sequence contains codes > 3")
        return seq
    if isinstance(seq, str):
        raw = np.frombuffer(seq.encode("ascii", errors="replace"), dtype=np.uint8)
    else:
        raw = np.frombuffer(bytes(seq), dtype=np.uint8)
    codes = _ENCODE_LUT[raw]
    if codes.size and int(codes.max(initial=0)) == 255:
        bad = chr(int(raw[np.argmax(codes == 255)]))
        raise SequenceError(f"invalid DNA base {bad!r}; expected one of {BASES}")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into an ``ACGT`` string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max(initial=0)) > 3:
        raise SequenceError("code array contains values > 3")
    return _DECODE_LUT[codes].tobytes().decode("ascii")


def is_valid_sequence(seq: str) -> bool:
    """Return True if ``seq`` consists only of ``ACGT`` (case-insensitive)."""
    try:
        encode(seq)
    except SequenceError:
        return False
    return True


def complement(codes: np.ndarray) -> np.ndarray:
    """Complement of an encoded sequence (A<->T, C<->G), vectorized."""
    return _COMPLEMENT_LUT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(seq: str | np.ndarray) -> str | np.ndarray:
    """Reverse complement; returns the same type it was given.

    Strings come back as strings, encoded arrays come back encoded. The
    mer-walk uses this to turn a left extension into a right extension
    problem on the reverse-complemented contig.
    """
    if isinstance(seq, str):
        return decode(complement(encode(seq))[::-1])
    return complement(seq)[::-1]


def decode_matrix(codes: np.ndarray, lengths: np.ndarray) -> list[str]:
    """Decode a padded ``(n, L)`` code matrix into per-row strings.

    Row ``i`` decodes to its first ``lengths[i]`` codes; padding beyond
    the row length is ignored (and may hold any value 0..3). The LUT
    translation runs once over the whole matrix — only the final string
    slicing is per row, which is the "strings at the edges" boundary.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 2:
        raise SequenceError(f"expected a (n, L) code matrix, got {codes.shape}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (codes.shape[0],):
        raise SequenceError(
            f"lengths shape {lengths.shape} does not match {codes.shape[0]} rows")
    n, width = codes.shape
    if lengths.size and (int(lengths.min(initial=0)) < 0
                         or int(lengths.max(initial=0)) > width):
        raise SequenceError(f"row lengths must lie in [0, {width}]")
    if codes.size and int(codes.max(initial=0)) > 3:
        raise SequenceError("code matrix contains values > 3")
    flat = _DECODE_LUT[codes].tobytes()
    return [flat[i * width:i * width + int(lengths[i])].decode("ascii")
            for i in range(n)]


def reverse_complement_matrix(codes: np.ndarray,
                              lengths: np.ndarray) -> np.ndarray:
    """Reverse-complement every row of a padded ``(n, L)`` code matrix.

    Row ``i`` holds a sequence in its first ``lengths[i]`` columns; the
    result keeps the same layout (sequence left-aligned, padding zeroed).
    One vectorized gather + LUT services the whole batch — this is the
    batched form of :func:`reverse_complement` the kernel driver uses to
    flip a launch's accepted left-end walks in one array operation.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 2:
        raise SequenceError(f"expected a (n, L) code matrix, got {codes.shape}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (codes.shape[0],):
        raise SequenceError(
            f"lengths shape {lengths.shape} does not match {codes.shape[0]} rows")
    n, width = codes.shape
    if width == 0:
        return np.zeros((n, 0), dtype=np.uint8)
    if lengths.size and (int(lengths.min(initial=0)) < 0
                         or int(lengths.max(initial=0)) > width):
        raise SequenceError(f"row lengths must lie in [0, {width}]")
    cols = np.arange(width, dtype=np.int64)
    src = lengths[:, None] - 1 - cols
    valid = cols < lengths[:, None]
    gathered = codes[np.arange(n)[:, None], np.where(valid, src, 0)]
    return np.where(valid, _COMPLEMENT_LUT[gathered], 0).astype(np.uint8)


def random_sequence(length: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random encoded DNA sequence of ``length`` bases."""
    if length < 0:
        raise SequenceError(f"sequence length must be >= 0, got {length}")
    return rng.integers(0, ALPHABET_SIZE, size=length, dtype=np.uint8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of mismatching positions between two equal-length sequences."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise SequenceError(f"length mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))
