"""Genomics substrate: DNA encoding, k-mers, reads, contigs, simulators, I/O.

This subpackage provides everything the local-assembly kernel needs from
the bioinformatics domain, implemented from scratch:

* :mod:`repro.genomics.dna` — 2-bit DNA encoding/decoding, complements.
* :mod:`repro.genomics.kmer` — k-mer extraction, canonicalization,
  packing into 64-bit fingerprint words.
* :mod:`repro.genomics.reads` — sequencing reads with phred qualities.
* :mod:`repro.genomics.contig` — contigs and extension records.
* :mod:`repro.genomics.simulate` — synthetic genome / metagenome / read
  simulators used to regenerate the paper's datasets.
* :mod:`repro.genomics.io` — serialization of local-assembly inputs in a
  ``.dat``-style text format plus FASTA/FASTQ helpers.
"""

from repro.genomics.dna import (
    BASES,
    complement,
    decode,
    encode,
    is_valid_sequence,
    random_sequence,
    reverse_complement,
)
from repro.genomics.kmer import (
    canonical_kmer,
    count_kmers,
    iter_kmers,
    kmer_fingerprints,
    kmers_of,
    pack_kmer,
)
from repro.genomics.reads import Read, ReadSet
from repro.genomics.contig import Contig, ContigExtension

__all__ = [
    "BASES",
    "complement",
    "decode",
    "encode",
    "is_valid_sequence",
    "random_sequence",
    "reverse_complement",
    "canonical_kmer",
    "count_kmers",
    "iter_kmers",
    "kmer_fingerprints",
    "kmers_of",
    "pack_kmer",
    "Read",
    "ReadSet",
    "Contig",
    "ContigExtension",
]
