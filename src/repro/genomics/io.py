"""Serialization of local-assembly inputs.

The paper's artifact ships datasets in a ``.dat`` text format consumed as
``./ht_loc <input file> <k-mer length> <output file>``. We define an
equivalent self-describing text format (documented below) plus minimal
FASTA/FASTQ writers for interoperability.

``.dat`` format (one record per contig)::

    #locassm v1
    <n_contigs>
    >NAME DEPTH
    CONTIG_SEQUENCE
    READ_SEQUENCE TAB QUALITY_STRING     (DEPTH lines)

Quality strings use Sanger phred+33 encoding.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

from repro.errors import DatasetError
from repro.genomics.contig import Contig
from repro.genomics.reads import Read, ReadSet

_MAGIC = "#locassm v1"


def dumps_dat(contigs: list[Contig]) -> str:
    """Serialize contigs + assigned reads to a ``.dat`` format string.

    The string form is the wire payload of the assembly service
    (:mod:`repro.serve`); :func:`write_dat` is the file wrapper.
    """
    buf = _io.StringIO()
    buf.write(f"{_MAGIC}\n{len(contigs)}\n")
    for c in contigs:
        buf.write(f">{c.name} {len(c.reads)}\n{c.sequence}\n")
        for r in c.reads:
            buf.write(f"{r.sequence}\t{r.quality_string}\n")
    return buf.getvalue()


def write_dat(contigs: list[Contig], path: str | Path) -> None:
    """Serialize contigs + assigned reads to ``path`` in ``.dat`` format."""
    Path(path).write_text(dumps_dat(contigs))


def loads_dat(text: str, source: str = "<string>") -> list[Contig]:
    """Parse ``.dat`` format text into contigs with reads.

    ``source`` labels :class:`~repro.errors.DatasetError` messages (the
    file path when called through :func:`read_dat`, a request id in the
    service).
    """
    lines = text.splitlines()
    if not lines or lines[0] != _MAGIC:
        raise DatasetError(f"{source}: missing {_MAGIC!r} header")
    try:
        n_contigs = int(lines[1])
    except (IndexError, ValueError) as exc:
        raise DatasetError(f"{source}: bad contig count line") from exc
    pos = 2
    contigs: list[Contig] = []
    for _ in range(n_contigs):
        if pos >= len(lines) or not lines[pos].startswith(">"):
            raise DatasetError(f"{source}: expected '>' header at line {pos + 1}")
        header = lines[pos][1:].rsplit(" ", 1)
        if len(header) != 2:
            raise DatasetError(f"{source}: malformed contig header at line {pos + 1}")
        name, depth_s = header
        try:
            depth = int(depth_s)
        except ValueError as exc:
            raise DatasetError(f"{source}: bad read count in header {lines[pos]!r}") from exc
        if pos + 1 >= len(lines):
            raise DatasetError(f"{source}: contig {name!r} missing sequence line")
        contig = Contig.from_string(name, lines[pos + 1])
        pos += 2
        reads = ReadSet()
        for j in range(depth):
            if pos >= len(lines):
                raise DatasetError(f"{source}: contig {name!r} truncated at read {j}")
            parts = lines[pos].split("\t")
            if len(parts) != 2:
                raise DatasetError(f"{source}: malformed read line {pos + 1}")
            seq, quals = parts
            if len(seq) != len(quals):
                raise DatasetError(
                    f"{source}: read/quality length mismatch at line {pos + 1}"
                )
            reads.append(Read.from_strings(f"{name}/r{j}", seq, quals))
            pos += 1
        contig.reads = reads
        contigs.append(contig)
    return contigs


def read_dat(path: str | Path) -> list[Contig]:
    """Parse a ``.dat`` file back into contigs with reads."""
    return loads_dat(Path(path).read_text(), source=str(path))


def write_fasta(records: list[tuple[str, str]], path: str | Path, width: int = 80) -> None:
    """Write ``(name, sequence)`` records as FASTA with line wrapping."""
    with open(path, "w") as fh:
        for name, seq in records:
            fh.write(f">{name}\n")
            for i in range(0, len(seq), width):
                fh.write(seq[i : i + width] + "\n")


def read_fasta(path: str | Path) -> list[tuple[str, str]]:
    """Parse FASTA into ``(name, sequence)`` records."""
    records: list[tuple[str, str]] = []
    name: str | None = None
    chunks: list[str] = []
    for line in Path(path).read_text().splitlines():
        if line.startswith(">"):
            if name is not None:
                records.append((name, "".join(chunks)))
            name = line[1:].strip()
            chunks = []
        elif line.strip():
            if name is None:
                raise DatasetError(f"{path}: sequence before first FASTA header")
            chunks.append(line.strip())
    if name is not None:
        records.append((name, "".join(chunks)))
    return records


def write_fastq(reads: ReadSet, path: str | Path) -> None:
    """Write a ReadSet as FASTQ (Sanger quality encoding)."""
    with open(path, "w") as fh:
        for r in reads:
            fh.write(f"@{r.name}\n{r.sequence}\n+\n{r.quality_string}\n")


def read_fastq(path: str | Path) -> ReadSet:
    """Parse FASTQ into a ReadSet."""
    lines = Path(path).read_text().splitlines()
    if len(lines) % 4 != 0:
        raise DatasetError(f"{path}: FASTQ line count not a multiple of 4")
    reads = ReadSet()
    for i in range(0, len(lines), 4):
        if not lines[i].startswith("@") or not lines[i + 2].startswith("+"):
            raise DatasetError(f"{path}: malformed FASTQ record at line {i + 1}")
        reads.append(Read.from_strings(lines[i][1:], lines[i + 1], lines[i + 3]))
    return reads
