"""Synthetic genome / read / local-assembly-scenario simulators.

The paper's datasets are extracts of intermediate MetaHipMer state: for
each contig, the reads that aligned to its ends. We do not have those
proprietary extracts, so this module fabricates statistically equivalent
inputs (the substitution is documented in DESIGN.md):

* a random "true" genomic region per contig,
* the contig itself as an interior slice of that region (so that real
  sequence extends beyond both contig ends),
* reads sampled to cover the contig ends and the flanking true sequence,
  with Illumina-like error/quality profiles.

A correct mer-walk over such inputs recovers (a prefix of) the true
flanking sequence, which gives the test suite a ground truth to assert
against and lets the dataset generator hit the paper's Table II
characteristics (reads per contig, read length, hash insertions,
extension lengths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError
from repro.genomics.contig import Contig
from repro.genomics.dna import ALPHABET_SIZE, random_sequence
from repro.genomics.reads import MAX_PHRED, Read


@dataclass(frozen=True)
class ErrorProfile:
    """Illumina-like sequencing error model.

    Attributes:
        error_rate: per-base substitution probability.
        hi_quality: phred score assigned to correct, confident bases.
        lo_quality: phred score assigned to error-prone bases. Errors are
            preferentially placed on low-quality bases, as in real data.
        lo_quality_fraction: fraction of bases flagged low-quality.
    """

    error_rate: float = 0.005
    hi_quality: int = 38
    lo_quality: int = 12
    lo_quality_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise SequenceError(f"error_rate must be in [0,1), got {self.error_rate}")
        if not 0 <= self.lo_quality <= self.hi_quality <= MAX_PHRED:
            raise SequenceError("require 0 <= lo_quality <= hi_quality <= MAX_PHRED")


PERFECT_READS = ErrorProfile(error_rate=0.0, lo_quality_fraction=0.0)


def simulate_genome(length: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random genome of ``length`` encoded bases."""
    return random_sequence(length, rng)


def sequence_read(
    genome: np.ndarray,
    start: int,
    length: int,
    rng: np.random.Generator,
    profile: ErrorProfile = ErrorProfile(),
    name: str = "read",
) -> Read:
    """Sample one read of ``length`` bases from ``genome`` at ``start``.

    Substitution errors flip a base to one of the three other bases and are
    placed preferentially at low-quality positions.
    """
    if start < 0 or start + length > len(genome):
        raise SequenceError(
            f"read window [{start},{start + length}) outside genome of {len(genome)}"
        )
    codes = genome[start : start + length].copy()
    quals = np.full(length, profile.hi_quality, dtype=np.uint8)
    if profile.lo_quality_fraction > 0.0:
        lo = rng.random(length) < profile.lo_quality_fraction
        quals[lo] = profile.lo_quality
    if profile.error_rate > 0.0:
        # Errors land on low-quality bases with 10x the rate of high-quality ones.
        lo_mask = quals == profile.lo_quality
        rate = np.where(lo_mask, min(1.0, 10 * profile.error_rate), profile.error_rate)
        err = rng.random(length) < rate
        if err.any():
            shift = rng.integers(1, ALPHABET_SIZE, size=int(err.sum()), dtype=np.uint8)
            codes[err] = (codes[err] + shift) % ALPHABET_SIZE
    return Read(name=name, codes=codes, quals=quals)


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameters for one synthetic local-assembly contig scenario.

    Attributes:
        contig_length: bases in the (un-extended) contig.
        flank_length: true sequence available beyond each contig end; the
            upper bound on any correct extension.
        read_length: bases per read.
        depth: target read coverage over each contig end region.
        seed_window: how far (in bases) from the contig end a read may
            start/end and still be assigned to that end.
    """

    contig_length: int = 500
    flank_length: int = 120
    read_length: int = 150
    depth: int = 8
    seed_window: int = 100


@dataclass
class ContigScenario:
    """A generated contig, its reads, and the ground-truth flanks."""

    contig: Contig
    true_left_flank: str
    true_right_flank: str
    region: np.ndarray


def simulate_contig_scenario(
    spec: ScenarioSpec,
    rng: np.random.Generator,
    profile: ErrorProfile = ErrorProfile(),
    name: str = "contig",
) -> ContigScenario:
    """Generate one contig + end-aligned reads with known true flanks.

    The underlying *region* is ``flank | contig | flank``. Reads are
    sampled so that both junction neighbourhoods are covered at roughly
    ``spec.depth`` coverage, mimicking the read-to-contig-end assignment
    MetaHipMer's alignment phase performs.
    """
    from repro.genomics.dna import decode  # local import to avoid cycle at module load

    region_len = spec.contig_length + 2 * spec.flank_length
    if spec.read_length > region_len:
        raise SequenceError("read_length exceeds scenario region length")
    region = simulate_genome(region_len, rng)
    contig_codes = region[spec.flank_length : spec.flank_length + spec.contig_length]
    contig = Contig(name=name, codes=contig_codes.copy())

    # Read start windows that overlap each contig end.
    ends = [
        (max(0, spec.flank_length - spec.seed_window),
         min(region_len - spec.read_length, spec.flank_length + spec.seed_window)),
        (max(0, spec.flank_length + spec.contig_length - spec.read_length - spec.seed_window),
         min(region_len - spec.read_length,
             spec.flank_length + spec.contig_length - spec.read_length + spec.seed_window)),
    ]
    idx = 0
    for lo, hi in ends:
        hi = max(hi, lo)
        span = hi - lo + spec.read_length
        n_reads = max(1, int(round(spec.depth * span / spec.read_length)))
        for _ in range(n_reads):
            start = int(rng.integers(lo, hi + 1))
            contig.reads.append(
                sequence_read(region, start, spec.read_length, rng, profile,
                              name=f"{name}/r{idx}")
            )
            idx += 1

    left = decode(region[: spec.flank_length])
    right = decode(region[spec.flank_length + spec.contig_length :])
    return ContigScenario(contig=contig, true_left_flank=left,
                          true_right_flank=right, region=region)


def simulate_batch(
    n_contigs: int,
    spec: ScenarioSpec,
    rng: np.random.Generator,
    profile: ErrorProfile = ErrorProfile(),
) -> list[ContigScenario]:
    """Generate ``n_contigs`` independent scenarios."""
    return [
        simulate_contig_scenario(spec, rng, profile, name=f"contig{i}")
        for i in range(n_contigs)
    ]
