"""Contigs and their extension records.

A *contig* is a contiguous assembled region of the genome produced by the
global de Bruijn graph phase of MetaHipMer. Local assembly extends each
contig on both ends using only the reads that aligned near those ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import SequenceError
from repro.genomics.dna import decode, encode
from repro.genomics.reads import ReadSet


class End(Enum):
    """Which end of a contig an extension applies to."""

    LEFT = "left"
    RIGHT = "right"


@dataclass
class ContigExtension:
    """Result of one mer-walk: the bases appended to one contig end.

    Attributes:
        end: which end was extended.
        bases: the appended bases (5'->3' in contig orientation).
        walk_state: terminal state of the walk ("end", "fork", "loop",
            "max_len", or "none" when no extension was possible).
        kmer_size: the k that produced this extension.
        steps: number of hash-table lookups performed by the walk.
    """

    end: End
    bases: str
    walk_state: str
    kmer_size: int
    steps: int = 0

    def __len__(self) -> int:
        return len(self.bases)


@dataclass
class Contig:
    """A contig plus the reads assigned to its ends.

    Attributes:
        name: contig identifier.
        codes: encoded contig bases.
        reads: reads aligned to this contig's ends (both ends pooled, as in
            the paper's datasets).
        left_extension / right_extension: filled in by the pipeline.
    """

    name: str
    codes: np.ndarray
    reads: ReadSet = field(default_factory=ReadSet)
    left_extension: ContigExtension | None = None
    right_extension: ContigExtension | None = None
    #: Which end each read aligned to (parallel to ``reads``). MetaHipMer's
    #: alignment phase assigns every read to one contig end; when absent,
    #: all reads serve both ends (fine for short test contigs).
    read_end_hints: list[End] | None = None

    def __post_init__(self) -> None:
        self.codes = encode(self.codes) if self.codes.dtype != np.uint8 else self.codes
        if len(self.codes) == 0:
            raise SequenceError(f"contig {self.name!r} is empty")

    @classmethod
    def from_string(cls, name: str, seq: str, reads: ReadSet | None = None) -> "Contig":
        return cls(name=name, codes=encode(seq), reads=reads or ReadSet())

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def sequence(self) -> str:
        return decode(self.codes)

    @property
    def depth(self) -> int:
        """Number of reads assigned to this contig (the binning key)."""
        return len(self.reads)

    def reads_for_end(self, end: End) -> ReadSet:
        """The reads aligned to ``end`` (all reads when no hints are set)."""
        if self.read_end_hints is None:
            return self.reads
        if len(self.read_end_hints) != len(self.reads):
            raise SequenceError(
                f"contig {self.name!r}: {len(self.read_end_hints)} end hints "
                f"for {len(self.reads)} reads"
            )
        return ReadSet([r for r, e in zip(self.reads, self.read_end_hints)
                        if e is end])

    def end_kmer(self, k: int, end: End) -> np.ndarray:
        """The seed k-mer for a walk from ``end`` (encoded, contig orientation)."""
        if k > len(self.codes):
            raise SequenceError(
                f"contig {self.name!r} shorter ({len(self.codes)}) than k={k}"
            )
        if end is End.RIGHT:
            return self.codes[-k:]
        return self.codes[:k]

    def extended_sequence(self) -> str:
        """Contig sequence with any accepted extensions spliced on."""
        left = self.left_extension.bases if self.left_extension else ""
        right = self.right_extension.bases if self.right_extension else ""
        return left + self.sequence + right

    def total_extension_length(self) -> int:
        return (len(self.left_extension) if self.left_extension else 0) + (
            len(self.right_extension) if self.right_extension else 0
        )
