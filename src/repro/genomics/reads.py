"""Sequencing reads with per-base phred quality scores.

The local-assembly kernel consumes, for each contig, the set of reads that
aligned to one of its ends. Each read carries a phred-scaled quality
string; the kernel splits extension votes into *high-quality* and
*low-quality* buckets using a quality threshold (MetaHipMer uses Q20).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SequenceError
from repro.genomics.dna import decode, encode

#: Phred threshold separating high-quality from low-quality base calls.
DEFAULT_QUAL_THRESHOLD = 20

#: Offset used when rendering qualities as FASTQ ASCII (Sanger encoding).
PHRED_ASCII_OFFSET = 33

#: Highest phred score we model (Illumina-style cap).
MAX_PHRED = 41


@dataclass
class Read:
    """A single sequencing read.

    Attributes:
        name: read identifier (free-form).
        codes: encoded bases, ``uint8`` values ``0..3``.
        quals: phred quality per base, ``uint8`` (same length as ``codes``).
    """

    name: str
    codes: np.ndarray
    quals: np.ndarray

    def __post_init__(self) -> None:
        self.codes = encode(self.codes) if self.codes.dtype != np.uint8 else self.codes
        self.quals = np.asarray(self.quals, dtype=np.uint8)
        if len(self.codes) != len(self.quals):
            raise SequenceError(
                f"read {self.name!r}: {len(self.codes)} bases but {len(self.quals)} quals"
            )

    @classmethod
    def from_strings(cls, name: str, seq: str, quals: str | np.ndarray | None = None) -> "Read":
        """Build a read from a base string and FASTQ-style quality string."""
        codes = encode(seq)
        if quals is None:
            q = np.full(len(codes), MAX_PHRED, dtype=np.uint8)
        elif isinstance(quals, str):
            raw = np.frombuffer(quals.encode("ascii"), dtype=np.uint8)
            if raw.size and (raw.min(initial=255) < PHRED_ASCII_OFFSET):
                raise SequenceError(f"read {name!r}: quality character below '!'")
            q = (raw - PHRED_ASCII_OFFSET).astype(np.uint8)
        else:
            q = np.asarray(quals, dtype=np.uint8)
        return cls(name=name, codes=codes, quals=q)

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def sequence(self) -> str:
        """The bases as an ``ACGT`` string."""
        return decode(self.codes)

    @property
    def quality_string(self) -> str:
        """FASTQ (Sanger) rendering of the quality scores."""
        return (self.quals + PHRED_ASCII_OFFSET).astype(np.uint8).tobytes().decode("ascii")

    def high_quality_mask(self, threshold: int = DEFAULT_QUAL_THRESHOLD) -> np.ndarray:
        """Boolean mask of bases whose phred score is >= ``threshold``."""
        return self.quals >= threshold


@dataclass
class ReadSet:
    """An ordered collection of reads, with bulk (vectorized) accessors.

    Bulk accessors return ragged data as flat arrays plus offsets, the
    layout the SIMT kernels consume directly (structure-of-arrays instead
    of per-read Python objects in the hot path).
    """

    reads: list[Read] = field(default_factory=list)

    def append(self, read: Read) -> None:
        self.reads.append(read)

    def __len__(self) -> int:
        return len(self.reads)

    def __iter__(self):
        return iter(self.reads)

    def __getitem__(self, i: int) -> Read:
        return self.reads[i]

    @property
    def total_bases(self) -> int:
        return sum(len(r) for r in self.reads)

    @property
    def mean_length(self) -> float:
        return self.total_bases / len(self.reads) if self.reads else 0.0

    def flatten(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate all reads into ``(codes, quals, offsets)``.

        ``offsets`` has ``len(self)+1`` entries; read ``i`` occupies
        ``codes[offsets[i]:offsets[i+1]]``.
        """
        lengths = np.fromiter((len(r) for r in self.reads), dtype=np.int64, count=len(self.reads))
        offsets = np.zeros(len(self.reads) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if self.reads:
            codes = np.concatenate([r.codes for r in self.reads])
            quals = np.concatenate([r.quals for r in self.reads])
        else:
            codes = np.empty(0, dtype=np.uint8)
            quals = np.empty(0, dtype=np.uint8)
        return codes, quals, offsets

    def kmer_count(self, k: int) -> int:
        """Total number of k-mers across all reads (reads shorter than k give 0)."""
        return sum(max(0, len(r) - k + 1) for r in self.reads)
