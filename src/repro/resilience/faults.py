"""Deterministic fault injection for the engine and the experiment suite.

A :class:`FaultPlan` is a seeded, declarative list of :class:`FaultSpec`
entries; a :class:`FaultInjector` executes the plan through two
mechanisms:

* **explicit hook points** — the SIMT engine calls
  :meth:`FaultInjector.begin_launch` / :meth:`FaultInjector.shape_batch`
  / :meth:`FaultInjector.degrade_result` around each launch, and
  :class:`~repro.analysis.experiments.ExperimentSuite` calls
  :meth:`FaultInjector.before_run` around each ``(device, k)`` run;
* **the EventBus subscriber mechanism** — the injector subscribes to the
  engine's bus and logs every :class:`LaunchStarted` /
  :class:`ContigDropped` / :class:`ContigRetried` it observes, so a test
  can attribute exactly which launches a fault hit and what degradation
  it caused.

All randomness (which bases a corruption flips) comes from one
``numpy`` generator seeded by the plan, so a plan replays identically
run after run — faults are reproducible test fixtures, not chaos.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import BackendLaunchError, ReproError


class InjectedCrashError(ReproError):
    """A deliberately injected *fatal* failure (not retryable).

    Distinct from :class:`~repro.errors.TransientError` so checkpoint /
    resume tests can kill a suite mid-run and assert that retries do
    *not* absorb the crash.
    """


class FaultKind(Enum):
    """The failure modes a :class:`FaultPlan` can inject."""

    #: Clamp chosen warps' hash-table capacities, forcing overflow.
    TABLE_PRESSURE = "table-pressure"
    #: Corrupt read extension bases feeding chosen launches' votes.
    READ_CORRUPTION = "read-corruption"
    #: Raise :class:`~repro.errors.BackendLaunchError` (transient) at launch.
    LAUNCH_FAILURE = "launch-failure"
    #: Zero / NaN the run's profile so the perf model sees degenerate input.
    DEGENERATE_PROFILE = "degenerate-profile"
    #: Abort an :class:`ExperimentSuite` run (fatal unless ``transient``).
    SUITE_CRASH = "suite-crash"
    #: Kill a serve wave mid-flight (:class:`InjectedCrashError`, as if
    #: the pool worker died — the supervisor bisects the blast radius).
    WORKER_CRASH = "worker-crash"
    #: Hang a serve wave past its deadline (the supervisor times out).
    WAVE_STALL = "wave-stall"
    #: Corrupt a job's checkpoint file on disk after it is written.
    CHECKPOINT_CORRUPTION = "checkpoint-corruption"
    #: Delay a checkpoint write (slow disk) by ``delay_s`` seconds.
    SLOW_DISK = "slow-disk"


#: Wave-scoped kinds consumed via :meth:`FaultInjector.wave_fault` /
#: :meth:`FaultInjector.begin_wave`.
WAVE_FAULT_KINDS = frozenset({FaultKind.WORKER_CRASH, FaultKind.WAVE_STALL})

#: Checkpoint-I/O kinds consumed via :meth:`FaultInjector.checkpoint_fault`.
CHECKPOINT_FAULT_KINDS = frozenset({
    FaultKind.CHECKPOINT_CORRUPTION, FaultKind.SLOW_DISK})


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        kind: which failure mode to inject.
        launch: global launch ordinal (0-based, counted across the
            kernel run) the fault targets; ``None`` matches the next
            opportunity. Used by the engine-level kinds.
        run: suite run ordinal (0-based, counted across
            ``ExperimentSuite`` executions) for :attr:`FaultKind.SUITE_CRASH`;
            ``None`` matches the next run.
        device: restrict a suite fault to one device name (optional).
        k: restrict a suite fault to one k (optional).
        warps: warp indices whose tables get clamped (TABLE_PRESSURE).
        capacity: clamped slot count per targeted warp (TABLE_PRESSURE).
        fraction: fraction of insertion bases to corrupt (READ_CORRUPTION).
        mode: degenerate-profile flavor: ``"zero-intops"`` (an empty
            runtime: the timing model refuses) or ``"nan-bytes"`` (NaN
            intensity: the roofline refuses).
        transient: SUITE_CRASH raises a retryable
            :class:`~repro.errors.BackendLaunchError` instead of the
            fatal :class:`InjectedCrashError`.
        times: how many times the fault may fire before it is spent.
        fingerprint: restrict a serve-scoped fault (WORKER_CRASH,
            WAVE_STALL, CHECKPOINT_CORRUPTION, SLOW_DISK, or a
            wave-level LAUNCH_FAILURE) to waves containing this job
            fingerprint; ``None`` matches any wave. Fingerprint scoping
            — unlike launch ordinals — survives coalescing, bisection
            and re-dispatch, so chaos runs stay replayable.
        delay_s: stall / slow-disk duration in seconds (WAVE_STALL,
            SLOW_DISK).
    """

    kind: FaultKind
    launch: int | None = None
    run: int | None = None
    device: str | None = None
    k: int | None = None
    warps: tuple[int, ...] = (0,)
    capacity: int = 2
    fraction: float = 0.05
    mode: str = "zero-intops"
    transient: bool = False
    times: int = 1
    fingerprint: str | None = None
    delay_s: float = 0.25


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of faults to inject."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault (or observed consequence), for attribution."""

    kind: FaultKind
    site: str                    #: hook that fired ("launch", "run", ...)
    detail: dict = field(default_factory=dict)


class FaultInjector:
    """Executes a :class:`FaultPlan` against the engine and the suite.

    Attach the same injector instance to every kernel of a suite (the
    suite does this when ``ExperimentConfig.fault_injector`` is set) so
    launch and run ordinals count globally across the whole workload.
    """

    _handled: tuple | None = None

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self._remaining = [spec.times for spec in plan.faults]
        self.fired: list[FaultRecord] = []
        self.observed: list[FaultRecord] = []
        self._launch_ordinal = 0
        self._run_ordinal = 0

    # ------------------------------------------------------------------
    # EventBus subscriber mechanism (observation / attribution)

    @property
    def handled_events(self) -> tuple:
        # resolved lazily: faults.py must not import the engine at module
        # scope (the engine imports resilience.policy during its own init)
        cls = type(self)
        if cls._handled is None:
            from repro.kernels.engine.events import (
                ContigDropped,
                ContigRetried,
                LaunchStarted,
            )
            cls._handled = (LaunchStarted, ContigDropped, ContigRetried)
        return cls._handled

    def handle(self, event, bus) -> None:
        launch_started, dropped, retried = self.handled_events
        if isinstance(event, launch_started):
            self.observed.append(FaultRecord(
                FaultKind.TABLE_PRESSURE, "observe-launch",
                {"k": event.k, "n_warps": event.n_warps}))
        elif isinstance(event, dropped):
            self.observed.append(FaultRecord(
                FaultKind.TABLE_PRESSURE, "observe-drop",
                {"contig_id": event.contig_id, "k": event.k}))
        elif isinstance(event, retried):
            self.observed.append(FaultRecord(
                FaultKind.TABLE_PRESSURE, "observe-retry",
                {"contig_id": event.contig_id, "k": event.k,
                 "attempt": event.attempt}))

    # ------------------------------------------------------------------
    # matching / bookkeeping

    def _take(self, kind: FaultKind, *, launch: int | None = None,
              device: str | None = None, k: int | None = None,
              run: int | None = None,
              fingerprints: tuple[str, ...] | list[str] | None = None,
              ) -> FaultSpec | None:
        """Consume one charge of the first matching live spec, if any."""
        for i, spec in enumerate(self.plan.faults):
            if spec.kind is not kind or self._remaining[i] <= 0:
                continue
            if launch is not None and spec.launch is not None \
                    and spec.launch != launch:
                continue
            if run is not None and spec.run is not None and spec.run != run:
                continue
            if spec.device is not None and device is not None \
                    and spec.device != device:
                continue
            if spec.k is not None and k is not None and spec.k != k:
                continue
            if spec.fingerprint is not None and (
                    fingerprints is None
                    or spec.fingerprint not in fingerprints):
                continue
            self._remaining[i] -= 1
            return spec
        return None

    def counts(self) -> dict[str, int]:
        """Fired-fault tally by kind value (for smoke checks)."""
        out: dict[str, int] = {}
        for rec in self.fired:
            out[rec.kind.value] = out.get(rec.kind.value, 0) + 1
        return out

    # ------------------------------------------------------------------
    # engine hook points

    def begin_launch(self) -> int:
        """Called by the engine before each planned launch.

        Returns the launch ordinal; raises
        :class:`~repro.errors.BackendLaunchError` when a
        :attr:`FaultKind.LAUNCH_FAILURE` spec targets this launch.
        """
        ordinal = self._launch_ordinal
        self._launch_ordinal += 1
        spec = self._take(FaultKind.LAUNCH_FAILURE, launch=ordinal)
        if spec is not None:
            self.fired.append(FaultRecord(spec.kind, "launch",
                                          {"launch": ordinal}))
            raise BackendLaunchError(
                f"injected transient launch failure (launch {ordinal})")
        return ordinal

    def shape_batch(self, batch, ordinal: int) -> None:
        """Apply capacity pressure / read corruption to a prepared batch.

        Mutates the batch in place: ``capacities`` are clamped for
        targeted warps (TABLE_PRESSURE) and a seeded sample of insertion
        extension bases is rewritten to a different base
        (READ_CORRUPTION).
        """
        spec = self._take(FaultKind.TABLE_PRESSURE, launch=ordinal)
        if spec is not None:
            warps = [w for w in spec.warps if w < batch.n_warps]
            if warps:
                batch.capacities[warps] = max(1, spec.capacity)
            self.fired.append(FaultRecord(spec.kind, "batch", {
                "launch": ordinal, "warps": tuple(warps),
                "capacity": spec.capacity}))
        spec = self._take(FaultKind.READ_CORRUPTION, launch=ordinal)
        if spec is not None:
            n = batch.ins_ext.size
            hits = 0
            if n:
                hits = max(1, int(round(spec.fraction * n)))
                idx = self.rng.choice(n, size=min(hits, n), replace=False)
                # rotate each base by 1..3 so every hit becomes a
                # different base — a guaranteed-visible corruption
                shift = self.rng.integers(1, 4, size=idx.size,
                                          dtype=np.uint8)
                batch.ins_ext[idx] = (batch.ins_ext[idx] + shift) % 4
            self.fired.append(FaultRecord(spec.kind, "batch", {
                "launch": ordinal, "corrupted": int(hits)}))

    def degrade_result(self, result) -> None:
        """Inject degenerate perf-model inputs into a finished run."""
        while True:
            spec = self._take(FaultKind.DEGENERATE_PROFILE)
            if spec is None:
                break
            if spec.mode == "zero-intops":
                result.profile.intops = 0
            elif spec.mode == "nan-bytes":
                result.profile.hbm_bytes = float("nan")
            else:
                raise ReproError(
                    f"unknown degenerate-profile mode {spec.mode!r}")
            self.fired.append(FaultRecord(spec.kind, "result",
                                          {"mode": spec.mode}))

    # ------------------------------------------------------------------
    # suite hook point

    def before_run(self, device_name: str, k: int) -> None:
        """Called by the suite before each ``(device, k)`` execution.

        Raises :class:`InjectedCrashError` (fatal) or
        :class:`~repro.errors.BackendLaunchError` (transient, per the
        spec) when a :attr:`FaultKind.SUITE_CRASH` targets this run.
        """
        ordinal = self._run_ordinal
        self._run_ordinal += 1
        spec = self._take(FaultKind.SUITE_CRASH, run=ordinal,
                          device=device_name, k=k)
        if spec is None:
            return
        detail = {"run": ordinal, "device": device_name, "k": k}
        self.fired.append(FaultRecord(spec.kind, "run", detail))
        if spec.transient:
            raise BackendLaunchError(
                f"injected transient suite failure at {device_name}/k={k}")
        raise InjectedCrashError(
            f"injected suite crash at {device_name}/k={k} (run {ordinal})")

    # ------------------------------------------------------------------
    # serve hook points (wave supervision / checkpoint I/O)

    def wave_fault(self, fingerprints: list[str]) -> FaultSpec | None:
        """Consume one wave-scoped fault matching this wave's jobs.

        Called by the serve-side :class:`WaveSupervisor` before a wave is
        dispatched. Returns the spec (``WORKER_CRASH`` or ``WAVE_STALL``)
        so the *caller* applies the effect — the injector object lives in
        the service process, where its ``times`` accounting is shared
        across retries and bisection halves; pool workers cannot share
        that state.
        """
        for kind in (FaultKind.WORKER_CRASH, FaultKind.WAVE_STALL):
            spec = self._take(kind, fingerprints=fingerprints)
            if spec is not None:
                self.fired.append(FaultRecord(spec.kind, "wave", {
                    "fingerprints": tuple(fingerprints),
                    "fingerprint": spec.fingerprint,
                    "delay_s": spec.delay_s}))
                return spec
        return None

    def begin_wave(self, fingerprints: list[str]) -> None:
        """Engine hook: called by ``run_schedule_coalesced`` per wave.

        Applies wave-scoped faults inline: ``WORKER_CRASH`` raises
        :class:`InjectedCrashError`, ``WAVE_STALL`` sleeps ``delay_s``
        (simulating a hung wave — the caller's deadline may fire), and a
        fingerprint-matched ``LAUNCH_FAILURE`` raises the transient
        :class:`~repro.errors.BackendLaunchError`.
        """
        spec = self.wave_fault(list(fingerprints))
        if spec is not None:
            if spec.kind is FaultKind.WORKER_CRASH:
                raise InjectedCrashError(
                    "injected worker crash mid-wave "
                    f"({len(fingerprints)} fused jobs)")
            time.sleep(spec.delay_s)
        spec = self._take(FaultKind.LAUNCH_FAILURE,
                          fingerprints=list(fingerprints))
        if spec is not None:
            self.fired.append(FaultRecord(spec.kind, "wave", {
                "fingerprints": tuple(fingerprints)}))
            raise BackendLaunchError(
                "injected transient wave launch failure "
                f"({len(fingerprints)} fused jobs)")

    def checkpoint_fault(self, fingerprint: str) -> FaultSpec | None:
        """Consume one checkpoint-I/O fault scoped to this job, if any.

        Returns the spec (``CHECKPOINT_CORRUPTION`` or ``SLOW_DISK``)
        for the caller to apply — corruption is applied by the service
        *after* the store's atomic write, modeling bit rot rather than a
        torn write (torn writes are already impossible by rename).
        """
        for kind in (FaultKind.CHECKPOINT_CORRUPTION, FaultKind.SLOW_DISK):
            spec = self._take(kind, fingerprints=(fingerprint,))
            if spec is not None:
                self.fired.append(FaultRecord(spec.kind, "checkpoint", {
                    "fingerprint": fingerprint, "delay_s": spec.delay_s}))
                return spec
        return None


def corrupt_file(path) -> None:
    """Deterministically corrupt a file in place (chaos helper).

    Truncates to half length and appends garbage, so the result is both
    invalid JSON and CRC-mismatched — exercising quarantine, not parsing
    luck.
    """
    from pathlib import Path

    p = Path(path)
    data = p.read_bytes()
    p.write_bytes(data[: len(data) // 2] + b"\x00corrupt")
