"""Resilience: fault injection, graceful degradation, checkpoint/resume.

The paper's GPU kernel never aborts on a full per-contig hash table — it
prints ``*hashtable full*`` and drops the contig, because at MetaHipMer
scale one contig must never kill a batch of thousands. This package
makes that class of behavior explicit and testable:

* :class:`OverflowPolicy` — what the engine does on table overflow
  (raise / drop-contig / grow-retry), wired through
  :class:`~repro.kernels.engine.simt.LocalAssemblyKernel` and the scalar
  backend.
* :class:`FaultPlan` / :class:`FaultInjector` — seeded, deterministic
  injection of capacity pressure, read corruption, transient launch
  failures, degenerate perf-model inputs, and suite crashes.
* :class:`CheckpointStore` — per-``(device, k)`` persistence so
  :meth:`~repro.analysis.experiments.ExperimentSuite.run_all` resumes
  from a partial run.
* :func:`retry_transient` — bounded retry-with-backoff that re-attempts
  only the :class:`~repro.errors.TransientError` branch.
"""

from repro.resilience.policy import (
    DEFAULT_GROW_FACTOR,
    DEFAULT_MAX_GROW_ATTEMPTS,
    OverflowPolicy,
)
from repro.resilience.retry import (
    DEFAULT_BACKOFF,
    DEFAULT_JITTER,
    DEFAULT_RETRIES,
    backoff_delay,
    retry_transient,
)
from repro.resilience.faults import (
    CHECKPOINT_FAULT_KINDS,
    WAVE_FAULT_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRecord,
    FaultSpec,
    InjectedCrashError,
    corrupt_file,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    payload_crc,
    profile_from_dict,
    profile_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "CHECKPOINT_FAULT_KINDS",
    "CHECKPOINT_FORMAT",
    "CheckpointStore",
    "DEFAULT_BACKOFF",
    "DEFAULT_GROW_FACTOR",
    "DEFAULT_JITTER",
    "DEFAULT_MAX_GROW_ATTEMPTS",
    "DEFAULT_RETRIES",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "InjectedCrashError",
    "OverflowPolicy",
    "WAVE_FAULT_KINDS",
    "backoff_delay",
    "corrupt_file",
    "payload_crc",
    "profile_from_dict",
    "profile_to_dict",
    "result_from_dict",
    "result_to_dict",
    "retry_transient",
]
