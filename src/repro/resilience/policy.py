"""Overflow semantics: what a kernel does when a per-contig table fills.

The paper's GPU kernel prints ``*hashtable full*`` (Appendix A) and drops
the contig — at MetaHipMer scale losing one contig must never kill a
batch of thousands. The reproduction raises by default (so sizing bugs
stay loud) but can opt into the paper's semantics, or into a retry that
re-runs only the overflowed contigs with geometrically grown tables.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import KernelError

#: Capacity multiplier applied per grow-retry attempt.
DEFAULT_GROW_FACTOR = 2.0

#: Retry-attempt cap for :attr:`OverflowPolicy.GROW_RETRY`.
DEFAULT_MAX_GROW_ATTEMPTS = 4


class OverflowPolicy(Enum):
    """What the engine does when a per-contig hash table overflows.

    * ``RAISE`` — propagate :class:`~repro.errors.HashTableFullError`
      (enriched with contig/k/capacity context). The default: a sizing
      bug aborts the run loudly.
    * ``DROP_CONTIG`` — the paper's ``*hashtable full*`` semantics: the
      overflowing contig is recorded as degraded (a
      :class:`~repro.kernels.engine.events.ContigDropped` event, an
      empty extension) and the wave continues for every other warp.
    * ``GROW_RETRY`` — re-run only the overflowed contigs with
      geometrically grown table capacity (capped attempts); functional
      output is byte-identical to a run whose tables were sized large
      enough from the start, because per-warp tables are independent
      and vote contents do not depend on capacity.
    """

    RAISE = "raise"
    DROP_CONTIG = "drop-contig"
    GROW_RETRY = "grow-retry"

    @classmethod
    def parse(cls, value: "OverflowPolicy | str") -> "OverflowPolicy":
        """Coerce a policy or its CLI spelling to an :class:`OverflowPolicy`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise KernelError(
                f"unknown overflow policy {value!r}; expected one of {options}"
            ) from None
