"""Bounded retry-with-backoff for transient failures.

Only :class:`~repro.errors.TransientError` subclasses are retried —
every other exception (including the rest of the
:class:`~repro.errors.ReproError` hierarchy) is fatal and propagates on
first occurrence. The sleeper is injectable so tests run at full speed.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from repro.errors import TransientError

T = TypeVar("T")

#: Default retry budget (attempts beyond the first).
DEFAULT_RETRIES = 2

#: Default base backoff in seconds (doubles per attempt).
DEFAULT_BACKOFF = 0.05


def retry_transient(
    fn: Callable[[], T],
    *,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, TransientError], None] | None = None,
) -> T:
    """Call ``fn``, retrying up to ``retries`` times on transient errors.

    Backoff grows geometrically (``backoff * 2**attempt`` seconds before
    re-attempt ``attempt``). ``on_retry(attempt, exc)`` is invoked before
    each sleep, for logging. The final transient failure — and any
    non-transient exception — propagates to the caller.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    attempt = 0
    while True:
        try:
            return fn()
        except TransientError as exc:
            if attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            if backoff > 0:
                sleep(backoff * (2 ** attempt))
            attempt += 1
