"""Bounded retry-with-backoff for transient failures.

Only :class:`~repro.errors.TransientError` subclasses are retried —
every other exception (including the rest of the
:class:`~repro.errors.ReproError` hierarchy) is fatal and propagates on
first occurrence. The sleeper is injectable so tests run at full speed.

:func:`backoff_delay` is the shared schedule used both here and by the
serve-side :class:`~repro.serve.supervisor.WaveSupervisor`: geometric
growth with optional seeded jitter, so coordinated retry storms
(every wave of a failed megabatch re-attempting in lockstep) decorrelate
while the schedule stays replayable from the seed.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

import numpy as np

from repro.errors import TransientError

T = TypeVar("T")

#: Default retry budget (attempts beyond the first).
DEFAULT_RETRIES = 2

#: Default base backoff in seconds (doubles per attempt).
DEFAULT_BACKOFF = 0.05

#: Default jitter fraction applied by the serve supervisor (+-25%).
DEFAULT_JITTER = 0.25


def backoff_delay(
    attempt: int,
    *,
    backoff: float = DEFAULT_BACKOFF,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Delay in seconds before re-attempt ``attempt`` (0-based).

    The base schedule is geometric (``backoff * 2**attempt``). When
    ``jitter > 0`` the delay is scaled by a factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` using the caller's *seeded* generator —
    an explicit ``rng`` is required so jittered schedules stay
    deterministic (matching the repo-wide seeded-randomness rule).
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    delay = backoff * (2 ** attempt)
    if jitter > 0.0:
        if rng is None:
            raise ValueError("jitter requires a seeded numpy Generator")
        delay *= 1.0 + jitter * float(rng.uniform(-1.0, 1.0))
    return max(0.0, delay)


def retry_transient(
    fn: Callable[[], T],
    *,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, TransientError], None] | None = None,
) -> T:
    """Call ``fn``, retrying up to ``retries`` times on transient errors.

    Backoff follows :func:`backoff_delay` (geometric, optionally
    jittered by a seeded ``rng``). ``on_retry(attempt, exc)`` is invoked
    before each sleep, for logging. The final transient failure — and
    any non-transient exception — propagates to the caller.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    attempt = 0
    while True:
        try:
            return fn()
        except TransientError as exc:
            if attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            if backoff > 0:
                sleep(backoff_delay(attempt, backoff=backoff,
                                    jitter=jitter, rng=rng))
            attempt += 1
