"""Checkpoint persistence for experiment runs.

A :class:`CheckpointStore` writes one JSON file per completed
``(device, k)`` run — the functional :class:`KernelRunResult` plus the
extrapolated full-scale :class:`KernelProfile` — so a Table II-scale
suite that dies mid-flight resumes from its last completed run instead
of replaying tens of millions of trace accesses from zero.

Checkpoints carry the suite configuration fingerprint (scale, seed,
policy, ...) that produced them; loading against a different
configuration raises :class:`~repro.errors.CheckpointError` rather than
silently mixing incompatible records.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib
from pathlib import Path

from repro.core.extension import WalkState
from repro.errors import CheckpointError
from repro.kernels.engine.backend import KernelRunResult
from repro.simt.counters import KernelProfile
from repro.simt.device import DeviceSpec

#: Bumped when the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT = 1


def payload_crc(payload: dict) -> str:
    """CRC32 (hex8) over the canonical JSON of ``payload`` minus ``crc``.

    Stored alongside the meta block so silent on-disk corruption —
    bit rot, torn copies, chaos-injected damage — is detected at load
    time even when the damaged bytes still parse as JSON.
    """
    body = json.dumps({k: v for k, v in payload.items() if k != "crc"},
                      sort_keys=True).encode("utf-8")
    return f"{zlib.crc32(body) & 0xFFFFFFFF:08x}"


def profile_to_dict(profile: KernelProfile) -> dict:
    """Serialize a profile to plain JSON-compatible types."""
    return dataclasses.asdict(profile)


def profile_from_dict(data: dict) -> KernelProfile:
    """Rebuild a profile; unknown fields mean a format drift."""
    try:
        return KernelProfile(**data)
    except TypeError as exc:
        raise CheckpointError(f"unreadable profile payload: {exc}") from None


def _ends_to_lists(ends: list[tuple[str, WalkState]]) -> list[list]:
    return [[bases, state.value] for bases, state in ends]


def _ends_from_lists(data: list) -> list[tuple[str, WalkState]]:
    try:
        return [(bases, WalkState(state)) for bases, state in data]
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"unreadable extension payload: {exc}") from None


def result_to_dict(result: KernelRunResult) -> dict:
    """Serialize a run result (device stored by name)."""
    return {
        "device": result.device.name if result.device is not None else None,
        "k": result.k,
        "profile": profile_to_dict(result.profile),
        "right": _ends_to_lists(result.right),
        "left": _ends_to_lists(result.left),
        "degraded": list(result.degraded),
        "retried": list(result.retried),
    }


def result_from_dict(data: dict, device: DeviceSpec | None) -> KernelRunResult:
    """Rebuild a run result against the caller's device object."""
    stored = data.get("device")
    if device is not None and stored is not None and stored != device.name:
        raise CheckpointError(
            f"checkpoint device {stored!r} does not match {device.name!r}")
    return KernelRunResult(
        device=device,
        k=int(data["k"]),
        profile=profile_from_dict(data["profile"]),
        right=_ends_from_lists(data["right"]),
        left=_ends_from_lists(data["left"]),
        degraded=[int(c) for c in data.get("degraded", [])],
        retried=[int(c) for c in data.get("retried", [])],
    )


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0); unprobeable pids count dead."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except (OverflowError, ValueError, OSError):
        return False
    return True


def _tmp_owner_pid(path: Path) -> int | None:
    """The writer pid encoded in a ``<name>.json.<pid>.tmp`` scratch file."""
    parts = path.name.split(".")
    if len(parts) < 3:
        return None
    try:
        return int(parts[-2])
    except ValueError:
        return None


class CheckpointStore:
    """One JSON checkpoint per completed ``(device, k)`` run.

    Safe for concurrent writers: each process stages into its own
    ``<checkpoint>.json.<pid>.tmp`` scratch file, fsyncs, and atomically
    renames over the final path, so readers only ever observe complete
    checkpoints and two processes saving the same run never interleave
    bytes. Scratch files left by crashed writers are swept on
    construction (live writers — pid still running — are left alone).

    Args:
        directory: checkpoint directory (created if missing).
        meta: configuration fingerprint of the producing suite; a loaded
            checkpoint whose fingerprint differs is rejected with
            :class:`~repro.errors.CheckpointError`.
    """

    def __init__(self, directory: str | Path,
                 meta: dict | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.meta = dict(meta or {})
        self.quarantined: list[Path] = []
        self.sweep_stale_tmps()

    def path_for(self, device_name: str, k: int) -> Path:
        return self.directory / f"{device_name}_k{k}.json"

    def sweep_stale_tmps(self) -> list[Path]:
        """Remove scratch files whose writer is gone; returns what was swept."""
        swept: list[Path] = []
        for tmp in self.directory.glob("*.tmp"):
            pid = _tmp_owner_pid(tmp)
            if pid is not None and _pid_alive(pid):
                continue  # an in-flight writer owns this one
            try:
                tmp.unlink()
                swept.append(tmp)
            except OSError:
                pass  # raced with the writer's own rename/cleanup
        return swept

    def _write_atomic(self, path: Path, payload: dict) -> Path:
        """Stage ``payload`` in a per-pid scratch file, fsync, rename.

        On any failure the scratch file is removed so aborted saves leave
        nothing behind.
        """
        tmp = self.directory / f"{path.name}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(payload) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            tmp.replace(path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    def _framed(self, name: str, k: int, sections: dict) -> dict:
        """Wrap ``sections`` in the validated checkpoint frame (format,
        configuration fingerprint, CRC)."""
        payload = {
            "format": CHECKPOINT_FORMAT,
            "meta": self.meta,
            "device": name,
            "k": k,
            **sections,
        }
        payload["crc"] = payload_crc(payload)
        return payload

    def save(self, device_name: str, k: int, result: KernelRunResult,
             full_profile: KernelProfile) -> Path:
        """Persist one completed run (atomically via rename)."""
        payload = self._framed(device_name, k, {
            "result": result_to_dict(result),
            "full_profile": profile_to_dict(full_profile),
        })
        return self._write_atomic(self.path_for(device_name, k), payload)

    def save_payload(self, name: str, k: int, data: dict) -> Path:
        """Persist an arbitrary JSON-compatible payload under ``name``.

        The generic sibling of :meth:`save`: the same atomic write, CRC,
        format version and configuration fingerprint, but the body is a
        caller-defined dict instead of a kernel run. The assembler
        pipeline (:mod:`repro.metahipmer.pipeline`) checkpoints each
        stage's output this way.
        """
        payload = self._framed(name, k, {"data": data})
        return self._write_atomic(self.path_for(name, k), payload)

    def quarantine(self, path: Path, reason: str) -> Path:
        """Move a damaged checkpoint aside and treat it as missing.

        Corruption is an *environmental* failure (bit rot, torn copy, a
        chaos fault), not a caller mistake — so instead of raising
        mid-resume the store renames the file to ``<name>.quarantine``
        (preserving the evidence for post-mortem) and the run simply
        recomputes. Configuration problems (format drift, meta
        mismatch) still raise: silently recomputing those would mask a
        real operator error.
        """
        qpath = path.with_suffix(".quarantine")
        try:
            path.replace(qpath)
        except OSError:
            qpath = path  # raced with another loader's quarantine
        self.quarantined.append(qpath)
        return qpath

    def load(self, device: DeviceSpec,
             k: int) -> tuple[KernelRunResult, KernelProfile] | None:
        """Load one run, or ``None`` when no checkpoint exists.

        Corrupt / truncated / CRC-mismatched files are quarantined (see
        :meth:`quarantine`) and reported as missing; format mismatches
        and configuration-fingerprint mismatches raise
        :class:`~repro.errors.CheckpointError`.
        """
        return self.load_named(device.name, k, device)

    def load_named(self, name: str, k: int,
                   device: DeviceSpec | None = None,
                   ) -> tuple[KernelRunResult, KernelProfile] | None:
        """Load a checkpoint saved under an arbitrary ``name`` slot.

        :meth:`save` keys checkpoints by a caller-chosen name string —
        historically always a device name, but the assembly service
        (:mod:`repro.serve`) keys per-job checkpoints by the job's
        request fingerprint instead. ``device`` rebuilds the result's
        device spec and may be ``None`` when the caller only needs the
        counters.
        """
        payload = self._read_validated(self.path_for(name, k))
        if payload is None:
            return None
        try:
            result = result_from_dict(payload["result"], device)
            full = profile_from_dict(payload["full_profile"])
        except KeyError:
            self.quarantine(self.path_for(name, k), "missing payload sections")
            return None
        return result, full

    def load_payload(self, name: str, k: int) -> dict | None:
        """Load a payload saved by :meth:`save_payload`, or ``None``.

        The same validation contract as :meth:`load`: corrupt files are
        quarantined and reported missing (the caller recomputes); format
        or configuration-fingerprint mismatches raise
        :class:`~repro.errors.CheckpointError`.
        """
        payload = self._read_validated(self.path_for(name, k))
        if payload is None:
            return None
        data = payload.get("data")
        if not isinstance(data, dict):
            self.quarantine(self.path_for(name, k), "missing payload sections")
            return None
        return data

    def _read_validated(self, path: Path) -> dict | None:
        """Read + frame-validate one checkpoint file.

        Environmental damage (unparseable bytes, CRC mismatch) is
        quarantined and returns ``None``; configuration problems (format
        drift, meta mismatch) raise :class:`CheckpointError`.
        """
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None  # raced with a concurrent quarantine/clear
        except json.JSONDecodeError:
            self.quarantine(path, "unparseable JSON")
            return None
        if not isinstance(payload, dict):
            self.quarantine(path, "payload is not an object")
            return None
        stored_crc = payload.get("crc")
        if stored_crc is not None and stored_crc != payload_crc(payload):
            self.quarantine(path, "CRC mismatch")
            return None
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format {payload.get('format')!r}, "
                f"expected {CHECKPOINT_FORMAT}")
        if payload.get("meta") != self.meta:
            raise CheckpointError(
                f"checkpoint {path} was written by a different configuration "
                f"({payload.get('meta')} != {self.meta}); use a fresh "
                "checkpoint directory or matching settings")
        return payload

    def completed(self) -> set[tuple[str, int]]:
        """The ``(device_name, k)`` pairs with a *usable* checkpoint on disk.

        Applies the same format-version and configuration-fingerprint
        validation as :meth:`load`: a parseable file written by a
        different format or configuration does not count as done (it
        would be rejected at load time anyway).
        """
        done: set[tuple[str, int]] = set()
        for path in self.directory.glob("*.json"):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # unreadable files simply don't count as done
            if not isinstance(payload, dict):
                continue
            crc = payload.get("crc")
            if crc is not None and crc != payload_crc(payload):
                continue  # damaged on disk; load_named would quarantine it
            if payload.get("format") != CHECKPOINT_FORMAT:
                continue
            if payload.get("meta") != self.meta:
                continue
            try:
                done.add((str(payload["device"]), int(payload["k"])))
            except (KeyError, TypeError, ValueError):
                continue
        return done

    def clear(self) -> None:
        """Delete every checkpoint in the directory."""
        for path in self.directory.glob("*.json"):
            path.unlink()
