"""Synthetic regeneration of the paper's datasets (Table II shapes).

For each contig we draw a read count from an over-dispersed (gamma-
Poisson) distribution — real contigs vary widely in how many reads align
to their ends, which is exactly why the GPU workflow bins by read count —
then lay the reads over the contig-end junctions of a hidden true region
so that a correct mer-walk can extend each end by roughly the Table II
average extension length.

``scale`` shrinks the *number of contigs* (and with it reads/insertions
proportionally) while preserving every per-contig property, so scaled
runs exercise identical per-warp behaviour at a fraction of the cost; the
benches print the scale they used.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.characteristics import TABLE_II, DatasetCharacteristics
from repro.errors import DatasetError
from repro.genomics.contig import Contig, End
from repro.genomics.reads import ReadSet
from repro.genomics.simulate import ErrorProfile, sequence_read, simulate_genome

#: Default sequencing noise for generated datasets (Illumina-like).
DEFAULT_PROFILE = ErrorProfile(error_rate=0.001, lo_quality_fraction=0.03)

#: How much true flank to provide beyond the expected extension length.
FLANK_MARGIN = 1.35

#: Dispersion of the per-contig read-count distribution (gamma shape).
DEPTH_DISPERSION = 6.0

#: Per-k multiplier applied to the Table II mean when drawing extension
#: targets. Walks lose length to coverage ends, forks and missing seeds;
#: larger k (longer chains, depth closer to 1) loses more, so its draws
#: aim higher. Fitted so the *measured* average extension matches Table II.
TARGET_EXT_MULTIPLIER = {21: 1.0, 33: 1.05, 55: 1.35, 77: 2.2}


def _draw_read_counts(n_contigs: int, mean: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Over-dispersed per-contig read counts with the requested mean."""
    lam = rng.gamma(shape=DEPTH_DISPERSION, scale=mean / DEPTH_DISPERSION,
                    size=n_contigs)
    counts = np.maximum(rng.poisson(lam), 1)
    # renormalize to the requested total: clamping at >=1 inflates the
    # mean, and small samples can land off-target in either direction
    target_total = round(mean * n_contigs)
    excess = int(counts.sum()) - target_total
    while excess > 0:
        reducible = np.nonzero(counts > 1)[0]
        if reducible.size == 0:
            break
        take = min(excess, reducible.size)
        counts[rng.choice(reducible, size=take, replace=False)] -= 1
        excess -= take
    while excess < 0:
        take = min(-excess, n_contigs)
        counts[rng.choice(n_contigs, size=take, replace=False)] += 1
        excess += take
    return counts


def generate_paper_dataset(
    k: int,
    scale: float = 1.0,
    seed: int = 2024,
    profile: ErrorProfile = DEFAULT_PROFILE,
    targets: DatasetCharacteristics | None = None,
) -> list[Contig]:
    """Generate a dataset matching (a scaled) Table II row for ``k``.

    Args:
        k: one of the production k-mer sizes (21, 33, 55, 77), or any k if
            explicit ``targets`` are given.
        scale: fraction of the paper's contig count to generate.
        seed: RNG seed (datasets are fully reproducible).
        profile: sequencing error model.
        targets: override the Table II row (used by tests and ablations).

    Returns:
        Contigs with end-assigned reads, ready for local assembly.
    """
    if targets is None:
        if k not in TABLE_II:
            raise DatasetError(
                f"k={k} has no Table II row; pass explicit targets"
            )
        targets = TABLE_II[k]
    t = targets.scaled(scale)
    rng = np.random.default_rng(seed + k)

    read_len_mean = t.average_read_length
    reads_per_contig = _draw_read_counts(t.total_contigs, t.reads_per_contig, rng)
    # per-end extension target; Table II's average is per contig (both ends)
    per_end_ext = t.average_extn_length / 2.0
    rl0 = int(read_len_mean)
    max_ext = max(int(per_end_ext * 3), rl0)
    flank = max_ext + k + 8
    # contigs are longer than a read so the two end regions are disjoint
    # and every read serves exactly one end (as MetaHipMer's alignment
    # assignment guarantees)
    contig_len = rl0 + 60

    contigs: list[Contig] = []
    for i in range(t.total_contigs):
        region_len = contig_len + 2 * flank
        region = simulate_genome(region_len, rng)
        contig = Contig(name=f"contig{i}",
                        codes=region[flank : flank + contig_len].copy())
        n_reads = int(reads_per_contig[i])
        n_right = (n_reads + (i % 2)) // 2
        reads = ReadSet()
        hints: list[End] = []
        max_step = max(1, (rl0 - 6) - k - 2)
        mult = TARGET_EXT_MULTIPLIER.get(k, 1.3)
        j = 0
        for end, n_end in ((End.RIGHT, n_right), (End.LEFT, n_reads - n_right)):
            if n_end == 0:
                continue
            # this end's extension target, capped by its read-chain budget
            budget = max(4.0, (n_end - 1) * max_step + rl0 - k - 8)
            target = min(budget, rng.gamma(2.0, mult * per_end_ext / 2.0))
            junction = flank + contig_len if end is End.RIGHT else flank
            for s in _chain_read_starts(junction, target, n_end, rl0, k,
                                        region_len, end, rng):
                rl = int(np.clip(round(rng.normal(read_len_mean, 3.0)),
                                 rl0 - 6, min(rl0 + 6, region_len - s)))
                reads.append(sequence_read(region, s, rl, rng, profile,
                                           name=f"contig{i}/r{j}"))
                hints.append(end)
                j += 1
        contig.reads = reads
        contig.read_end_hints = hints
        contigs.append(contig)
    return contigs


def _chain_read_starts(
    junction: int, target_ext: float, n_reads: int, read_len: int,
    k: int, region_len: int, end: End, rng: np.random.Generator,
) -> list[int]:
    """Start positions for one end's read chain.

    The first read straddles the junction (covering the seed k-mer); each
    subsequent read overlaps the previous by at least ``k + 8`` bases so a
    walk can hop read-to-read out to ``target_ext`` bases past the
    junction, where the evidence stops. Reads left over once the target is
    reachable stack on the span (deeper coverage), giving the binning
    phase its depth spread. The left end is the mirror image.
    """
    rl = int(read_len)
    first_reach = rl - k - 8
    max_step = max(1, (rl - 6) - k - 2)
    if n_reads > 1:
        step = min(max_step, max(1, int((target_ext - first_reach) / (n_reads - 1))))
    else:
        step = 0
    starts: list[int] = []
    if end is End.RIGHT:
        s = junction - k - 8  # covers the seed k-mer plus a small anchor
        limit = junction + target_ext
        for _ in range(n_reads):
            jitter = int(rng.integers(-2, 3)) if starts else 0
            s_j = max(0, min(s + jitter, int(limit) - rl, region_len - rl))
            starts.append(s_j)
            s += max(1, step)
    else:
        s = junction + k + 8 - rl
        limit = junction - target_ext
        for _ in range(n_reads):
            jitter = int(rng.integers(-2, 3)) if starts else 0
            s_j = min(region_len - rl, max(s + jitter, int(limit), 0))
            starts.append(s_j)
            s -= max(1, step)
    return starts
