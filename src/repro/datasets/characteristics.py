"""Dataset characteristics (paper Table II) and their measurement.

The paper's four datasets are extracts of intermediate MetaHipMer state,
one per production k-mer size. Table II records their shapes; the
generator in :mod:`repro.datasets.generate` synthesizes datasets matching
these shapes (scaled), and :func:`measure_characteristics` recomputes the
same columns from any contig list so benches can print measured-vs-target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.construct import insertions_for
from repro.errors import DatasetError
from repro.genomics.contig import Contig


@dataclass(frozen=True)
class DatasetCharacteristics:
    """One row of Table II.

    ``avg_extn_length`` and ``total_extns`` describe the *output* of local
    assembly on the dataset (total extension bases per contig and across
    all contigs); the rest describe the input.
    """

    kmer_size: int
    total_contigs: int
    total_reads: int
    average_read_length: float
    total_hash_insertions: int
    average_extn_length: float
    total_extns: int

    @property
    def reads_per_contig(self) -> float:
        return self.total_reads / self.total_contigs

    def scaled(self, scale: float) -> "DatasetCharacteristics":
        """Targets for a ``scale``-sized extract (contig count scales;
        per-contig shape — read length, depth, extensions — does not)."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        n_contigs = max(1, round(self.total_contigs * scale))
        factor = n_contigs / self.total_contigs
        return DatasetCharacteristics(
            kmer_size=self.kmer_size,
            total_contigs=n_contigs,
            total_reads=max(1, round(self.total_reads * factor)),
            average_read_length=self.average_read_length,
            total_hash_insertions=round(self.total_hash_insertions * factor),
            average_extn_length=self.average_extn_length,
            total_extns=round(self.total_extns * factor),
        )


#: Paper Table II, verbatim.
TABLE_II: dict[int, DatasetCharacteristics] = {
    21: DatasetCharacteristics(21, 14195, 74159, 155, 10_011_465, 48.2, 684_100),
    33: DatasetCharacteristics(33, 4394, 20421, 159, 2_593_467, 88.2, 387_283),
    55: DatasetCharacteristics(55, 3319, 13160, 166, 1_473_920, 161.0, 534_206),
    77: DatasetCharacteristics(77, 2544, 7838, 175, 775_962, 227.0, 577_496),
}


def measure_characteristics(
    contigs: list[Contig], k: int
) -> DatasetCharacteristics:
    """Recompute the Table II columns for a contig list.

    Extension columns are 0 unless the contigs carry extension records
    (i.e. local assembly already ran on them).
    """
    if not contigs:
        raise DatasetError("cannot measure an empty dataset")
    total_reads = sum(c.depth for c in contigs)
    total_bases = sum(sum(len(r) for r in c.reads) for c in contigs)
    insertions = sum(insertions_for(c.reads, k) for c in contigs)
    ext_total = sum(c.total_extension_length() for c in contigs)
    return DatasetCharacteristics(
        kmer_size=k,
        total_contigs=len(contigs),
        total_reads=total_reads,
        average_read_length=total_bases / total_reads if total_reads else 0.0,
        total_hash_insertions=insertions,
        average_extn_length=ext_total / len(contigs),
        total_extns=ext_total,
    )
