"""Named end-to-end assembly scenarios beyond the paper's Table II.

Table II characterizes the *local-assembly extract* datasets; these
presets instead exercise the whole pipeline (``repro assemble``) on
synthetic read sets with controlled pathologies:

* ``single_genome`` — one organism, even coverage: the easy baseline.
* ``metagenome`` — three organisms at uneven abundance, the regime the
  paper's MetaHipMer datasets come from.
* ``uneven_coverage`` — one organism, deep front half / thin back half;
  the thin half is where the multi-k feed-forward earns its keep.
* ``high_error`` — 2% substitution error, stressing the k-mer error
  filter (singletons vs threshold-rejected accounting).
* ``tandem_repeat`` — a 30-base unit repeated in tandem, unresolvable at
  every k in the schedule: the pathological worst case.
* ``fork_resolution`` — a hand-tiled genome where an interspersed repeat
  forks the k=21 graph and a thin junction breaks the k=33 graph, so
  *only* the k=(21, 33) schedule with round-to-round contig feed-forward
  assembles a single full-length contig. This is the committed
  regression scenario for the feed-forward fix.

Every scenario is deterministic given its seed: golden outputs (contig
fingerprints, N50, per-round statistics) are committed under
``tests/datasets/golden_scenarios.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genomics.dna import ALPHABET_SIZE
from repro.genomics.reads import ReadSet
from repro.genomics.simulate import (
    PERFECT_READS,
    ErrorProfile,
    sequence_read,
    simulate_genome,
)

__all__ = ["SCENARIOS", "AssemblyScenario", "ScenarioData", "get_scenario"]


@dataclass
class ScenarioData:
    """One built scenario: the truth genomes and the sampled reads."""

    genomes: list[np.ndarray]
    reads: ReadSet


def _coverage_reads(
    genome: np.ndarray,
    depth: float,
    read_len: int,
    rng: np.random.Generator,
    profile: ErrorProfile,
    out: ReadSet,
    prefix: str,
    lo: int = 0,
    hi: int | None = None,
) -> None:
    """Sample reads to ``depth``x coverage of ``genome[lo:hi]``."""
    hi = len(genome) if hi is None else hi
    span = hi - lo
    count = int(span * depth / read_len)
    first = max(0, lo - read_len + 1)
    last = min(len(genome), hi) - read_len
    for i in range(count):
        s = int(rng.integers(first, last + 1))
        out.append(sequence_read(genome, s, read_len, rng, profile,
                                 name=f"{prefix}{len(out)}"))


def _tiled_reads(
    genome: np.ndarray,
    starts: list[int],
    read_len: int,
    rng: np.random.Generator,
    out: ReadSet,
    prefix: str,
) -> None:
    """One perfect read per listed start position (deterministic tiling)."""
    for s in starts:
        out.append(sequence_read(genome, s, read_len, rng, PERFECT_READS,
                                 name=f"{prefix}{len(out)}"))


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def _build_single_genome(rng: np.random.Generator) -> ScenarioData:
    g = simulate_genome(2000, rng)
    reads = ReadSet()
    _coverage_reads(g, 10, 100, rng, ErrorProfile(error_rate=0.001),
                    reads, "sg")
    return ScenarioData([g], reads)


def _build_metagenome(rng: np.random.Generator) -> ScenarioData:
    lengths = (900, 700, 500)
    depths = (10, 7, 5)
    genomes = [simulate_genome(n, rng) for n in lengths]
    reads = ReadSet()
    for i, (g, d) in enumerate(zip(genomes, depths)):
        _coverage_reads(g, d, 80, rng, ErrorProfile(error_rate=0.002),
                        reads, f"mg{i}_")
    return ScenarioData(genomes, reads)


def _build_uneven_coverage(rng: np.random.Generator) -> ScenarioData:
    g = simulate_genome(1600, rng)
    reads = ReadSet()
    profile = ErrorProfile(error_rate=0.002)
    _coverage_reads(g, 14, 90, rng, profile, reads, "deep", lo=0, hi=800)
    _coverage_reads(g, 4, 90, rng, profile, reads, "thin", lo=800, hi=1600)
    return ScenarioData([g], reads)


def _build_high_error(rng: np.random.Generator) -> ScenarioData:
    g = simulate_genome(1200, rng)
    reads = ReadSet()
    _coverage_reads(g, 15, 100, rng, ErrorProfile(error_rate=0.02),
                    reads, "he")
    return ScenarioData([g], reads)


def _build_tandem_repeat(rng: np.random.Generator) -> ScenarioData:
    unit = simulate_genome(30, rng)
    g = np.concatenate([simulate_genome(300, rng)] + [unit] * 4
                       + [simulate_genome(300, rng)])
    reads = ReadSet()
    _coverage_reads(g, 12, 80, rng, PERFECT_READS, reads, "tr")
    return ScenarioData([g], reads)


def _build_fork_resolution(rng: np.random.Generator) -> ScenarioData:
    """The committed feed-forward regression genome (890 bp).

    Layout ``A(260) X(25) B(320) X(25) C(260)`` with two deliberate
    pathologies tuned to the k = (21, 33) schedule:

    * the interspersed 25-base repeat ``X`` forks the k=21 graph at both
      occurrences (25 >= 21) but is fully spanned by 33-mers (25 < 33);
    * a *thin junction* inside ``B``: reads are tiled every 15 bases
      except around position 400, where exactly two reads overlap by
      26 bases — enough for unbroken 21-mer coverage, but 33-mers
      starting at 413..418 appear in no read.

    So k=33 alone breaks at the junction (two ~445 bp contigs), k=21
    alone breaks at the repeats — and only the multi-k schedule with
    merged contigs fed forward from the k=21 round reconstructs the
    whole 890 bp sequence. Dense step-5 tiling around each repeat keeps
    every repeat-spanning 33-mer in the raw reads, so the carried
    contigs only need to contribute the junction's missing 33-mers.
    """
    a = simulate_genome(260, rng)
    x = simulate_genome(25, rng)
    b = simulate_genome(320, rng)
    c = simulate_genome(260, rng)
    # Force real forks at the repeat boundaries: the bases entering and
    # leaving the two X occurrences must differ between occurrences.
    b[0] = (int(c[0]) + 1) % ALPHABET_SIZE     # successor fork after X
    a[-1] = (int(b[-1]) + 1) % ALPHABET_SIZE   # predecessor fork before X
    g = np.concatenate([a, x, b, x, c])
    assert len(g) == 890

    read_len = 60
    gap_lo, gap_hi = 385, 419  # the thin junction's two read starts
    starts = [s for s in range(0, len(g) - read_len + 1, 15)
              if not gap_lo < s < gap_hi]
    starts += [gap_lo, gap_hi, len(g) - read_len]
    # Dense tiling across both repeat occurrences ([260,285) and
    # [605,630)) so every 33-mer spanning a repeat exists in the reads.
    starts += list(range(215, 286, 5)) + list(range(560, 631, 5))
    reads = ReadSet()
    _tiled_reads(g, sorted(set(starts)), read_len, rng, reads, "fr")
    return ScenarioData([g], reads)


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AssemblyScenario:
    """One named end-to-end assembly preset.

    Attributes:
        name: registry key (the CLI's ``--scenario`` value).
        description: one-line summary for ``--help`` and reports.
        k_schedule: default k schedule for the preset.
        min_count: k-mer error-filter / edge-support threshold.
        seed: default RNG seed (golden outputs are pinned to it).
    """

    name: str
    description: str
    builder: "callable" = field(repr=False)
    k_schedule: tuple[int, ...] = (21, 33)
    min_count: int = 2
    seed: int = 0

    def build(self, seed: int | None = None) -> ScenarioData:
        """Generate the scenario's genomes and reads (deterministic)."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        return self.builder(rng)


_PRESETS = [
    AssemblyScenario(
        name="single_genome",
        description="one 2 kb organism, 10x even coverage, 0.1% error",
        builder=_build_single_genome,
        seed=11,
    ),
    AssemblyScenario(
        name="metagenome",
        description="three organisms (900/700/500 bp) at 10/7/5x, 0.2% error",
        builder=_build_metagenome,
        seed=12,
    ),
    AssemblyScenario(
        name="uneven_coverage",
        description="1.6 kb organism, 14x front half vs 4x back half",
        builder=_build_uneven_coverage,
        seed=13,
    ),
    AssemblyScenario(
        name="high_error",
        description="1.2 kb organism at 15x with 2% substitution error",
        builder=_build_high_error,
        seed=14,
    ),
    AssemblyScenario(
        name="tandem_repeat",
        description="30 bp unit x4 tandem repeat, unresolvable at k<=33",
        builder=_build_tandem_repeat,
        seed=15,
    ),
    AssemblyScenario(
        name="fork_resolution",
        description="interspersed repeat + thin junction; needs multi-k "
                    "feed-forward to assemble one contig",
        builder=_build_fork_resolution,
        min_count=1,
        seed=16,
    ),
]

#: name -> preset, the CLI's ``--scenario`` choices.
SCENARIOS: dict[str, AssemblyScenario] = {s.name: s for s in _PRESETS}


def get_scenario(name: str) -> AssemblyScenario:
    """Look up a preset; raises ``KeyError`` listing valid names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {', '.join(sorted(SCENARIOS))}"
        ) from None
