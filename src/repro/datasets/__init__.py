"""Dataset substrate: Table II targets, the synthetic generator, and the
end-to-end assembly scenario presets (``repro assemble --scenario``)."""

from repro.datasets.characteristics import (
    TABLE_II,
    DatasetCharacteristics,
    measure_characteristics,
)
from repro.datasets.generate import generate_paper_dataset
from repro.datasets.scenarios import (
    SCENARIOS,
    AssemblyScenario,
    ScenarioData,
    get_scenario,
)

__all__ = [
    "TABLE_II",
    "DatasetCharacteristics",
    "measure_characteristics",
    "generate_paper_dataset",
    "SCENARIOS",
    "AssemblyScenario",
    "ScenarioData",
    "get_scenario",
]
