"""Dataset substrate: Table II targets and the synthetic generator."""

from repro.datasets.characteristics import (
    TABLE_II,
    DatasetCharacteristics,
    measure_characteristics,
)
from repro.datasets.generate import generate_paper_dataset

__all__ = [
    "TABLE_II",
    "DatasetCharacteristics",
    "measure_characteristics",
    "generate_paper_dataset",
]
