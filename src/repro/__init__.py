"""Reproduction of *Performance Modeling and Analysis of a de Bruijn Graph
Based Local Assembly Kernel on Multiple Vendor GPUs* (SC-W 2024).

Public API tour:

* ``repro.genomics`` — DNA, k-mers, reads, contigs, simulators, I/O.
* ``repro.hashing`` — MurmurHashAligned2 + the Table V cost model.
* ``repro.core`` — the local assembly algorithms (CPU reference).
* ``repro.simt`` — the simulated GPUs (A100 / MI250X / MAX1550).
* ``repro.kernels`` — the CUDA / HIP / SYCL kernel ports on the simulator.
* ``repro.perfmodel`` — roofline, theoretical II, Pennycook, timing.
* ``repro.datasets`` — Table II dataset generation.
* ``repro.analysis`` — one entry point per paper table/figure.

Quickstart::

    from repro import LocalAssembler, simulate_batch, ScenarioSpec
    import numpy as np

    scenarios = simulate_batch(4, ScenarioSpec(), np.random.default_rng(0))
    results = LocalAssembler().assemble([s.contig for s in scenarios])
    for r in results:
        print(r.contig.name, r.contig.extended_sequence()[:60])
"""

from repro.core.pipeline import LocalAssembler
from repro.core.extension import DEFAULT_POLICY, PRODUCTION_POLICY, WalkPolicy
from repro.genomics.contig import Contig, End
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import ScenarioSpec, simulate_batch
from repro.kernels import (
    CudaLocalAssemblyKernel,
    HipLocalAssemblyKernel,
    ScalarReferenceBackend,
    SyclLocalAssemblyKernel,
    available_backends,
    backend_for_device,
    create_backend,
    kernel_for_device,
)
from repro.simt.device import A100, MAX1550, MI250X, PLATFORMS

__version__ = "1.0.0"

__all__ = [
    "LocalAssembler",
    "DEFAULT_POLICY",
    "PRODUCTION_POLICY",
    "WalkPolicy",
    "Contig",
    "End",
    "Read",
    "ReadSet",
    "ScenarioSpec",
    "simulate_batch",
    "CudaLocalAssemblyKernel",
    "HipLocalAssemblyKernel",
    "ScalarReferenceBackend",
    "SyclLocalAssemblyKernel",
    "available_backends",
    "backend_for_device",
    "create_backend",
    "kernel_for_device",
    "A100",
    "MI250X",
    "MAX1550",
    "PLATFORMS",
    "__version__",
]
