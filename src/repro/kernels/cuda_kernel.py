"""CUDA port of the local assembly kernel (the paper's original code).

Implements the Appendix-A ``ht_get_atomic`` semantics: ``atomicCAS`` on
the slot tag, ``__match_any_sync(__activemask(), slot_address)`` to find
the lanes colliding on the same slot, and ``__syncwarp(mask)`` so that
lanes that lost the CAS to a *same-key* winner can merge their votes in
the same probe iteration. Warp size is fixed at 32 — the CUDA code
assumes it implicitly (the paper notes this assumption had to be removed
for the HIP port).
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernels.engine import LocalAssemblyKernel, ProtocolCosts
from repro.simt.device import DeviceSpec

#: CUDA warp width, hard-wired into the original kernel.
CUDA_WARP_SIZE = 32


class CudaLocalAssemblyKernel(LocalAssemblyKernel):
    """The original optimized CUDA implementation, on the SIMT simulator."""

    protocol = ProtocolCosts(
        name="CUDA",
        # __activemask + address arithmetic for match_any, mask bookkeeping
        iteration_intops=8,
        # __match_any_sync + __syncwarp(mask)
        iteration_syncs=2,
        merges_in_iteration=True,
    )

    def __init__(self, device: DeviceSpec, warp_size: int | None = None, **kwargs):
        if warp_size is not None and warp_size != CUDA_WARP_SIZE:
            raise KernelError(
                f"the CUDA kernel assumes {CUDA_WARP_SIZE}-wide warps "
                f"(got {warp_size}); this is the portability hazard the "
                "paper describes"
            )
        super().__init__(device, warp_size=CUDA_WARP_SIZE, **kwargs)
