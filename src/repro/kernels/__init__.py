"""SIMT kernel ports of the local assembly kernel (paper Appendix A).

Three variants, differing exactly where the paper's ports differ:

* :class:`repro.kernels.cuda_kernel.CudaLocalAssemblyKernel` — fixed
  32-wide warps; thread collisions resolved *within* a probe iteration via
  ``__match_any_sync`` + ``__syncwarp(mask)``.
* :class:`repro.kernels.hip_kernel.HipLocalAssemblyKernel` — 64-wide
  wavefronts; a per-lane ``done`` flag with ``__all`` checks, so colliding
  lanes retry on the *next* iteration.
* :class:`repro.kernels.sycl_kernel.SyclLocalAssemblyKernel` —
  configurable sub-group size (default 16, the paper's best) with a
  sub-group barrier per iteration; colliding lanes also retry.

All three run on the staged execution engine in
:mod:`repro.kernels.engine` and produce identical *functional* results
(extensions); they differ in measured iteration counts, instruction
counts, synchronization counts, and predication statistics. Together
with the scalar CPU reference
(:class:`repro.kernels.engine.backend.ScalarReferenceBackend`) they
register in the engine's backend registry, so callers select execution
paths by name (:func:`repro.kernels.engine.create_backend`) or by device
(:func:`repro.kernels.engine.backend_for_device`).
"""

from repro.kernels.cuda_kernel import CudaLocalAssemblyKernel
from repro.kernels.engine import (
    ExecutionBackend,
    KernelRunResult,
    LocalAssemblyKernel,
    ProtocolCosts,
    ScalarReferenceBackend,
    available_backends,
    backend_for_device,
    create_backend,
    register_backend,
)
from repro.kernels.engine.backend import _REGISTRY
from repro.kernels.hip_kernel import HipLocalAssemblyKernel
from repro.kernels.sycl_kernel import SyclLocalAssemblyKernel
from repro.kernels.vectortable import WarpHashTables
from repro.simt.device import A100, MAX1550, MI250X

__all__ = [
    "ExecutionBackend",
    "KernelRunResult",
    "LocalAssemblyKernel",
    "ProtocolCosts",
    "ScalarReferenceBackend",
    "CudaLocalAssemblyKernel",
    "HipLocalAssemblyKernel",
    "SyclLocalAssemblyKernel",
    "WarpHashTables",
    "available_backends",
    "backend_for_device",
    "create_backend",
    "kernel_for_device",
    "register_backend",
]


def _register_ports() -> None:
    """Register the SIMT ports (idempotent; each with its paper device)."""
    defaults = {
        "cuda": (CudaLocalAssemblyKernel, A100),
        "hip": (HipLocalAssemblyKernel, MI250X),
        "sycl": (SyclLocalAssemblyKernel, MAX1550),
    }
    for name, (cls, default_device) in defaults.items():
        if name in _REGISTRY:
            continue

        def factory(device=None, *, _cls=cls, _default=default_device, **kw):
            return _cls(device if device is not None else _default, **kw)

        register_backend(name, factory)

    if "buggy-demo" not in _REGISTRY:
        # the sanitizer's self-test backend lives in repro.sanitize (which
        # depends on this package); register it lazily so it is selectable
        # by name regardless of import order, without a module-level cycle
        def buggy_factory(device=None, **kw):
            from repro.sanitize.demo import BuggyDemoKernel

            return BuggyDemoKernel(device if device is not None else A100,
                                   **kw)

        register_backend("buggy-demo", buggy_factory)


_register_ports()


def kernel_for_device(device, **kwargs):
    """The kernel variant matching a device's programming model."""
    return backend_for_device(device, **kwargs)
