"""SIMT kernel ports of the local assembly kernel (paper Appendix A).

Three variants, differing exactly where the paper's ports differ:

* :class:`repro.kernels.cuda_kernel.CudaLocalAssemblyKernel` — fixed
  32-wide warps; thread collisions resolved *within* a probe iteration via
  ``__match_any_sync`` + ``__syncwarp(mask)``.
* :class:`repro.kernels.hip_kernel.HipLocalAssemblyKernel` — 64-wide
  wavefronts; a per-lane ``done`` flag with ``__all`` checks, so colliding
  lanes retry on the *next* iteration.
* :class:`repro.kernels.sycl_kernel.SyclLocalAssemblyKernel` —
  configurable sub-group size (default 16, the paper's best) with a
  sub-group barrier per iteration; colliding lanes also retry.

All three run on the vectorized SIMT machinery in
:mod:`repro.kernels.vectortable` / :mod:`repro.kernels.base` and produce
identical *functional* results (extensions); they differ in measured
iteration counts, instruction counts, synchronization counts, and
predication statistics.
"""

from repro.kernels.base import KernelRunResult, LocalAssemblyKernel, ProtocolCosts
from repro.kernels.cuda_kernel import CudaLocalAssemblyKernel
from repro.kernels.hip_kernel import HipLocalAssemblyKernel
from repro.kernels.sycl_kernel import SyclLocalAssemblyKernel
from repro.kernels.vectortable import WarpHashTables

__all__ = [
    "KernelRunResult",
    "LocalAssemblyKernel",
    "ProtocolCosts",
    "CudaLocalAssemblyKernel",
    "HipLocalAssemblyKernel",
    "SyclLocalAssemblyKernel",
    "WarpHashTables",
]


def kernel_for_device(device, **kwargs):
    """The kernel variant matching a device's programming model."""
    table = {
        "CUDA": CudaLocalAssemblyKernel,
        "HIP": HipLocalAssemblyKernel,
        "SYCL": SyclLocalAssemblyKernel,
    }
    return table[device.programming_model](device, **kwargs)
