"""Vectorized per-warp hash tables (the device-memory ``loc_ht`` arrays).

Every warp of a launch owns one open-addressing table; all tables live in
flat structure-of-arrays storage so that one NumPy operation services a
probe iteration across *every* pending lane of *every* warp — the
warp-synchronous vectorized execution style DESIGN.md decision #1 calls
out (per the HPC-Python guides: the hot loop is over probe iterations,
never over lanes).

Keys are identified by 64-bit fingerprints (see
:mod:`repro.genomics.kmer`); byte-level key comparison cost is still
charged by the memory model, the fingerprint only replaces *storage* of
the key bytes, like the GPU struct's ``start_ptr`` indirection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashTableFullError, KernelError
from repro.simt.intrinsics import elect_one_per_slot

#: Bytes of the slot struct read by a probe (key tag: ptr + length).
SLOT_TAG_BYTES = 16

#: Bytes of the vote/value region written by an insertion
#: (hi_q_exts + low_q_exts + ext + count, as in the GPU struct).
SLOT_VALUE_BYTES = 16

#: Full slot footprint in device memory.
SLOT_BYTES = SLOT_TAG_BYTES + SLOT_VALUE_BYTES


class WarpHashTables:
    """All per-warp hash tables of one kernel launch.

    Args:
        capacities: per-warp slot counts (int array, one per warp).
        k: key length in bases.
    """

    def __init__(self, capacities: np.ndarray, k: int) -> None:
        capacities = np.asarray(capacities, dtype=np.int64)
        if capacities.ndim != 1 or capacities.size == 0:
            raise KernelError("capacities must be a non-empty 1-D array")
        if (capacities <= 0).any():
            raise KernelError("all table capacities must be positive")
        self.capacities = capacities
        self.k = int(k)
        self.offsets = np.zeros(capacities.size + 1, dtype=np.int64)
        np.cumsum(capacities, out=self.offsets[1:])
        total = int(self.offsets[-1])
        self.fp = np.zeros(total, dtype=np.uint64)
        self.occupied = np.zeros(total, dtype=bool)
        self.hi_q = np.zeros((total, 4), dtype=np.int32)
        self.low_q = np.zeros((total, 4), dtype=np.int32)
        self.count = np.zeros(total, dtype=np.int32)

    @property
    def n_warps(self) -> int:
        return self.capacities.size

    @property
    def total_slots(self) -> int:
        return int(self.offsets[-1])

    @property
    def total_bytes(self) -> int:
        """Device-memory footprint of all tables (cold-miss floor)."""
        return self.total_slots * SLOT_BYTES

    def slot_of(self, warps: np.ndarray, homes: np.ndarray,
                probes: np.ndarray) -> np.ndarray:
        """Global slot index for (warp, home hash, probe offset) triples."""
        caps = self.capacities[warps]
        wrapped = np.asarray(probes) >= caps
        if wrapped.any():
            j = int(np.argmax(wrapped))
            raise HashTableFullError(
                "probe offset wrapped a full table",
                capacity=int(np.ravel(caps)[j]),
                probes=int(np.ravel(probes)[j]),
            )
        return self.offsets[warps] + (homes.astype(np.int64) + probes) % caps

    def inspect(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Read (occupied, fingerprint) for each slot — one probe load."""
        return self.occupied[slots], self.fp[slots]

    def claim(self, slots: np.ndarray, fps: np.ndarray) -> np.ndarray:
        """atomicCAS claim of empty slots; returns the winner mask.

        Callers pass only slots observed empty this iteration. Exactly one
        lane per distinct slot wins; winners' fingerprints are installed.
        """
        winners = elect_one_per_slot(slots)
        ws = slots[winners]
        self.occupied[ws] = True
        self.fp[ws] = fps[winners]
        return winners

    def vote(self, slots: np.ndarray, exts: np.ndarray, hi_mask: np.ndarray) -> None:
        """Atomic vote accumulation (atomicAdd on the value region).

        The adds are compacted first — duplicate (slot, ext) targets are
        counted with ``unique`` and applied as one duplicate-free fancy
        add per array — which is several times faster than ``np.add.at``
        scatter on the 2-D vote matrices and lands the same totals
        (integer addition is order-free).
        """
        if slots.size == 0:
            return
        # One sort covers all three accumulators: key = slot:ext:hi packs
        # the (slot, ext, quality-tier) target into one integer, so a
        # single ``unique`` yields duplicate-free cells for hi_q and
        # low_q directly, and the per-slot totals fall out of a
        # run-length reduction over the (already sorted) slot component.
        # Several times faster than ``np.add.at`` scatter, and cheaper
        # than per-tier bincounts, whose dense passes over the whole
        # 4*slots cell domain swamp launch-sized flushes.
        sub = exts * np.uint8(2)
        sub += hi_mask
        if self.count.size * 8 <= np.iinfo(np.int32).max:
            key = slots.astype(np.int32)  # narrow first: halves sort traffic
            key <<= np.int32(3)
        else:
            key = slots << np.int64(3)
        key += sub
        uniq, add = np.unique(key, return_counts=True)
        add = add.astype(np.int32)
        hi = (uniq & 1).astype(bool)
        cell = (uniq >> 1).astype(np.int64)
        self.hi_q.reshape(-1)[cell[hi]] += add[hi]
        self.low_q.reshape(-1)[cell[~hi]] += add[~hi]
        slot = uniq >> 3
        change = np.empty(slot.size, dtype=bool)
        change[0] = True
        np.not_equal(slot[1:], slot[:-1], out=change[1:])
        starts = np.nonzero(change)[0]
        self.count[slot[starts].astype(np.int64)] += np.add.reduceat(add, starts)

    def votes_at(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather (hi_q, low_q) count rows for walk-step resolution."""
        return self.hi_q[slots], self.low_q[slots]

    def occupancy(self) -> float:
        """Fraction of slots holding a key (post-construction check)."""
        return float(self.occupied.mean()) if self.total_slots else 0.0

    def keys_per_warp(self) -> np.ndarray:
        """Distinct keys stored per warp (for invariant tests)."""
        out = np.zeros(self.n_warps, dtype=np.int64)
        warp_of_slot = np.repeat(np.arange(self.n_warps), self.capacities)
        np.add.at(out, warp_of_slot[self.occupied], 1)
        return out
