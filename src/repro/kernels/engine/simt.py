"""The staged SIMT execution engine driving the three vendor ports.

Execution model (Figure 4 of the paper): one contig per warp. Per
launch plan (one bin, one extension direction) the engine runs

1. **prepare** (:mod:`repro.kernels.engine.prepare`) — flatten + hash
   the bin's reads into launch arrays, reusing the k-independent
   flatten across a k-schedule;
2. **construct** (:mod:`repro.kernels.engine.construct`) — insertion
   waves with the port's collision protocol;
3. **walk** (:mod:`repro.kernels.engine.walk`) — the predicated
   mer-walk;

with launch plans produced by a pluggable
:class:`~repro.kernels.engine.schedule.LaunchPolicy`. All profiling,
memory-traffic accounting, and address-trace recording happens in event
subscribers (:mod:`repro.kernels.engine.events`), never inline — the
phases only emit what they measured.
"""

from __future__ import annotations

import numpy as np

from repro.core.merwalk import DEFAULT_MAX_WALK_LEN
from repro.core.construct import DEFAULT_LOAD_FACTOR
from repro.core.extension import DEFAULT_POLICY, WalkPolicy
from repro.errors import KernelError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import decode_matrix, reverse_complement_matrix
from repro.genomics.reads import DEFAULT_QUAL_THRESHOLD
from repro.hashing.opcount import hash_intops
from repro.kernels.engine.backend import KernelRunResult, ProtocolCosts
from repro.kernels.engine.construct import ConstructPhase
from repro.kernels.engine.events import (
    ContigDropped,
    ContigRetried,
    EventBus,
    LaunchDone,
    LaunchStarted,
    ProfileSubscriber,
    TraceReplaySubscriber,
    TraceSubscriber,
    TrafficSubscriber,
)
from repro.kernels.engine.prepare import BatchPreparer, PrepareCache, subset_batch
from repro.kernels.engine.schedule import (
    MISSING_CODE,
    BinnedLaunchPolicy,
    LaunchConfig,
    LaunchPolicy,
    SideArrays,
    iterate_k_schedule,
)
from repro.kernels.engine.walk import WalkPhase
from repro.kernels.vectortable import SLOT_BYTES, WarpHashTables
from repro.resilience.policy import (
    DEFAULT_GROW_FACTOR,
    DEFAULT_MAX_GROW_ATTEMPTS,
    OverflowPolicy,
)
from repro.simt.counters import KernelProfile
from repro.simt.device import DeviceSpec


class LocalAssemblyKernel:
    """Base class; subclasses set :attr:`protocol` and default warp size.

    Args:
        device: simulated GPU to run on.
        warp_size: lane width; defaults to the device's native width
            (the SYCL port exposes this as the sub-group size).
        policy: walk vote-resolution thresholds.
        max_walk_len: extension length cap.
        qual_threshold: phred cut separating hi/low-quality votes.
        seed: Murmur seed.
        load_factor: hash-table occupancy target for size estimation.
        table_sizing: "upper_bound" (default) reserves per-contig capacity
            from the k-independent read-volume bound, as the GPU
            pre-processing must (Figure 3: tables are sized once, before
            the k iterations run); "exact" sizes from the actual insertion
            count (the ablation comparison).
        l2_churn: cache-model churn constant (see
            :class:`repro.simt.memory.AnalyticCacheModel`).
        launch_policy: pluggable bins->launches strategy (defaults to the
            Figure 3 :class:`BinnedLaunchPolicy`).
        memory_model: "analytic" (default) prices traffic with the
            working-set model only; "trace" additionally streams every
            table-slot access through the exact batched cache hierarchy
            (:class:`~repro.kernels.engine.events.TraceReplaySubscriber`),
            leaving per-launch exact measurements in :attr:`last_replay`
            for validating/recalibrating the analytic model. Profile
            counters always come from the analytic model, so trace mode
            changes no result — it adds exact measurements beside it.
        sanitize: ``None`` (default, off) or a check selection for the
            :class:`~repro.sanitize.Sanitizer` — ``"all"``,
            ``"racecheck"``, ``"synccheck"``, ``"initcheck"``, a
            comma-separated string, or an iterable. When set, the phases
            emit slot-write / slot-read / barrier records (gated on
            ``bus.wants``; off costs nothing) and the run's structured
            findings land in :attr:`last_sanitizer_report`.
    """

    protocol: ProtocolCosts  # set by subclasses

    #: Phase factories; the buggy sanitizer-demo backend swaps these for
    #: subclasses that seed protocol violations (:mod:`repro.sanitize.demo`).
    construct_cls = ConstructPhase
    walk_cls = WalkPhase
    preparer_cls = BatchPreparer

    def __init__(
        self,
        device: DeviceSpec,
        warp_size: int | None = None,
        policy: WalkPolicy = DEFAULT_POLICY,
        max_walk_len: int = DEFAULT_MAX_WALK_LEN,
        qual_threshold: int = DEFAULT_QUAL_THRESHOLD,
        seed: int = 0,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        table_sizing: str = "upper_bound",
        l2_churn: float = 4.0,
        lane_parallel_walks: bool = False,
        launch_policy: LaunchPolicy | None = None,
        memory_model: str = "analytic",
        overflow_policy: OverflowPolicy | str = OverflowPolicy.RAISE,
        fault_injector=None,
        grow_factor: float | None = None,
        max_grow_attempts: int | None = None,
        sanitize=None,
    ) -> None:
        if not hasattr(self, "protocol"):
            raise KernelError("use a concrete kernel subclass, not the base")
        if table_sizing not in ("upper_bound", "exact"):
            raise KernelError(f"unknown table_sizing {table_sizing!r}")
        if memory_model not in ("analytic", "trace"):
            raise KernelError(f"unknown memory_model {memory_model!r}")
        self.device = device
        self.warp_size = int(warp_size or device.warp_size)
        if self.warp_size <= 0:
            raise KernelError(f"warp_size must be positive, got {self.warp_size}")
        self.policy = policy
        self.max_walk_len = max_walk_len
        self.qual_threshold = qual_threshold
        self.seed = seed
        self.load_factor = load_factor
        self.table_sizing = table_sizing
        self.l2_churn = l2_churn
        #: Future-work mode (paper Section VI): with independent thread
        #: scheduling, every lane of a warp can run its own mer-walk, so
        #: walk instructions stop wasting warp_size-1 issue lanes.
        self.lane_parallel_walks = lane_parallel_walks
        #: What a table overflow does: raise (default), drop the contig
        #: (the paper's ``*hashtable full*``), or grow-retry it.
        self.overflow_policy = OverflowPolicy.parse(overflow_policy)
        #: Optional :class:`repro.resilience.FaultInjector`; hooked
        #: around every launch and subscribed to the event bus.
        self.fault_injector = fault_injector
        self.grow_factor = (DEFAULT_GROW_FACTOR if grow_factor is None
                            else float(grow_factor))
        self.max_grow_attempts = (DEFAULT_MAX_GROW_ATTEMPTS
                                  if max_grow_attempts is None
                                  else int(max_grow_attempts))
        if self.grow_factor <= 1.0:
            raise KernelError(
                f"grow_factor must exceed 1, got {self.grow_factor}")
        if self.max_grow_attempts < 1:
            raise KernelError(
                f"max_grow_attempts must be >= 1, got {self.max_grow_attempts}")
        self.launch_policy = launch_policy or BinnedLaunchPolicy()
        self.preparer = self.preparer_cls(
            seed=seed, qual_threshold=qual_threshold,
            load_factor=load_factor, table_sizing=table_sizing,
        )
        #: When True, every table-slot access's byte address is recorded
        #: into :attr:`last_trace` (one array per launch) so the analytic
        #: cache model can be validated against the exact trace simulator.
        self.record_trace = False
        self.last_trace: list[np.ndarray] = []
        self.memory_model = memory_model
        #: Per-launch exact-replay measurements of the most recent run
        #: (populated when ``memory_model="trace"``), plus the subscriber
        #: itself for aggregate views (hit rates, suggested ``l2_churn``).
        self.last_replay: list = []
        self.last_replay_subscriber: TraceReplaySubscriber | None = None
        if sanitize:
            # imported lazily: repro.sanitize imports this module
            from repro.sanitize.report import parse_checks
            self.sanitize_checks = parse_checks(sanitize)
        else:
            self.sanitize_checks = ()
        #: The :class:`~repro.sanitize.SanitizerReport` of the most
        #: recent run (populated when ``sanitize=`` is set).
        self.last_sanitizer_report = None
        #: The prep cache of the most recent :meth:`run_schedule` call
        #: (exposes flatten hit/miss statistics).
        self.last_prep_cache: PrepareCache | None = None
        #: Extra event subscribers attached to every subsequent run —
        #: the observability extension point.
        self.extra_subscribers: list = []

    # ------------------------------------------------------------------

    def add_subscriber(self, subscriber):
        """Attach an event subscriber to all future runs of this kernel."""
        self.extra_subscribers.append(subscriber)
        return subscriber

    def _build_bus(
        self, profile: KernelProfile, parallel_scale: float,
    ) -> tuple[EventBus, TrafficSubscriber, TraceSubscriber | None,
               TraceReplaySubscriber | None, object | None]:
        """Assemble the instrumentation stack for one run.

        The profile subscriber is registered before the traffic
        subscriber so it sees ``LaunchDone`` (storing the chain stats)
        before the nested ``MemoryTrafficResolved`` arrives.
        """
        bus = EventBus()
        bus.subscribe(ProfileSubscriber(
            profile, warp_size=self.warp_size, protocol=self.protocol,
            lane_parallel_walks=self.lane_parallel_walks,
            dependent_cpi=self.device.dependent_cpi,
        ))
        traffic = bus.subscribe(TrafficSubscriber(
            self.device, l2_churn=self.l2_churn, parallel_scale=parallel_scale,
        ))
        tracer = bus.subscribe(TraceSubscriber()) if self.record_trace else None
        replayer = (bus.subscribe(TraceReplaySubscriber(self.device))
                    if self.memory_model == "trace" else None)
        sanitizer = None
        if self.sanitize_checks:
            from repro.sanitize.checkers import Sanitizer
            sanitizer = bus.subscribe(Sanitizer(self.sanitize_checks))
        if self.fault_injector is not None:
            bus.subscribe(self.fault_injector)
        for sub in self.extra_subscribers:
            bus.subscribe(sub)
        return bus, traffic, tracer, replayer, sanitizer

    # ------------------------------------------------------------------

    def run(
        self,
        contigs: list[Contig],
        k: int,
        depth_ratio: float = 2.0,
        max_batch_insertions: int | None = None,
        parallel_scale: float = 1.0,
        prep_cache: PrepareCache | None = None,
    ) -> KernelRunResult:
        """Execute the full local-assembly workflow (Figure 3) at one k.

        ``parallel_scale`` declares what fraction of the paper-size
        dataset ``contigs`` represents, so the cache model can apply
        full-size concurrency pressure to a scaled run. ``prep_cache``
        carries flattened read streams across calls (the k-schedule
        reuse; see :class:`~repro.kernels.engine.prepare.PrepareCache`).

        Returns functional extensions for both ends of every contig plus
        the merged :class:`KernelProfile` (time left at zero — the timing
        model in :mod:`repro.perfmodel.timing` fills it from the counters).
        """
        if parallel_scale <= 0 or parallel_scale > 1:
            raise KernelError(f"parallel_scale must be in (0, 1], got {parallel_scale}")
        if max_batch_insertions is None:
            # reserve at most ~25% of HBM for tables in one launch
            max_batch_insertions = int(
                self.device.hbm_bytes * 0.25 * self.load_factor / SLOT_BYTES
            )
        plans = self.launch_policy.plan(contigs, k, LaunchConfig(
            depth_ratio=depth_ratio,
            max_batch_insertions=max_batch_insertions,
            load_factor=self.load_factor,
        ))
        profile = KernelProfile(warp_size=self.warp_size)
        profile.walk_issue_width = 1 if self.lane_parallel_walks else self.warp_size
        profile.contigs = len(contigs)
        right_arr = SideArrays.empty(len(contigs))
        left_arr = SideArrays.empty(len(contigs))
        self.last_trace = []
        self.last_replay = []
        bus, traffic, tracer, replayer, sanitizer = self._build_bus(
            profile, parallel_scale)
        defer = self.overflow_policy is not OverflowPolicy.RAISE
        construct = self.construct_cls(self.protocol, self.warp_size,
                                       defer_overflow=defer)
        walker = self.walk_cls(self.policy, self.max_walk_len, self.seed,
                               defer_overflow=defer)
        ops = hash_intops(k)
        injector = self.fault_injector
        degraded: set[int] = set()
        retried: set[int] = set()
        for plan in plans:
            ordinal = injector.begin_launch() if injector is not None else -1
            batch = self.preparer.prepare(contigs, plan.bin, plan.end, k,
                                          cache=prep_cache)
            if injector is not None:
                injector.shape_batch(batch, ordinal)
            sub = batch
            attempt = 0
            while True:
                tables = WarpHashTables(sub.capacities, k)
                bus.emit(LaunchStarted(
                    k=k, hash_ops=ops, n_warps=sub.n_warps,
                    mean_table_bytes=float(np.mean(sub.capacities)) * SLOT_BYTES,
                    mean_read_bytes=float(np.mean(sub.read_bytes_per_warp)),
                    cold_footprint_bytes=tables.total_bytes + 2 * sub.codes.size,
                    total_slots=tables.total_slots,
                    contig_ids=(tuple(int(ci) for ci in sub.contig_ids)
                                if sanitizer is not None else ()),
                ))
                cres = construct.run(sub, tables, bus)
                wres = walker.run(sub, tables, bus)
                bus.emit(LaunchDone(
                    waves=cres.waves, construct_iterations=cres.iterations,
                    walk_steps=wres.steps, walk_iterations=wres.iterations,
                ))
                self._last_access_latency = traffic.last_access_latency
                failed = sorted(set(cres.overflowed) | set(wres.overflowed))
                # scatter the launch's accepted walks in one batched
                # decode + array assignment (left ends reverse-complement
                # as a matrix gather, not per string)
                arr = right_arr if plan.end is End.RIGHT else left_arr
                ok = np.ones(sub.n_warps, dtype=bool)
                if failed:
                    ok[failed] = False
                cis = np.asarray(sub.contig_ids, dtype=np.int64)[ok]
                if cis.size:
                    lens = wres.base_lens[ok]
                    mat = wres.base_codes[ok]
                    if plan.end is not End.RIGHT:
                        mat = reverse_complement_matrix(mat, lens)
                    arr.text[cis] = decode_matrix(mat, lens)
                    arr.lens[cis] = lens
                    arr.state_codes[cis] = wres.state_codes[ok]
                if not failed:
                    break
                if (self.overflow_policy is OverflowPolicy.GROW_RETRY
                        and attempt < self.max_grow_attempts):
                    attempt += 1
                    grown = np.maximum(
                        sub.capacities[failed] + 1,
                        np.ceil(sub.capacities[failed]
                                * self.grow_factor).astype(np.int64))
                    for w, cap in zip(failed, grown):
                        bus.emit(ContigRetried(
                            contig_id=sub.contig_ids[w], k=k,
                            attempt=attempt, capacity=int(cap)))
                        retried.add(sub.contig_ids[w])
                    sub = subset_batch(sub, failed, grown)
                    continue
                end_name = "right" if plan.end is End.RIGHT else "left"
                for w in failed:
                    ci = sub.contig_ids[w]
                    bus.emit(ContigDropped(
                        contig_id=ci, k=k, end=end_name,
                        capacity=int(sub.capacities[w])))
                    degraded.add(ci)
                    arr.text[ci] = ""
                    arr.lens[ci] = 0
                    arr.state_codes[ci] = MISSING_CODE
                break
        if tracer is not None:
            self.last_trace = tracer.traces
        if replayer is not None:
            self.last_replay = replayer.launches
            self.last_replay_subscriber = replayer
        if sanitizer is not None:
            self.last_sanitizer_report = sanitizer.report
        result = KernelRunResult(device=self.device, k=k, profile=profile,
                                 right=right_arr.to_side(),
                                 left=left_arr.to_side(),
                                 degraded=sorted(degraded),
                                 retried=sorted(retried),
                                 right_arrays=right_arr,
                                 left_arrays=left_arr)
        if injector is not None:
            injector.degrade_result(result)
        return result

    def run_schedule(
        self,
        contigs: list[Contig],
        k_schedule: tuple[int, ...] = (21, 33, 55, 77),
        parallel_scale: float = 1.0,
    ) -> KernelRunResult:
        """Iterate the k schedule on-device (Figures 2 and 4).

        Per contig end, the first *accepted* walk (anything but a fork)
        at the smallest k wins, and forked ends retry at the next k,
        keeping the longest extension if no k resolves the fork. The
        flattened read streams are prepared once per (bin, end) and
        reused across the whole schedule — only the per-k hashing pass
        reruns (:class:`~repro.kernels.engine.prepare.PrepareCache`).
        Profiles of all launches merge; the result's ``k`` reports the
        last k executed.
        """
        cache = PrepareCache()
        self.last_prep_cache = cache
        schedule_replay: list = []
        schedule_reports: list = []
        degraded: set[int] = set()
        retried: set[int] = set()

        def _run_one(k: int) -> KernelRunResult:
            res = self.run(contigs, k, parallel_scale=parallel_scale,
                           prep_cache=cache)
            schedule_replay.extend(self.last_replay)
            if self.last_sanitizer_report is not None:
                schedule_reports.append(self.last_sanitizer_report)
            degraded.update(res.degraded)
            retried.update(res.retried)
            return res

        last_k, merged, right, left = iterate_k_schedule(
            _run_one, len(contigs), k_schedule,
        )
        merged.prep_cache_hits = cache.hits
        merged.prep_cache_misses = cache.misses
        merged.prep_cache_evictions = cache.evictions
        if self.memory_model == "trace":
            self.last_replay = schedule_replay
        if self.sanitize_checks and schedule_reports:
            from repro.sanitize.report import SanitizerReport
            combined = SanitizerReport(
                max_findings=schedule_reports[0].max_findings)
            for rep in schedule_reports:
                combined.extend(rep)
            self.last_sanitizer_report = combined
        return KernelRunResult(device=self.device, k=last_k, profile=merged,
                               right=right, left=left,
                               degraded=sorted(degraded),
                               retried=sorted(retried))
