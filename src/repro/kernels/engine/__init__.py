"""The staged local-assembly execution engine.

The engine splits the kernel workflow into its natural stages —
prepare (:mod:`~repro.kernels.engine.prepare`), construct
(:mod:`~repro.kernels.engine.construct`), walk
(:mod:`~repro.kernels.engine.walk`) — driven by a pluggable launch
schedule (:mod:`~repro.kernels.engine.schedule`) and observed through an
event bus (:mod:`~repro.kernels.engine.events`). Execution paths
(the three SIMT vendor ports plus the scalar CPU reference) implement the
:class:`~repro.kernels.engine.backend.ExecutionBackend` protocol and are
selected by name from the backend registry
(:mod:`~repro.kernels.engine.backend`).
"""

from repro.kernels.engine.backend import (
    ExecutionBackend,
    KernelRunResult,
    ProtocolCosts,
    ScalarReferenceBackend,
    available_backends,
    backend_for_device,
    create_backend,
    register_backend,
)
from repro.kernels.engine.coalesce import (
    CoalescedJobResult,
    run_schedule_coalesced,
)
from repro.kernels.engine.construct import ConstructPhase, ConstructResult
from repro.kernels.engine.oracle import (
    ScalarOracleConstructPhase,
    ScalarOracleWalkPhase,
    iterate_k_schedule_scalar,
    oracle_kernel_cls,
)
from repro.kernels.engine.events import (
    ITERATION_BASE_INSTRS,
    WALK_STEP_INTOPS,
    BarrierSync,
    ContigDropped,
    ContigRetried,
    EventBus,
    LaunchDone,
    LaunchStarted,
    MemoryTrafficResolved,
    ProbeIteration,
    ProfileSubscriber,
    SlotAccess,
    SlotRead,
    SlotWrite,
    TraceReplayStats,
    TraceReplaySubscriber,
    TraceSubscriber,
    TrafficSubscriber,
    WalkStep,
    WaveExecuted,
    replay_l2_hit_rate,
    replay_suggested_l2_churn,
)
from repro.kernels.engine.prepare import (
    Batch,
    BatchPreparer,
    FlattenedBin,
    PrepareCache,
    PrepareCacheScope,
    concat_batches,
    run_length_sorted,
    segmented_arange,
    subset_batch,
)
from repro.kernels.engine.schedule import (
    BinnedLaunchPolicy,
    LaunchConfig,
    LaunchPlan,
    LaunchPolicy,
    SideArrays,
    SingleBinLaunchPolicy,
    iterate_k_schedule,
    validate_k_schedule,
)
from repro.kernels.engine.simt import LocalAssemblyKernel
from repro.kernels.engine.walk import VisitedFingerprintSet, WalkOutput, WalkPhase

__all__ = [
    # backend protocol + registry
    "ExecutionBackend",
    "KernelRunResult",
    "ProtocolCosts",
    "ScalarReferenceBackend",
    "available_backends",
    "backend_for_device",
    "create_backend",
    "register_backend",
    # phases
    "ConstructPhase",
    "ConstructResult",
    "VisitedFingerprintSet",
    "WalkOutput",
    "WalkPhase",
    # scalar parity oracles
    "ScalarOracleConstructPhase",
    "ScalarOracleWalkPhase",
    "iterate_k_schedule_scalar",
    "oracle_kernel_cls",
    # events + subscribers
    "ITERATION_BASE_INSTRS",
    "WALK_STEP_INTOPS",
    "BarrierSync",
    "ContigDropped",
    "ContigRetried",
    "EventBus",
    "LaunchDone",
    "LaunchStarted",
    "MemoryTrafficResolved",
    "ProbeIteration",
    "ProfileSubscriber",
    "SlotAccess",
    "SlotRead",
    "SlotWrite",
    "TraceReplayStats",
    "TraceReplaySubscriber",
    "TraceSubscriber",
    "TrafficSubscriber",
    "WalkStep",
    "WaveExecuted",
    "replay_l2_hit_rate",
    "replay_suggested_l2_churn",
    # preparation
    "Batch",
    "BatchPreparer",
    "FlattenedBin",
    "PrepareCache",
    "PrepareCacheScope",
    "concat_batches",
    "run_length_sorted",
    "segmented_arange",
    "subset_batch",
    # multi-tenant coalescing
    "CoalescedJobResult",
    "run_schedule_coalesced",
    # scheduling
    "BinnedLaunchPolicy",
    "LaunchConfig",
    "LaunchPlan",
    "LaunchPolicy",
    "SideArrays",
    "SingleBinLaunchPolicy",
    "iterate_k_schedule",
    "validate_k_schedule",
    # driver
    "LocalAssemblyKernel",
]
