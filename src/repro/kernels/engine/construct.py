"""The construction phase: insertion waves + the atomicCAS insert protocol.

Lanes of each warp take consecutive k-mers of the contig's reads, in
*waves* of ``warp_size`` insertions; within a wave, lanes probe their
tables concurrently until every lane has inserted. Hash collisions
linear-probe; thread collisions (two lanes, same slot) are resolved by an
``atomicCAS`` winner, with losers retrying per the protocol
(:class:`~repro.kernels.engine.backend.ProtocolCosts`) — within the same
iteration for the CUDA ``__match_any_sync`` port, on the next iteration
for HIP/SYCL.

All measured quantities leave the phase as events
(:class:`~repro.kernels.engine.events.WaveExecuted`,
:class:`~repro.kernels.engine.events.ProbeIteration`,
:class:`~repro.kernels.engine.events.SlotAccess`); the phase itself never
touches a profile or traffic ledger. When a sanitizer subscribes, the
phase additionally emits :class:`~repro.kernels.engine.events.SlotWrite`
records at every slot-state commit and
:class:`~repro.kernels.engine.events.BarrierSync` records at every
protocol synchronization point — all gated on ``bus.wants``, so
unsanitized runs pay nothing. The commit/claim/barrier steps are small
overridable methods, which is how the deliberately-buggy demo backend
(:mod:`repro.sanitize.demo`) seeds the protocol violations the sanitizer
self-test must catch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HashTableFullError
from repro.kernels.engine.events import (
    BarrierSync,
    EventBus,
    ProbeIteration,
    SlotAccess,
    SlotWrite,
    WaveExecuted,
)
from repro.kernels.engine.prepare import Batch, segmented_arange
from repro.kernels.vectortable import WarpHashTables


@dataclass(frozen=True)
class ConstructResult:
    """Serial-chain statistics of one launch's construction phase."""

    waves: int          #: lockstep waves executed
    iterations: int     #: lockstep insert-probe iterations
    #: Warps whose table overflowed (only under deferred overflow; the
    #: default raising mode never returns with overflows).
    overflowed: tuple[int, ...] = ()


class ConstructPhase:
    """Runs all construction waves of a launch, emitting events.

    ``defer_overflow`` selects what a full table does: ``False`` (the
    default) raises an enriched
    :class:`~repro.errors.HashTableFullError`; ``True`` retires every
    pending lane of the overflowed warp, excludes that warp from the
    remaining waves, and reports it in
    :attr:`ConstructResult.overflowed` so the engine can drop or retry
    the contig (the paper's ``*hashtable full*`` semantics).
    """

    def __init__(self, protocol, warp_size: int,
                 defer_overflow: bool = False) -> None:
        self.protocol = protocol
        self.warp_size = warp_size
        self.defer_overflow = defer_overflow

    # ------------------------------------------------------------------
    # slot-state commit hooks (overridden by the buggy demo backend)

    def _claim(self, tables: WarpHashTables, slots: np.ndarray,
               fps: np.ndarray, warps: np.ndarray,
               lanes: np.ndarray | None, bus: EventBus,
               emit_writes: bool) -> np.ndarray:
        """atomicCAS tag claim; exactly one winner per distinct slot."""
        if emit_writes:
            bus.emit(SlotWrite(phase="construct", kind="claim", slots=slots,
                               warps=warps, lanes=lanes, atomic=True))
        return tables.claim(slots, fps)

    def _vote(self, tables: WarpHashTables, slots: np.ndarray,
              exts: np.ndarray, his: np.ndarray, warps: np.ndarray,
              lanes: np.ndarray | None, bus: EventBus,
              emit_writes: bool) -> None:
        """atomicAdd vote accumulation on the slot value region."""
        if emit_writes:
            bus.emit(SlotWrite(phase="construct", kind="vote", slots=slots,
                               warps=warps, lanes=lanes, atomic=True))
        tables.vote(slots, exts, his)

    def _barrier(self, warps: np.ndarray, active_counts: np.ndarray,
                 bus: EventBus) -> None:
        """The protocol's per-iteration sync; mask = the active lane set."""
        bus.emit(BarrierSync(phase="construct", warps=warps,
                             mask_lanes=active_counts,
                             active_lanes=active_counts))

    # ------------------------------------------------------------------

    def run(self, batch: Batch, tables: WarpHashTables,
            bus: EventBus) -> ConstructResult:
        W = self.warp_size
        n_warps = batch.n_warps
        ins_off = np.searchsorted(batch.ins_warp, np.arange(n_warps + 1))
        n_ins_w = np.diff(ins_off)
        max_waves = int(np.ceil(n_ins_w.max() / W)) if n_ins_w.size and n_ins_w.max() else 0
        chain = 0
        waves_run = 0
        dead = np.zeros(n_warps, dtype=bool)
        overflowed: list[int] = []
        want_lanes = bus.wants(SlotWrite)
        for t in range(max_waves):
            lo = ins_off[:-1] + t * W
            hi = np.minimum(lo + W, ins_off[1:])
            take = np.maximum(hi - lo, 0)
            idx = np.repeat(lo, take) + segmented_arange(take)
            if idx.size == 0:
                break
            if overflowed:
                idx = idx[~dead[batch.ins_warp[idx]]]
                if idx.size == 0:
                    continue
                wave_warps = int(np.unique(batch.ins_warp[idx]).size)
            else:
                wave_warps = int(np.count_nonzero(take))
            bus.emit(WaveExecuted(lanes=idx.size, warps=wave_warps))
            waves_run += 1
            # lane id within the warp's wave, for sanitizer provenance
            lanes = (idx - lo[batch.ins_warp[idx]]) if want_lanes else None
            iters, wave_overflowed = self._insert_wave(batch, tables, idx,
                                                       bus, lanes)
            chain += iters
            if wave_overflowed:
                overflowed.extend(wave_overflowed)
                dead[wave_overflowed] = True
        return ConstructResult(waves=waves_run, iterations=chain,
                               overflowed=tuple(overflowed))

    def _insert_wave(self, batch: Batch, tables: WarpHashTables,
                     idx: np.ndarray, bus: EventBus,
                     lanes: np.ndarray | None = None) -> tuple[int, list[int]]:
        """Probe until every lane of the wave has inserted.

        Returns ``(iterations, overflowed_warps)``; the second element
        is always empty unless :attr:`defer_overflow` is set.
        """
        proto = self.protocol
        warps = batch.ins_warp[idx]
        homes = batch.ins_home[idx]
        fps = batch.ins_fp[idx]
        exts = batch.ins_ext[idx]
        his = batch.ins_hi[idx]
        n = idx.size
        probe = np.zeros(n, dtype=np.int64)
        pending = np.ones(n, dtype=bool)
        iterations = 0
        overflowed: list[int] = []
        emit_slots = bus.wants(SlotAccess)
        emit_writes = bus.wants(SlotWrite)
        emit_sync = bus.wants(BarrierSync)

        def lane_of(sel: np.ndarray) -> np.ndarray | None:
            return lanes[sel] if lanes is not None else None

        while pending.any():
            p = np.nonzero(pending)[0]
            over = probe[p] >= tables.capacities[warps[p]]
            if over.any():
                if not self.defer_overflow:
                    j = int(p[np.nonzero(over)[0][0]])
                    w = int(warps[j])
                    raise HashTableFullError(
                        "hash table overflow during construction",
                        contig_id=int(batch.contig_ids[w]),
                        k=int(batch.seeds.shape[1]),
                        capacity=int(tables.capacities[w]),
                        probes=int(probe[j]),
                    )
                bad = np.unique(warps[p[over]])
                overflowed.extend(int(w) for w in bad)
                pending &= ~np.isin(warps, bad)
                if not pending.any():
                    break
                p = np.nonzero(pending)[0]
            iterations += 1
            uniq_warps, uniq_counts = np.unique(warps[p], return_counts=True)
            active_warps = int(uniq_warps.size)

            slots = tables.slot_of(warps[p], homes[p], probe[p])
            if emit_slots:
                bus.emit(SlotAccess(slots=slots, kind="probe"))
            occupied, slot_fp = tables.inspect(slots)
            key_compares = int(np.count_nonzero(occupied))

            done = np.zeros(p.size, dtype=bool)
            votes_matched = 0
            match = occupied & (slot_fp == fps[p])
            if match.any():
                sel = p[match]
                self._vote(tables, slots[match], exts[sel], his[sel],
                           warps[sel], lane_of(sel), bus, emit_writes)
                votes_matched = int(match.sum())
                done |= match

            cas_attempts = 0
            votes_claimed = 0
            votes_merged = 0
            empty = ~occupied
            if empty.any():
                e = np.nonzero(empty)[0]
                sel = p[e]
                winners_local = self._claim(tables, slots[e], fps[sel],
                                            warps[sel], lane_of(sel), bus,
                                            emit_writes)
                cas_attempts = e.size  # every empty observer issues a CAS
                win = e[winners_local]
                sel = p[win]
                self._vote(tables, slots[win], exts[sel], his[sel],
                           warps[sel], lane_of(sel), bus, emit_writes)
                votes_claimed = win.size
                done_claim = np.zeros(p.size, dtype=bool)
                done_claim[win] = True
                done |= done_claim
                losers = e[~winners_local]
                if proto.merges_in_iteration and losers.size:
                    # __match_any_sync: losers whose key equals the fresh
                    # winner's key merge their vote in this same iteration.
                    now_fp = tables.fp[slots[losers]]
                    same = now_fp == fps[p[losers]]
                    m = losers[same]
                    if m.size:
                        sel = p[m]
                        self._vote(tables, slots[m], exts[sel], his[sel],
                                   warps[sel], lane_of(sel), bus, emit_writes)
                        votes_merged = m.size
                        d = np.zeros(p.size, dtype=bool)
                        d[m] = True
                        done |= d
                # HIP/SYCL losers retry next iteration at the same probe.

            if emit_sync and proto.iteration_syncs:
                self._barrier(uniq_warps, uniq_counts, bus)
            bus.emit(ProbeIteration(
                phase="construct", lanes=p.size, warps=active_warps,
                key_compares=key_compares, cas_attempts=cas_attempts,
                votes_matched=votes_matched, votes_claimed=votes_claimed,
                votes_merged=votes_merged,
            ))
            mismatch = occupied & ~match
            probe[p[mismatch]] += 1
            pending[p[done]] = False
        return iterations, overflowed
