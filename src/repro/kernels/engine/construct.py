"""The construction phase: insertion waves + the atomicCAS insert protocol.

Lanes of each warp take consecutive k-mers of the contig's reads, in
*waves* of ``warp_size`` insertions; within a wave, lanes probe their
tables concurrently until every lane has inserted. Hash collisions
linear-probe; thread collisions (two lanes, same slot) are resolved by an
``atomicCAS`` winner, with losers retrying per the protocol
(:class:`~repro.kernels.engine.backend.ProtocolCosts`) — within the same
iteration for the CUDA ``__match_any_sync`` port, on the next iteration
for HIP/SYCL.

All measured quantities leave the phase as events
(:class:`~repro.kernels.engine.events.WaveExecuted`,
:class:`~repro.kernels.engine.events.ProbeIteration`,
:class:`~repro.kernels.engine.events.SlotAccess`); the phase itself never
touches a profile or traffic ledger. When a sanitizer subscribes, the
phase additionally emits :class:`~repro.kernels.engine.events.SlotWrite`
records at every slot-state commit and
:class:`~repro.kernels.engine.events.BarrierSync` records at every
protocol synchronization point — all gated on ``bus.wants``, so
unsanitized runs pay nothing. The commit/claim/barrier steps are small
overridable methods, which is how the deliberately-buggy demo backend
(:mod:`repro.sanitize.demo`) seeds the protocol violations the sanitizer
self-test must catch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HashTableFullError
from repro.kernels.engine.events import (
    NO_WARPS,
    BarrierSync,
    EventBus,
    ProbeIteration,
    ProbeWarps,
    SlotAccess,
    SlotWrite,
    WaveExecuted,
    WaveWarps,
)
from repro.kernels.engine.prepare import (
    Batch,
    run_length_sorted,
    segmented_arange,
)
from repro.kernels.vectortable import WarpHashTables


@dataclass(frozen=True)
class ConstructResult:
    """Serial-chain statistics of one launch's construction phase."""

    waves: int          #: lockstep waves executed
    iterations: int     #: lockstep insert-probe iterations
    #: Warps whose table overflowed (only under deferred overflow; the
    #: default raising mode never returns with overflows).
    overflowed: tuple[int, ...] = ()


class ConstructPhase:
    """Runs all construction waves of a launch, emitting events.

    ``defer_overflow`` selects what a full table does: ``False`` (the
    default) raises an enriched
    :class:`~repro.errors.HashTableFullError`; ``True`` retires every
    pending lane of the overflowed warp, excludes that warp from the
    remaining waves, and reports it in
    :attr:`ConstructResult.overflowed` so the engine can drop or retry
    the contig (the paper's ``*hashtable full*`` semantics).
    """

    def __init__(self, protocol, warp_size: int,
                 defer_overflow: bool = False,
                 attribution: bool = False) -> None:
        self.protocol = protocol
        self.warp_size = warp_size
        self.defer_overflow = defer_overflow
        #: Emit per-warp attribution evidence (WaveWarps / ProbeWarps) so
        #: a multi-tenant megabatch can be decomposed per job. Explicit
        #: opt-in (the coalescing driver sets it): wants-gating alone
        #: would also fire for declare-nothing subscribers like the bench
        #: EventCounter, changing solo event streams.
        self.attribution = attribution
        # Wave-local vote accumulator (see :meth:`_vote`): ``None`` means
        # votes apply immediately (the scalar oracle path).
        self._vote_acc: tuple | None = None

    # ------------------------------------------------------------------
    # slot-state commit hooks (overridden by the buggy demo backend)

    def _claim(self, tables: WarpHashTables, slots: np.ndarray,
               fps: np.ndarray, warps: np.ndarray,
               lanes: np.ndarray | None, bus: EventBus,
               emit_writes: bool) -> np.ndarray:
        """atomicCAS tag claim; exactly one winner per distinct slot."""
        if emit_writes:
            bus.emit(SlotWrite(phase="construct", kind="claim", slots=slots,
                               warps=warps, lanes=lanes, atomic=True))
        return tables.claim(slots, fps)

    def _vote(self, tables: WarpHashTables, slots: np.ndarray,
              exts: np.ndarray, his: np.ndarray, warps: np.ndarray,
              lanes: np.ndarray | None, bus: EventBus,
              emit_writes: bool) -> None:
        """atomicAdd vote accumulation on the slot value region.

        Construction never reads the vote counters back (only the walk
        does, after the phase completes), and integer atomicAdd commutes —
        so when a wave-local accumulator is armed the adds are queued and
        applied in one compacted :meth:`~repro.kernels.vectortable.\
WarpHashTables.vote` call per wave instead of up to three per probe
        iteration. Slot-write events still fire per iteration, in order.
        """
        if emit_writes:
            bus.emit(SlotWrite(phase="construct", kind="vote", slots=slots,
                               warps=warps, lanes=lanes, atomic=True))
        if self._vote_acc is None:
            tables.vote(slots, exts, his)
        else:
            acc_slots, acc_exts, acc_his = self._vote_acc
            acc_slots.append(slots)
            acc_exts.append(exts)
            acc_his.append(his)

    def _barrier(self, warps: np.ndarray, active_counts: np.ndarray,
                 bus: EventBus) -> None:
        """The protocol's per-iteration sync; mask = the active lane set."""
        bus.emit(BarrierSync(phase="construct", warps=warps,
                             mask_lanes=active_counts,
                             active_lanes=active_counts))

    # ------------------------------------------------------------------

    def run(self, batch: Batch, tables: WarpHashTables,
            bus: EventBus) -> ConstructResult:
        W = self.warp_size
        n_warps = batch.n_warps
        ins_off = np.searchsorted(batch.ins_warp, np.arange(n_warps + 1))
        n_ins_w = np.diff(ins_off)
        max_waves = int(np.ceil(n_ins_w.max() / W)) if n_ins_w.size and n_ins_w.max() else 0
        chain = 0
        waves_run = 0
        dead = np.zeros(n_warps, dtype=bool)
        overflowed: list[int] = []
        want_lanes = bus.wants(SlotWrite)
        emit_warpstats = self.attribution and bus.wants(WaveWarps)
        # Construction never reads the vote counters back (only the walk
        # phase does, after this method returns), so the megabatch wave
        # loop queues every vote and applies them in one compacted
        # scatter-add at the end of the launch.
        acc_slots: list = []
        acc_exts: list = []
        acc_his: list = []
        self._vote_acc = (acc_slots, acc_exts, acc_his)
        for t in range(max_waves):
            lo = ins_off[:-1] + t * W
            hi = np.minimum(lo + W, ins_off[1:])
            take = np.maximum(hi - lo, 0)
            idx = np.repeat(lo, take) + segmented_arange(take)
            if idx.size == 0:
                break
            if overflowed:
                idx = idx[~dead[batch.ins_warp[idx]]]
                if idx.size == 0:
                    continue
                wave_warps = int(run_length_sorted(batch.ins_warp[idx])[0].size)
            else:
                wave_warps = int(np.count_nonzero(take))
            bus.emit(WaveExecuted(lanes=idx.size, warps=wave_warps))
            if emit_warpstats:
                bus.emit(WaveWarps(lane_warps=batch.ins_warp[idx]))
            waves_run += 1
            # lane id within the warp's wave, for sanitizer provenance
            lanes = (idx - lo[batch.ins_warp[idx]]) if want_lanes else None
            iters, wave_overflowed = self._insert_wave(batch, tables, idx,
                                                       bus, lanes)
            chain += iters
            if wave_overflowed:
                overflowed.extend(wave_overflowed)
                dead[wave_overflowed] = True
        self._vote_acc = None
        if acc_slots:
            tables.vote(np.concatenate(acc_slots),
                        np.concatenate(acc_exts),
                        np.concatenate(acc_his))
        return ConstructResult(waves=waves_run, iterations=chain,
                               overflowed=tuple(overflowed))

    def _insert_wave(self, batch: Batch, tables: WarpHashTables,
                     idx: np.ndarray, bus: EventBus,
                     lanes: np.ndarray | None = None) -> tuple[int, list[int]]:
        """Probe until every lane of the wave has inserted.

        The pending lane set is kept *persistently compacted*: ``p`` (and
        its aligned probe counters) shrinks as lanes retire, instead of
        being re-derived from a full-wave boolean mask with ``nonzero``
        (and re-``unique``-d) every probe iteration. Late iterations —
        where only a few colliding lanes remain — therefore cost work
        proportional to the stragglers, not the wave. Event emission
        (order, contents) is bit-identical to the pre-compaction loop,
        which survives as :class:`~repro.kernels.engine.oracle.\
ScalarOracleConstructPhase`.

        Returns ``(iterations, overflowed_warps)``; the second element
        is always empty unless :attr:`defer_overflow` is set.
        """
        proto = self.protocol
        warps = batch.ins_warp[idx]
        homes = batch.ins_home[idx]
        fps = batch.ins_fp[idx]
        exts = batch.ins_ext[idx]
        his = batch.ins_hi[idx]
        n = idx.size
        p = np.arange(n, dtype=np.int64)
        probe_p = np.zeros(n, dtype=np.int64)
        # Pending-set state gathered once per wave and compacted alongside
        # ``p`` each iteration, so the loop never re-gathers warp ids,
        # homes, fingerprints, or table geometry from the full wave.
        wp = warps
        hp = homes.astype(np.int64)
        fpp = fps
        caps_p = tables.capacities[warps]
        offs_p = tables.offsets[warps]
        iterations = 0
        overflowed: list[int] = []
        emit_slots = bus.wants(SlotAccess)
        emit_writes = bus.wants(SlotWrite)
        emit_sync = bus.wants(BarrierSync)
        emit_probe_warps = self.attribution and bus.wants(ProbeWarps)
        want_sync = emit_sync and proto.iteration_syncs
        # Probe offsets grow by at most one per iteration, so no lane can
        # wrap before iteration min(caps): skip the overflow scan until
        # a wrap is actually reachable.
        min_cap = int(caps_p.min()) if caps_p.size else 0

        def lane_of(sel: np.ndarray) -> np.ndarray | None:
            return lanes[sel] if lanes is not None else None

        while p.size:
            if iterations >= min_cap and (probe_p >= caps_p).any():
                over = probe_p >= caps_p
                if not self.defer_overflow:
                    j = int(np.nonzero(over)[0][0])
                    w = int(wp[j])
                    raise HashTableFullError(
                        "hash table overflow during construction",
                        contig_id=int(batch.contig_ids[w]),
                        k=int(batch.seeds.shape[1]),
                        capacity=int(tables.capacities[w]),
                        probes=int(probe_p[j]),
                    )
                bad = run_length_sorted(wp[over])[0]
                overflowed.extend(np.asarray(bad).tolist())
                keep = ~np.isin(wp, bad)
                p, probe_p = p[keep], probe_p[keep]
                wp, hp, fpp = wp[keep], hp[keep], fpp[keep]
                caps_p, offs_p = caps_p[keep], offs_p[keep]
                if not p.size:
                    break
                min_cap = int(caps_p.min())
            iterations += 1
            if want_sync:
                uniq_warps, uniq_counts = run_length_sorted(wp)
                active_warps = int(uniq_warps.size)
            else:
                # ``wp`` stays warp-sorted; the event only needs the count.
                active_warps = (1 + int(np.count_nonzero(wp[1:] != wp[:-1]))
                                if wp.size else 0)

            # Probe offsets were bounds-checked against ``caps_p`` above,
            # so the linear-probe address arithmetic of ``slot_of`` can run
            # directly on the compacted geometry arrays.
            slots = offs_p + (hp + probe_p) % caps_p
            if emit_slots:
                bus.emit(SlotAccess(slots=slots, kind="probe"))
            occupied, slot_fp = tables.inspect(slots)
            key_compares = int(np.count_nonzero(occupied))

            votes_matched = 0
            cas_w = claim_w = merge_w = NO_WARPS
            match = occupied & (slot_fp == fpp)
            done = match
            midx = np.nonzero(match)[0]
            if midx.size:
                sel = p[midx]
                self._vote(tables, slots[midx], exts[sel], his[sel],
                           wp[midx], lane_of(sel), bus, emit_writes)
                votes_matched = midx.size

            cas_attempts = 0
            votes_claimed = 0
            votes_merged = 0
            if key_compares < p.size:  # some slot observed empty
                e = np.nonzero(~occupied)[0]
                sel = p[e]
                winners_local = self._claim(tables, slots[e], fpp[e],
                                            wp[e], lane_of(sel), bus,
                                            emit_writes)
                cas_attempts = e.size  # every empty observer issues a CAS
                if emit_probe_warps:
                    cas_w = wp[e]
                win = e[winners_local]
                sel = p[win]
                self._vote(tables, slots[win], exts[sel], his[sel],
                           wp[win], lane_of(sel), bus, emit_writes)
                votes_claimed = win.size
                if emit_probe_warps:
                    claim_w = wp[win]
                done = done.copy()
                done[win] = True
                losers = e[~winners_local]
                if proto.merges_in_iteration and losers.size:
                    # __match_any_sync: losers whose key equals the fresh
                    # winner's key merge their vote in this same iteration.
                    now_fp = tables.fp[slots[losers]]
                    same = now_fp == fpp[losers]
                    m = losers[same]
                    if m.size:
                        sel = p[m]
                        self._vote(tables, slots[m], exts[sel], his[sel],
                                   wp[m], lane_of(sel), bus, emit_writes)
                        votes_merged = m.size
                        if emit_probe_warps:
                            merge_w = wp[m]
                        done[m] = True
                # HIP/SYCL losers retry next iteration at the same probe.

            if want_sync:
                self._barrier(uniq_warps, uniq_counts, bus)
            bus.emit(ProbeIteration(
                phase="construct", lanes=p.size, warps=active_warps,
                key_compares=key_compares, cas_attempts=cas_attempts,
                votes_matched=votes_matched, votes_claimed=votes_claimed,
                votes_merged=votes_merged,
            ))
            if emit_probe_warps:
                bus.emit(ProbeWarps(
                    phase="construct", pending_warps=wp,
                    compare_warps=wp[occupied], cas_warps=cas_w,
                    matched_warps=wp[midx], claimed_warps=claim_w,
                    merged_warps=merge_w,
                ))
            retired = votes_matched + votes_claimed + votes_merged
            # Occupied-but-mismatched lanes advance their probe; a single
            # elementwise add of the boolean beats masked assignment.
            occupied ^= match
            probe_p += occupied
            if retired:
                # One ``nonzero`` shared by all seven gathers (boolean
                # masks would re-derive the index list per array).
                live = np.nonzero(~done)[0]
                p, probe_p = p[live], probe_p[live]
                wp, hp, fpp = wp[live], hp[live], fpp[live]
                caps_p, offs_p = caps_p[live], offs_p[live]
        return iterations, overflowed
