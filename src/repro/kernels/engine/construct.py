"""The construction phase: insertion waves + the atomicCAS insert protocol.

Lanes of each warp take consecutive k-mers of the contig's reads, in
*waves* of ``warp_size`` insertions; within a wave, lanes probe their
tables concurrently until every lane has inserted. Hash collisions
linear-probe; thread collisions (two lanes, same slot) are resolved by an
``atomicCAS`` winner, with losers retrying per the protocol
(:class:`~repro.kernels.engine.backend.ProtocolCosts`) — within the same
iteration for the CUDA ``__match_any_sync`` port, on the next iteration
for HIP/SYCL.

All measured quantities leave the phase as events
(:class:`~repro.kernels.engine.events.WaveExecuted`,
:class:`~repro.kernels.engine.events.ProbeIteration`,
:class:`~repro.kernels.engine.events.SlotAccess`); the phase itself never
touches a profile or traffic ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HashTableFullError
from repro.kernels.engine.events import EventBus, ProbeIteration, SlotAccess, WaveExecuted
from repro.kernels.engine.prepare import Batch, segmented_arange
from repro.kernels.vectortable import WarpHashTables


@dataclass(frozen=True)
class ConstructResult:
    """Serial-chain statistics of one launch's construction phase."""

    waves: int          #: lockstep waves executed
    iterations: int     #: lockstep insert-probe iterations
    #: Warps whose table overflowed (only under deferred overflow; the
    #: default raising mode never returns with overflows).
    overflowed: tuple[int, ...] = ()


class ConstructPhase:
    """Runs all construction waves of a launch, emitting events.

    ``defer_overflow`` selects what a full table does: ``False`` (the
    default) raises an enriched
    :class:`~repro.errors.HashTableFullError`; ``True`` retires every
    pending lane of the overflowed warp, excludes that warp from the
    remaining waves, and reports it in
    :attr:`ConstructResult.overflowed` so the engine can drop or retry
    the contig (the paper's ``*hashtable full*`` semantics).
    """

    def __init__(self, protocol, warp_size: int,
                 defer_overflow: bool = False) -> None:
        self.protocol = protocol
        self.warp_size = warp_size
        self.defer_overflow = defer_overflow

    def run(self, batch: Batch, tables: WarpHashTables,
            bus: EventBus) -> ConstructResult:
        W = self.warp_size
        n_warps = batch.n_warps
        ins_off = np.searchsorted(batch.ins_warp, np.arange(n_warps + 1))
        n_ins_w = np.diff(ins_off)
        max_waves = int(np.ceil(n_ins_w.max() / W)) if n_ins_w.size and n_ins_w.max() else 0
        chain = 0
        waves_run = 0
        dead = np.zeros(n_warps, dtype=bool)
        overflowed: list[int] = []
        for t in range(max_waves):
            lo = ins_off[:-1] + t * W
            hi = np.minimum(lo + W, ins_off[1:])
            take = np.maximum(hi - lo, 0)
            idx = np.repeat(lo, take) + segmented_arange(take)
            if idx.size == 0:
                break
            if overflowed:
                idx = idx[~dead[batch.ins_warp[idx]]]
                if idx.size == 0:
                    continue
                wave_warps = int(np.unique(batch.ins_warp[idx]).size)
            else:
                wave_warps = int(np.count_nonzero(take))
            bus.emit(WaveExecuted(lanes=idx.size, warps=wave_warps))
            waves_run += 1
            iters, wave_overflowed = self._insert_wave(batch, tables, idx, bus)
            chain += iters
            if wave_overflowed:
                overflowed.extend(wave_overflowed)
                dead[wave_overflowed] = True
        return ConstructResult(waves=waves_run, iterations=chain,
                               overflowed=tuple(overflowed))

    def _insert_wave(self, batch: Batch, tables: WarpHashTables,
                     idx: np.ndarray, bus: EventBus) -> tuple[int, list[int]]:
        """Probe until every lane of the wave has inserted.

        Returns ``(iterations, overflowed_warps)``; the second element
        is always empty unless :attr:`defer_overflow` is set.
        """
        proto = self.protocol
        warps = batch.ins_warp[idx]
        homes = batch.ins_home[idx]
        fps = batch.ins_fp[idx]
        exts = batch.ins_ext[idx]
        his = batch.ins_hi[idx]
        n = idx.size
        probe = np.zeros(n, dtype=np.int64)
        pending = np.ones(n, dtype=bool)
        iterations = 0
        overflowed: list[int] = []
        emit_slots = bus.wants(SlotAccess)
        while pending.any():
            p = np.nonzero(pending)[0]
            over = probe[p] >= tables.capacities[warps[p]]
            if over.any():
                if not self.defer_overflow:
                    j = int(p[np.nonzero(over)[0][0]])
                    w = int(warps[j])
                    raise HashTableFullError(
                        "hash table overflow during construction",
                        contig_id=int(batch.contig_ids[w]),
                        k=int(batch.seeds.shape[1]),
                        capacity=int(tables.capacities[w]),
                        probes=int(probe[j]),
                    )
                bad = np.unique(warps[p[over]])
                overflowed.extend(int(w) for w in bad)
                pending &= ~np.isin(warps, bad)
                if not pending.any():
                    break
                p = np.nonzero(pending)[0]
            iterations += 1
            active_warps = int(np.unique(warps[p]).size)

            slots = tables.slot_of(warps[p], homes[p], probe[p])
            if emit_slots:
                bus.emit(SlotAccess(slots=slots))
            occupied, slot_fp = tables.inspect(slots)
            key_compares = int(np.count_nonzero(occupied))

            done = np.zeros(p.size, dtype=bool)
            votes_matched = 0
            match = occupied & (slot_fp == fps[p])
            if match.any():
                tables.vote(slots[match], exts[p[match]], his[p[match]])
                votes_matched = int(match.sum())
                done |= match

            cas_attempts = 0
            votes_claimed = 0
            votes_merged = 0
            empty = ~occupied
            if empty.any():
                e = np.nonzero(empty)[0]
                winners_local = tables.claim(slots[e], fps[p[e]])
                cas_attempts = e.size  # every empty observer issues a CAS
                win = e[winners_local]
                tables.vote(slots[win], exts[p[win]], his[p[win]])
                votes_claimed = win.size
                done_claim = np.zeros(p.size, dtype=bool)
                done_claim[win] = True
                done |= done_claim
                losers = e[~winners_local]
                if proto.merges_in_iteration and losers.size:
                    # __match_any_sync: losers whose key equals the fresh
                    # winner's key merge their vote in this same iteration.
                    now_fp = tables.fp[slots[losers]]
                    same = now_fp == fps[p[losers]]
                    m = losers[same]
                    if m.size:
                        tables.vote(slots[m], exts[p[m]], his[p[m]])
                        votes_merged = m.size
                        d = np.zeros(p.size, dtype=bool)
                        d[m] = True
                        done |= d
                # HIP/SYCL losers retry next iteration at the same probe.

            bus.emit(ProbeIteration(
                phase="construct", lanes=p.size, warps=active_warps,
                key_compares=key_compares, cas_attempts=cas_attempts,
                votes_matched=votes_matched, votes_claimed=votes_claimed,
                votes_merged=votes_merged,
            ))
            mismatch = occupied & ~match
            probe[p[mismatch]] += 1
            pending[p[done]] = False
        return iterations, overflowed
