"""The walk phase: one lane per warp mer-walks from the contig-end seed.

The other lanes are predicated off while one lane walks; the terminal
state is broadcast with a shuffle. Everything is vectorized across
warps as one lockstep array program (DESIGN.md decision #14): per-warp
loop-detection state lives in a vectorized open-addressed fingerprint
set (:class:`VisitedFingerprintSet`), committed bases land in a
preallocated ``(n_warps, max_walk_len)`` int8 matrix decoded once at
the end, and terminal/advance bookkeeping is mask assignments — the
Python-level loops are over walk steps and probe iterations, never
over lanes or warps (lint rule REP006 enforces this). The pre-refactor
per-warp code path survives verbatim as the parity oracle
(:class:`repro.kernels.engine.oracle.ScalarOracleWalkPhase`).

Measured quantities leave the phase as events
(:class:`~repro.kernels.engine.events.WalkStep`,
:class:`~repro.kernels.engine.events.ProbeIteration`,
:class:`~repro.kernels.engine.events.SlotAccess`); the phase never
mutates a profile or traffic ledger. When a sanitizer subscribes, the
phase additionally emits :class:`~repro.kernels.engine.events.SlotRead`
records where it resolves votes, so the initcheck sanitizer can flag
reads of never-written slot value regions (gated on ``bus.wants``;
unsanitized runs pay nothing). The probe-miss bookkeeping is an
overridable method — the deliberately-buggy demo backend
(:mod:`repro.sanitize.demo`) overrides it to read votes from empty
slots, the bug initcheck must catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.extension import (
    CODE_TO_WALK_STATE,
    DEFAULT_POLICY,
    STATE_CODES,
    WALK_STATE_CODES,
    WalkPolicy,
    WalkState,
    resolve_extension_batch,
)
from repro.core.merwalk import DEFAULT_MAX_WALK_LEN
from repro.errors import HashTableFullError
from repro.genomics.dna import decode_matrix, encode
from repro.genomics.kmer import fingerprint_matrix, shift_fingerprints
from repro.hashing.murmur import murmur2_batch
from repro.kernels.engine.events import (
    NO_WARPS,
    EventBus,
    ProbeIteration,
    ProbeWarps,
    SlotAccess,
    SlotRead,
    WalkStep,
    WalkStepWarps,
)
from repro.kernels.engine.prepare import Batch
from repro.kernels.vectortable import WarpHashTables

_EXTEND = STATE_CODES[WalkState.EXTEND]
_END = WALK_STATE_CODES[WalkState.END]
_LOOP = WALK_STATE_CODES[WalkState.LOOP]
_MAX_LEN = WALK_STATE_CODES[WalkState.MAX_LEN]
_MISSING = WALK_STATE_CODES[WalkState.MISSING]

#: 64-bit odd multiplier (splitmix64 finalizer constant) spreading
#: fingerprints over the visited-set buckets.
_VISITED_MIX = np.uint64(0x9E3779B97F4A7C15)


class VisitedFingerprintSet:
    """Per-warp open-addressed fingerprint sets, probed in lockstep.

    One flat ``(n_warps, capacity)`` table replaces the walk's old
    ``list[set]`` loop-detection state; membership tests and inserts for
    *all* still-walking warps run as one vectorized linear-probe round
    per collision depth. Capacity is the next power of two past twice
    ``max_entries``, so load never exceeds one half and probing always
    terminates at an empty bucket.

    Within one call every warp appears at most once (a walking warp
    queries exactly one next-k-mer fingerprint per step), so the batched
    insert has no same-bucket write conflicts to resolve.
    """

    def __init__(self, n_warps: int, max_entries: int) -> None:
        cap = 1 << max(2, int(2 * max(1, max_entries) - 1).bit_length())
        self._mask = np.uint64(cap - 1)
        self._fp = np.zeros((n_warps, cap), dtype=np.uint64)
        self._used = np.zeros((n_warps, cap), dtype=bool)

    def _bucket(self, fps: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            mixed = fps.astype(np.uint64) * _VISITED_MIX
        return ((mixed >> np.uint64(32)) ^ mixed) & self._mask

    def add(self, warps: np.ndarray, fps: np.ndarray) -> None:
        """Insert fingerprints (duplicates are ignored)."""
        self.seen_or_add(warps, fps)

    def seen_or_add(self, warps: np.ndarray, fps: np.ndarray) -> np.ndarray:
        """Membership mask; fingerprints not yet present are inserted.

        Mirrors the oracle's ``if fp in visited[w]: ... else visited[w].add``
        pair as a single lockstep operation: rows already containing the
        fingerprint return True and are left unchanged.
        """
        fps = np.asarray(fps, dtype=np.uint64)
        seen = np.zeros(fps.size, dtype=bool)
        live = np.arange(fps.size, dtype=np.int64)
        pos = self._bucket(fps)
        while live.size:
            w = warps[live]
            used = self._used[w, pos]
            match = used & (self._fp[w, pos] == fps[live])
            seen[live[match]] = True
            empty = ~used
            if empty.any():
                e = live[empty]
                self._used[warps[e], pos[empty]] = True
                self._fp[warps[e], pos[empty]] = fps[e]
            cont = used & ~match
            pos = (pos[cont] + np.uint64(1)) & self._mask
            live = live[cont]
        return seen


@dataclass
class WalkOutput:
    """Functional + serial-chain output of one launch's walk phase.

    The lockstep representation is primary: committed bases live in the
    preallocated ``(n_warps, max_walk_len)`` ``base_codes`` matrix
    (left-aligned, ``base_lens`` valid columns per row) and terminal
    states in the int8 ``state_codes`` array
    (:data:`~repro.core.extension.WALK_STATE_CODES`). The string/enum
    views the pre-refactor engine returned are derived on demand.
    """

    base_codes: np.ndarray      #: (n_warps, max_walk_len) committed bases
    base_lens: np.ndarray       #: valid base count per warp
    state_codes: np.ndarray     #: terminal WALK_STATE_CODES per warp
    steps: int                  #: lockstep walk steps executed
    iterations: int             #: lockstep lookup-probe iterations
    #: Warps whose lookup wrapped a full table (deferred overflow only).
    overflowed: tuple[int, ...] = ()
    _bases: list[str] | None = field(default=None, repr=False)

    @property
    def bases(self) -> list[str]:
        """Extension string per warp (decoded once, then cached)."""
        if self._bases is None:
            self._bases = decode_matrix(self.base_codes, self.base_lens)
        return self._bases

    @property
    def states(self) -> list[WalkState]:
        """Terminal :class:`WalkState` per warp (derived view)."""
        return [CODE_TO_WALK_STATE[int(c)] for c in self.state_codes]

    @classmethod
    def from_scalar(cls, bases: list[str], states: list[WalkState],
                    steps: int, iterations: int,
                    overflowed: tuple[int, ...],
                    max_walk_len: int) -> "WalkOutput":
        """Pack per-warp Python results (the oracle's) into lockstep form."""
        n = len(bases)
        codes = np.zeros((n, max_walk_len), dtype=np.uint8)
        lens = np.zeros(n, dtype=np.int64)
        for w, b in enumerate(bases):
            lens[w] = len(b)
            if b:
                codes[w, :len(b)] = encode(b)
        state_codes = np.asarray([WALK_STATE_CODES[s] for s in states],
                                 dtype=np.int8)
        return cls(base_codes=codes, base_lens=lens, state_codes=state_codes,
                   steps=steps, iterations=iterations,
                   overflowed=tuple(overflowed))


class WalkPhase:
    """Mer-walks every warp's seed in lockstep, emitting events.

    ``defer_overflow`` mirrors :class:`ConstructPhase`: a lookup that
    wraps a completely full table (possible when construction exactly
    filled it) either raises an enriched
    :class:`~repro.errors.HashTableFullError` (default) or terminates
    that warp's walk and reports it in :attr:`WalkOutput.overflowed`.
    """

    def __init__(self, policy: WalkPolicy = DEFAULT_POLICY,
                 max_walk_len: int = DEFAULT_MAX_WALK_LEN,
                 seed: int = 0, defer_overflow: bool = False,
                 attribution: bool = False) -> None:
        self.policy = policy
        self.max_walk_len = max_walk_len
        self.seed = seed
        self.defer_overflow = defer_overflow
        #: Emit per-warp attribution evidence (ProbeWarps/WalkStepWarps)
        #: for multi-tenant decomposition; explicit opt-in by the
        #: coalescing driver (see :class:`ConstructPhase`).
        self.attribution = attribution

    def _on_probe_miss(self, found_slot: np.ndarray, missing: np.ndarray,
                       u: np.ndarray, miss: np.ndarray,
                       slots: np.ndarray) -> None:
        """An empty slot ends the lookup: the key is absent.

        Overridable so the buggy demo backend can instead treat the empty
        slot as found and read its (never-written) votes.
        """
        missing[u[miss]] = True

    def _lookup(self, a: np.ndarray, homes: np.ndarray, fps: np.ndarray,
                batch: Batch, tables: WarpHashTables, bus: EventBus,
                cur_k: int, emit_slots: bool,
                overflowed: list[int]) -> tuple[np.ndarray, np.ndarray, int]:
        """Probe all walking warps for their current key, in lockstep.

        Returns ``(found_slot, missing, iterations)`` over ``a``-aligned
        arrays. The pending set is kept *compacted*: ``u`` shrinks as
        lanes resolve instead of being re-derived from a full-size mask
        every round, so late probe rounds touch only the stragglers.
        """
        found_slot = np.full(a.size, -1, dtype=np.int64)
        missing = np.zeros(a.size, dtype=bool)
        u = np.arange(a.size, dtype=np.int64)
        probe_u = np.zeros(a.size, dtype=np.int64)
        iterations = 0
        emit_probe_warps = self.attribution and bus.wants(ProbeWarps)
        while u.size:
            over = probe_u >= tables.capacities[a[u]]
            if over.any():
                # A wrapped probe means the table is completely full
                # and the key absent; the open-addressing loop would
                # never terminate.
                if not self.defer_overflow:
                    j = int(np.nonzero(over)[0][0])
                    w = int(a[u[j]])
                    raise HashTableFullError(
                        "hash table wrapped during walk lookup",
                        contig_id=int(batch.contig_ids[w]),
                        k=cur_k,
                        capacity=int(tables.capacities[w]),
                        probes=int(probe_u[j]),
                    )
                bad = u[over]
                overflowed.extend(np.asarray(a[bad]).tolist())
                missing[bad] = True
                keep = ~over
                u = u[keep]
                probe_u = probe_u[keep]
                if not u.size:
                    break
            iterations += 1
            slots = tables.slot_of(a[u], homes[u], probe_u)
            if emit_slots:
                bus.emit(SlotAccess(slots=slots, kind="probe"))
            occupied, slot_fp = tables.inspect(slots)
            bus.emit(ProbeIteration(
                phase="walk", lanes=u.size, warps=u.size,
                key_compares=int(np.count_nonzero(occupied)),
            ))
            if emit_probe_warps:
                au = a[u]
                bus.emit(ProbeWarps(
                    phase="walk", pending_warps=au,
                    compare_warps=au[occupied], cas_warps=NO_WARPS,
                    matched_warps=NO_WARPS, claimed_warps=NO_WARPS,
                    merged_warps=NO_WARPS,
                ))
            hit = occupied & (slot_fp == fps[u])
            found_slot[u[hit]] = slots[hit]
            miss = ~occupied
            self._on_probe_miss(found_slot, missing, u, miss, slots)
            cont = occupied & ~hit
            probe_u = probe_u[cont] + 1
            u = u[cont]
        return found_slot, missing, iterations

    def run(self, batch: Batch, tables: WarpHashTables,
            bus: EventBus) -> WalkOutput:
        n_warps = batch.n_warps
        max_len = self.max_walk_len
        cur = batch.seeds.copy()
        alive = batch.seed_valid.copy()
        base_codes = np.zeros((n_warps, max_len), dtype=np.uint8)
        base_lens = np.zeros(n_warps, dtype=np.int64)
        state_codes = np.full(n_warps, _MISSING, dtype=np.int8)
        visited = VisitedFingerprintSet(n_warps, max_len + 1)
        first_step = np.ones(n_warps, dtype=bool)
        live = np.nonzero(alive)[0]
        # Current-k-mer fingerprints roll along with ``cur`` (one
        # shift_fingerprints update per advance) instead of re-evaluating
        # the k-wide polynomial every step.
        k = int(cur.shape[1])
        cur_fp = np.zeros(n_warps, dtype=np.uint64)
        if live.size:
            cur_fp[live] = fingerprint_matrix(cur[live])
            visited.add(live, cur_fp[live])
        chain = 0
        steps_run = 0
        overflowed: list[int] = []
        emit_slots = bus.wants(SlotAccess)
        emit_reads = bus.wants(SlotRead)
        emit_step_warps = self.attribution and bus.wants(WalkStepWarps)
        for _step in range(max_len + 1):
            if not alive.any():
                break
            steps_run += 1
            a = np.nonzero(alive)[0]
            if _step == max_len:
                state_codes[a] = _MAX_LEN
                break
            homes = murmur2_batch(cur[a], self.seed)
            fps = cur_fp[a]

            # probe for the key (or an empty slot = not present)
            found_slot, missing, iters = self._lookup(
                a, homes, fps, batch, tables, bus, k,
                emit_slots, overflowed)
            chain += iters

            # resolve extensions for found keys
            res_states = np.full(a.size, -2, dtype=np.int8)
            res_bases = np.full(a.size, -1, dtype=np.int8)
            f = found_slot >= 0
            vote_reads = int(f.sum())
            if f.any():
                if emit_reads:
                    bus.emit(SlotRead(phase="walk", kind="vote_read",
                                      slots=found_slot[f], warps=a[f]))
                hi_rows, lo_rows = tables.votes_at(found_slot[f])
                s, b = resolve_extension_batch(hi_rows, lo_rows, self.policy)
                res_states[f] = s
                res_bases[f] = b

            bases_committed = 0
            commit_w = NO_WARPS
            next_alive = alive.copy()
            advancing = ~missing & (res_states == _EXTEND)
            # terminal warps leave the walk as one mask assignment: a
            # missing key is MISSING on the first step and END after it,
            # any other non-advancing resolution keeps its resolver code
            terminal = a[missing]
            state_codes[terminal] = np.where(first_step[terminal],
                                             _MISSING, _END).astype(np.int8)
            resolved = ~missing & ~advancing
            state_codes[a[resolved]] = res_states[resolved]
            next_alive[a[missing | resolved]] = False
            if advancing.any():
                adv = np.nonzero(advancing)[0]
                aw = a[adv]
                dropped = cur[aw, 0]
                cur[aw, :-1] = cur[aw, 1:]
                cur[aw, -1] = res_bases[adv]
                cur_fp[aw] = shift_fingerprints(cur_fp[aw], dropped,
                                                res_bases[adv], k)
                seen = visited.seen_or_add(aw, cur_fp[aw])
                looped = aw[seen]
                state_codes[looped] = _LOOP
                next_alive[looped] = False
                ok = aw[~seen]
                base_codes[ok, base_lens[ok]] = res_bases[adv[~seen]].astype(
                    np.uint8)
                base_lens[ok] += 1
                bases_committed = int(ok.size)
                if emit_step_warps:
                    commit_w = ok
            bus.emit(WalkStep(walkers=a.size, vote_reads=vote_reads,
                              bases_committed=bases_committed))
            if emit_step_warps:
                bus.emit(WalkStepWarps(walker_warps=a,
                                       vote_read_warps=a[f],
                                       commit_warps=commit_w))
            first_step[a] = False
            alive = next_alive
        return WalkOutput(base_codes=base_codes, base_lens=base_lens,
                          state_codes=state_codes, steps=steps_run,
                          iterations=chain, overflowed=tuple(overflowed))
