"""The walk phase: one lane per warp mer-walks from the contig-end seed.

The other lanes are predicated off while one lane walks; the terminal
state is broadcast with a shuffle. Everything is vectorized across
warps: the Python-level loops are over walk steps and probe iterations,
never over lanes or warps.

Measured quantities leave the phase as events
(:class:`~repro.kernels.engine.events.WalkStep`,
:class:`~repro.kernels.engine.events.ProbeIteration`,
:class:`~repro.kernels.engine.events.SlotAccess`); the phase never
mutates a profile or traffic ledger. When a sanitizer subscribes, the
phase additionally emits :class:`~repro.kernels.engine.events.SlotRead`
records where it resolves votes, so the initcheck sanitizer can flag
reads of never-written slot value regions (gated on ``bus.wants``;
unsanitized runs pay nothing). The probe-miss bookkeeping is an
overridable method — the deliberately-buggy demo backend
(:mod:`repro.sanitize.demo`) overrides it to read votes from empty
slots, the bug initcheck must catch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.extension import (
    DEFAULT_POLICY,
    STATE_CODES,
    WalkPolicy,
    WalkState,
    resolve_extension_batch,
)
from repro.core.merwalk import DEFAULT_MAX_WALK_LEN
from repro.errors import HashTableFullError
from repro.genomics.kmer import fingerprint_matrix
from repro.hashing.murmur import murmur2_batch
from repro.kernels.engine.events import (
    EventBus,
    ProbeIteration,
    SlotAccess,
    SlotRead,
    WalkStep,
)
from repro.kernels.engine.prepare import Batch
from repro.kernels.vectortable import WarpHashTables

_CODE_TO_STATE = {v: k for k, v in STATE_CODES.items()}


@dataclass
class WalkOutput:
    """Functional + serial-chain output of one launch's walk phase."""

    bases: list[str]            #: extension per warp
    states: list[WalkState]     #: terminal state per warp
    steps: int                  #: lockstep walk steps executed
    iterations: int             #: lockstep lookup-probe iterations
    #: Warps whose lookup wrapped a full table (deferred overflow only).
    overflowed: tuple[int, ...] = ()


class WalkPhase:
    """Mer-walks every warp's seed, emitting events.

    ``defer_overflow`` mirrors :class:`ConstructPhase`: a lookup that
    wraps a completely full table (possible when construction exactly
    filled it) either raises an enriched
    :class:`~repro.errors.HashTableFullError` (default) or terminates
    that warp's walk and reports it in :attr:`WalkOutput.overflowed`.
    """

    def __init__(self, policy: WalkPolicy = DEFAULT_POLICY,
                 max_walk_len: int = DEFAULT_MAX_WALK_LEN,
                 seed: int = 0, defer_overflow: bool = False) -> None:
        self.policy = policy
        self.max_walk_len = max_walk_len
        self.seed = seed
        self.defer_overflow = defer_overflow

    def _on_probe_miss(self, found_slot: np.ndarray, missing: np.ndarray,
                       u: np.ndarray, miss: np.ndarray,
                       slots: np.ndarray) -> None:
        """An empty slot ends the lookup: the key is absent.

        Overridable so the buggy demo backend can instead treat the empty
        slot as found and read its (never-written) votes.
        """
        missing[u[miss]] = True

    def run(self, batch: Batch, tables: WarpHashTables,
            bus: EventBus) -> WalkOutput:
        n_warps = batch.n_warps
        cur = batch.seeds.copy()
        alive = batch.seed_valid.copy()
        bases: list[list[str]] = [[] for _ in range(n_warps)]
        states = [WalkState.MISSING] * n_warps
        visited: list[set] = [set() for _ in range(n_warps)]
        first_step = np.ones(n_warps, dtype=bool)
        live = np.nonzero(alive)[0]
        if live.size:
            for w, fp in zip(live, fingerprint_matrix(cur[live])):
                visited[w].add(int(fp))
        chain = 0
        steps_run = 0
        overflowed: list[int] = []
        emit_slots = bus.wants(SlotAccess)
        emit_reads = bus.wants(SlotRead)
        for _step in range(self.max_walk_len + 1):
            if not alive.any():
                break
            steps_run += 1
            a = np.nonzero(alive)[0]
            if _step == self.max_walk_len:
                for w in a:
                    states[w] = WalkState.MAX_LEN
                break
            homes = murmur2_batch(cur[a], self.seed)
            fps = fingerprint_matrix(cur[a])

            # probe for the key (or an empty slot = not present)
            found_slot = np.full(a.size, -1, dtype=np.int64)
            missing = np.zeros(a.size, dtype=bool)
            probe = np.zeros(a.size, dtype=np.int64)
            unresolved = np.ones(a.size, dtype=bool)
            while unresolved.any():
                u = np.nonzero(unresolved)[0]
                over = probe[u] >= tables.capacities[a[u]]
                if over.any():
                    # A wrapped probe means the table is completely full
                    # and the key absent; the open-addressing loop would
                    # never terminate.
                    if not self.defer_overflow:
                        j = int(u[np.nonzero(over)[0][0]])
                        w = int(a[j])
                        raise HashTableFullError(
                            "hash table wrapped during walk lookup",
                            contig_id=int(batch.contig_ids[w]),
                            k=int(cur.shape[1]),
                            capacity=int(tables.capacities[w]),
                            probes=int(probe[j]),
                        )
                    bad = u[over]
                    overflowed.extend(int(w) for w in a[bad])
                    missing[bad] = True
                    unresolved[bad] = False
                    if not unresolved.any():
                        break
                    u = np.nonzero(unresolved)[0]
                chain += 1
                slots = tables.slot_of(a[u], homes[u], probe[u])
                if emit_slots:
                    bus.emit(SlotAccess(slots=slots, kind="probe"))
                occupied, slot_fp = tables.inspect(slots)
                bus.emit(ProbeIteration(
                    phase="walk", lanes=u.size, warps=u.size,
                    key_compares=int(np.count_nonzero(occupied)),
                ))
                hit = occupied & (slot_fp == fps[u])
                found_slot[u[hit]] = slots[hit]
                miss = ~occupied
                self._on_probe_miss(found_slot, missing, u, miss, slots)
                probe[u[occupied & ~hit]] += 1
                unresolved[u[hit | miss]] = False

            # resolve extensions for found keys
            res_states = np.full(a.size, -2, dtype=np.int8)
            res_bases = np.full(a.size, -1, dtype=np.int8)
            f = found_slot >= 0
            vote_reads = int(f.sum())
            if f.any():
                if emit_reads:
                    bus.emit(SlotRead(phase="walk", kind="vote_read",
                                      slots=found_slot[f], warps=a[f]))
                hi_rows, lo_rows = tables.votes_at(found_slot[f])
                s, b = resolve_extension_batch(hi_rows, lo_rows, self.policy)
                res_states[f] = s
                res_bases[f] = b

            bases_committed = 0
            next_alive = alive.copy()
            advancing = ~missing & (res_states == STATE_CODES[WalkState.EXTEND])
            # terminal warps leave the walk; each warp terminates at most
            # once per launch, so these loops are O(n_warps) overall
            for w in a[missing]:
                states[w] = WalkState.MISSING if first_step[w] else WalkState.END
                next_alive[w] = False
            for j in np.nonzero(~missing & ~advancing)[0]:
                w = a[j]
                states[w] = _CODE_TO_STATE[int(res_states[j])]
                next_alive[w] = False
            if advancing.any():
                adv = np.nonzero(advancing)[0]
                aw = a[adv]
                cur[aw, :-1] = cur[aw, 1:]
                cur[aw, -1] = res_bases[adv]
                fps_next = fingerprint_matrix(cur[aw])
                for j, w, fp in zip(adv, aw, fps_next):
                    fp_next = int(fp)
                    if fp_next in visited[w]:
                        states[w] = WalkState.LOOP
                        next_alive[w] = False
                        continue
                    visited[w].add(fp_next)
                    bases[w].append("ACGT"[int(res_bases[j])])
                    bases_committed += 1
            bus.emit(WalkStep(walkers=a.size, vote_reads=vote_reads,
                              bases_committed=bases_committed))
            first_step[a] = False
            alive = next_alive
        return WalkOutput(bases=["".join(b) for b in bases], states=states,
                          steps=steps_run, iterations=chain,
                          overflowed=tuple(overflowed))
