"""Execution backends: the protocol, the registry, and the scalar port.

A *backend* is anything that can execute the local-assembly workflow —
the three SIMT vendor ports (CUDA / HIP / SYCL, thin
:class:`ProtocolCosts` + warp-size configurations over the shared
engine) and the scalar CPU reference wrapping
:class:`repro.core.pipeline.LocalAssembler`'s machinery. All of them
implement :class:`ExecutionBackend` and register themselves in one
registry, so the experiment suite, the CLI, and the benchmarks select
execution paths by name rather than by import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.core.construct import build_table, insertions_for
from repro.core.extension import DEFAULT_POLICY, WalkPolicy, WalkState
from repro.core.merwalk import DEFAULT_MAX_WALK_LEN, mer_walk
from repro.errors import HashTableFullError, KernelError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import reverse_complement
from repro.genomics.reads import Read, ReadSet
from repro.kernels.engine.schedule import SideArrays, iterate_k_schedule
from repro.simt.counters import KernelProfile
from repro.simt.device import DeviceSpec


@dataclass(frozen=True)
class ProtocolCosts:
    """Where the three SIMT ports differ (paper Appendix A).

    Attributes:
        name: "CUDA" / "HIP" / "SYCL".
        iteration_intops: extra integer ops per pending lane per probe
            iteration (flag handling, mask computation, ...).
        iteration_syncs: warp/sub-group synchronizations per active warp
            per probe iteration (``__syncwarp(mask)``, ``__all``,
            ``sg.barrier()``).
        merges_in_iteration: True for the CUDA port, whose
            ``__match_any_sync`` lets lanes that lost an ``atomicCAS`` to
            a same-key winner merge their vote in the *same* iteration;
            the HIP/SYCL ports make them retry on the next iteration.
    """

    name: str
    iteration_intops: int
    iteration_syncs: int
    merges_in_iteration: bool


@dataclass
class KernelRunResult:
    """Functional + profiling output of a backend's ``run``."""

    device: DeviceSpec | None
    k: int
    profile: KernelProfile
    right: list[tuple[str, WalkState]] = field(default_factory=list)
    left: list[tuple[str, WalkState]] = field(default_factory=list)
    #: Contig indices whose extension was degraded (dropped on table
    #: overflow under ``OverflowPolicy.DROP_CONTIG``). Sorted, unique.
    degraded: list[int] = field(default_factory=list)
    #: Contig indices recovered by grow-retry re-launches. Sorted, unique.
    retried: list[int] = field(default_factory=list)
    #: Lockstep array view of ``right``/``left`` (same data), populated by
    #: the engine driver so :func:`iterate_k_schedule` merges with masks
    #: instead of re-deriving per contig. ``None`` from backends that only
    #: build the lists (the scalar reference, checkpoint restores).
    right_arrays: SideArrays | None = field(default=None, compare=False,
                                            repr=False)
    left_arrays: SideArrays | None = field(default=None, compare=False,
                                           repr=False)

    def extension_of(self, i: int, end: End) -> tuple[str, WalkState]:
        return self.right[i] if end is End.RIGHT else self.left[i]


@runtime_checkable
class ExecutionBackend(Protocol):
    """What every execution path must provide."""

    def run(self, contigs: list[Contig], k: int, **kwargs) -> KernelRunResult:
        ...

    def run_schedule(self, contigs: list[Contig],
                     k_schedule: tuple[int, ...] = (21, 33, 55, 77),
                     **kwargs) -> KernelRunResult:
        ...


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., ExecutionBackend]] = {}

#: Device programming model -> registry name.
_MODEL_TO_BACKEND = {"CUDA": "cuda", "HIP": "hip", "SYCL": "sycl"}


def register_backend(name: str, factory: Callable[..., ExecutionBackend],
                     *, overwrite: bool = False) -> None:
    """Register a backend factory under ``name`` (case-insensitive).

    The factory is called as ``factory(device=..., **kwargs)``; ``device``
    may be ``None`` for device-less backends (the scalar reference).
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise KernelError(f"backend {name!r} already registered")
    _REGISTRY[key] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, device: DeviceSpec | None = None,
                   **kwargs) -> ExecutionBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise KernelError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(device=device, **kwargs)


def backend_for_device(device: DeviceSpec, **kwargs) -> ExecutionBackend:
    """The backend matching a device's programming model."""
    name = _MODEL_TO_BACKEND.get(device.programming_model)
    if name is None:
        raise KernelError(
            f"no backend for programming model {device.programming_model!r}"
        )
    return create_backend(name, device=device, **kwargs)


# ----------------------------------------------------------------------
# the scalar reference backend
# ----------------------------------------------------------------------


def _reverse_complement_reads(reads: ReadSet) -> ReadSet:
    out = ReadSet()
    for r in reads:
        out.append(Read(name=r.name + "/rc", codes=reverse_complement(r.codes),
                        quals=r.quals[::-1].copy()))
    return out


class ScalarReferenceBackend:
    """The CPU scalar path as an :class:`ExecutionBackend`.

    Runs Algorithm 1 + Algorithm 2 per contig end through the
    :mod:`repro.core` hash table and mer-walk — the same machinery
    :class:`repro.core.pipeline.LocalAssembler` drives — and reports
    results in the kernel's :class:`KernelRunResult` shape. Functional
    output (extension bases and walk states) is identical to the SIMT
    ports; only the profile counters differ (no warps, no waves, no
    predication, no memory model).
    """

    name = "scalar"

    def __init__(self, device: DeviceSpec | None = None,
                 policy: WalkPolicy = DEFAULT_POLICY,
                 max_walk_len: int = DEFAULT_MAX_WALK_LEN,
                 seed: int = 0, overflow_policy="raise",
                 table_capacity: int | None = None,
                 grow_factor: float | None = None,
                 max_grow_attempts: int | None = None, **_ignored) -> None:
        self.device = device
        self.policy = policy
        self.max_walk_len = max_walk_len
        self.seed = seed
        self.overflow_policy = overflow_policy
        #: Explicit per-contig table capacity; ``None`` sizes from the
        #: reads. Undersizing it is how tests force the overflow paths.
        self.table_capacity = table_capacity
        self.grow_factor = grow_factor
        self.max_grow_attempts = max_grow_attempts

    def _build_table(self, reads: ReadSet, k: int, contig_id: int,
                     profile: KernelProfile, retried: set):
        """``build_table`` under the configured overflow policy.

        Returns ``None`` when the contig is dropped (DROP_CONTIG, or
        grow-retry exhausting its attempts).
        """
        # Imported here: repro.resilience.checkpoint imports this module.
        from repro.resilience.policy import (
            DEFAULT_GROW_FACTOR,
            DEFAULT_MAX_GROW_ATTEMPTS,
            OverflowPolicy,
        )
        policy = OverflowPolicy.parse(self.overflow_policy)
        capacity = self.table_capacity
        grow = self.grow_factor or DEFAULT_GROW_FACTOR
        attempts = (DEFAULT_MAX_GROW_ATTEMPTS if self.max_grow_attempts is None
                    else self.max_grow_attempts)
        for attempt in range(attempts + 1):
            try:
                return build_table(reads, k, capacity=capacity, seed=self.seed)
            except HashTableFullError as err:
                if policy is OverflowPolicy.RAISE:
                    raise HashTableFullError(
                        "hash table overflow during construction",
                        contig_id=contig_id, k=k, capacity=err.capacity,
                        probes=err.probes) from None
                if policy is OverflowPolicy.DROP_CONTIG or attempt == attempts:
                    profile.contigs_dropped += 1
                    return None
                capacity = max(16, int((err.capacity or 16) * grow))
                profile.overflow_retries += 1
                retried.add(contig_id)
        return None

    def _walk_end(self, contig: Contig, k: int, end: End,
                  profile: KernelProfile, contig_id: int,
                  degraded: set, retried: set) -> tuple[str, WalkState]:
        reads = contig.reads_for_end(end)
        if end is End.LEFT:
            reads = _reverse_complement_reads(reads)
        if k > len(contig) or reads.kmer_count(k + 1) == 0:
            return "", WalkState.MISSING
        table = self._build_table(reads, k, contig_id, profile, retried)
        if table is None:
            degraded.add(contig_id)
            return "", WalkState.MISSING
        profile.inserts += insertions_for(reads, k)
        seed_kmer = (contig.end_kmer(k, End.RIGHT) if end is End.RIGHT
                     else reverse_complement(contig.end_kmer(k, End.LEFT)))
        walk = mer_walk(table, seed_kmer, self.max_walk_len, self.policy)
        profile.lookups += walk.steps
        profile.lookup_probe_iterations += walk.steps
        profile.walk_steps += len(walk.bases)
        profile.extension_bases += len(walk.bases)
        bases = walk.bases
        if end is End.LEFT and bases:
            rc = reverse_complement(bases)
            assert isinstance(rc, str)
            bases = rc
        return bases, walk.state

    def run(self, contigs: list[Contig], k: int, **_kwargs) -> KernelRunResult:
        """Execute the full workflow at one k on the scalar path."""
        profile = KernelProfile(warp_size=1)
        profile.walk_issue_width = 1
        profile.contigs = len(contigs)
        right: list[tuple[str, WalkState]] = []
        left: list[tuple[str, WalkState]] = []
        degraded: set = set()
        retried: set = set()
        for ci, contig in enumerate(contigs):
            right.append(self._walk_end(contig, k, End.RIGHT, profile,
                                        ci, degraded, retried))
            left.append(self._walk_end(contig, k, End.LEFT, profile,
                                       ci, degraded, retried))
        return KernelRunResult(device=self.device, k=k, profile=profile,
                               right=right, left=left,
                               degraded=sorted(degraded),
                               retried=sorted(retried))

    def run_schedule(self, contigs: list[Contig],
                     k_schedule: tuple[int, ...] = (21, 33, 55, 77),
                     **_kwargs) -> KernelRunResult:
        """Iterate the k schedule with the kernels' settle semantics."""
        last_k, merged, right, left = iterate_k_schedule(
            lambda k: self.run(contigs, k), len(contigs), k_schedule)
        return KernelRunResult(device=self.device, k=last_k, profile=merged,
                               right=right, left=left)


register_backend("scalar",
                 lambda device=None, **kw: ScalarReferenceBackend(device=device,
                                                                  **kw))
