"""Batch preparation: flatten one bin's contigs + reads into launch arrays.

Preparation splits into two stages with very different reuse profiles:

1. **Flatten** (k-independent): per (bin, end), concatenate every
   assigned read's codes and qualities — reverse-complemented for the
   left end — and record per-read warp assignments, lengths, offsets and
   the k-independent table-capacity upper bound. This is the expensive
   concatenation work.
2. **Finish** (per-k): window the flat code stream into k-mers, hash and
   fingerprint them, gather extension bases and quality flags, extract
   the per-contig seed k-mers, and size the tables.

The k-schedule (Figures 2/4) reruns every launch at up to four k values
over the *same* (bin, end) read streams, so :class:`PrepareCache` keeps
the flatten results keyed by (end, contig tuple): across the schedule
only the per-k hashing pass reruns. ``benchmarks/
bench_engine_prepare_reuse.py`` measures the saving.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.binning import Bin
from repro.core.construct import (
    DEFAULT_LOAD_FACTOR,
    estimate_table_slots,
)
from repro.errors import KernelError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import reverse_complement
from repro.genomics.dna import complement
from repro.genomics.kmer import fingerprint_prefix, rolling_fingerprints
from repro.genomics.reads import DEFAULT_QUAL_THRESHOLD
from repro.hashing.murmur import murmur2_stream, murmur2_words


def segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated, vectorized."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - starts


def run_length_sorted(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(uniques, counts)`` of an already-sorted array.

    Equivalent to ``np.unique(values, return_counts=True)`` for sorted
    input but without the internal re-sort — a boundary diff over the
    run, which is what the lockstep phases call every probe iteration on
    their (warp-sorted) pending sets.
    """
    values = np.asarray(values)
    if values.size == 0:
        return values[:0], np.empty(0, dtype=np.int64)
    change = np.empty(values.size, dtype=bool)
    change[0] = True
    np.not_equal(values[1:], values[:-1], out=change[1:])
    starts = np.nonzero(change)[0]
    counts = np.empty(starts.size, dtype=np.int64)
    counts[:-1] = starts[1:] - starts[:-1]
    counts[-1] = values.size - starts[-1]
    return values[starts], counts


@dataclass
class Batch:
    """One bin's contigs prepared for one launch direction."""

    contig_ids: list[int]
    codes: np.ndarray
    quals: np.ndarray
    ins_warp: np.ndarray        # warp id per insertion, non-decreasing
    ins_home: np.ndarray        # murmur digest per insertion
    ins_fp: np.ndarray          # key fingerprint per insertion
    ins_ext: np.ndarray         # extension base code per insertion
    ins_hi: np.ndarray          # high-quality vote flag per insertion
    seeds: np.ndarray           # (n_warps, k) seed k-mers
    seed_valid: np.ndarray      # warps whose contig admits a seed
    capacities: np.ndarray      # table slots per warp
    read_bytes_per_warp: np.ndarray

    @property
    def n_warps(self) -> int:
        return len(self.contig_ids)


def subset_batch(batch: Batch, warp_ids, capacities=None) -> Batch:
    """A new :class:`Batch` holding only ``warp_ids`` of ``batch``.

    Used by the grow-retry overflow policy to re-run just the warps whose
    tables overflowed. Warp ids must be unique and in range — duplicates
    or out-of-range ids raise :class:`KernelError` instead of silently
    producing a batch with misaligned capacities. Ids may arrive in any
    order: warps are renumbered densely in ascending order of the
    original ids (which keeps every per-insertion array sorted by warp
    as the phases require), and ``capacities`` — aligned with
    ``warp_ids`` *as given* — is reordered along with them. The flat
    code/quality streams are shared, not copied; they are read-only to
    the phases.
    """
    ids = np.asarray(list(warp_ids), dtype=np.int64)
    if ids.size == 0:
        raise KernelError("subset_batch needs at least one warp id")
    if ids.min() < 0 or ids.max() >= batch.n_warps:
        bad = ids[(ids < 0) | (ids >= batch.n_warps)]
        raise KernelError(f"warp ids {bad.tolist()!r} out of range for "
                          f"{batch.n_warps}-warp batch")
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    dup = sorted_ids[1:] == sorted_ids[:-1]
    if dup.any():
        raise KernelError(
            f"duplicate warp ids {np.unique(sorted_ids[1:][dup]).tolist()!r} "
            f"passed to subset_batch")
    if capacities is None:
        caps = batch.capacities[sorted_ids].copy()
    else:
        caps = np.asarray(capacities, dtype=np.int64)
        if caps.shape != ids.shape:
            raise KernelError("capacities must align with warp_ids")
        caps = caps[order].copy()
    ids = sorted_ids
    keep = np.isin(batch.ins_warp, ids)
    remap = np.zeros(batch.n_warps, dtype=np.int64)
    remap[ids] = np.arange(ids.size)
    return Batch(
        contig_ids=[batch.contig_ids[int(w)] for w in ids],
        codes=batch.codes, quals=batch.quals,
        ins_warp=remap[batch.ins_warp[keep]],
        ins_home=batch.ins_home[keep], ins_fp=batch.ins_fp[keep],
        ins_ext=batch.ins_ext[keep], ins_hi=batch.ins_hi[keep],
        seeds=batch.seeds[ids].copy(), seed_valid=batch.seed_valid[ids].copy(),
        capacities=caps,
        read_bytes_per_warp=batch.read_bytes_per_warp[ids].copy(),
    )


def concat_batches(batches: list[Batch]) -> tuple[Batch, np.ndarray]:
    """Fuse prepared batches into one multi-tenant launch batch.

    Returns ``(fused, warp_base)`` where ``warp_base`` has length
    ``len(batches) + 1`` and ``warp_base[i]`` is the first fused warp id
    of ``batches[i]`` (the last entry is the fused warp count). Member
    warps keep their relative order, so every per-insertion array stays
    warp-sorted as the phases require, and each member owns a contiguous
    warp range — and therefore a contiguous slot range in the fused
    :class:`~repro.kernels.vectortable.WarpHashTables` — which is what
    makes per-job attribution a rebase (subtract the member's warp/slot
    base) rather than a scatter.

    The flat code/quality streams are *not* concatenated: construct and
    walk never read them (only prepare does), so the fused batch carries
    empty streams and per-job launch contexts (read bytes, cold
    footprints) are computed from the member batches. ``contig_ids``
    stay member-local for the same reason — the fused batch is never
    scattered directly.
    """
    if not batches:
        raise KernelError("concat_batches needs at least one batch")
    k = batches[0].seeds.shape[1]
    for b in batches:
        if b.seeds.shape[1] != k:
            raise KernelError("cannot fuse batches prepared for different k")
    counts = np.asarray([b.n_warps for b in batches], dtype=np.int64)
    warp_base = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=warp_base[1:])
    fused = Batch(
        contig_ids=[ci for b in batches for ci in b.contig_ids],
        codes=np.empty(0, np.uint8), quals=np.empty(0, np.uint8),
        ins_warp=np.concatenate(
            [b.ins_warp + off for b, off in zip(batches, warp_base[:-1])]),
        ins_home=np.concatenate([b.ins_home for b in batches]),
        ins_fp=np.concatenate([b.ins_fp for b in batches]),
        ins_ext=np.concatenate([b.ins_ext for b in batches]),
        ins_hi=np.concatenate([b.ins_hi for b in batches]),
        seeds=np.concatenate([b.seeds for b in batches], axis=0),
        seed_valid=np.concatenate([b.seed_valid for b in batches]),
        capacities=np.concatenate([b.capacities for b in batches]),
        read_bytes_per_warp=np.concatenate(
            [b.read_bytes_per_warp for b in batches]),
    )
    return fused, warp_base


@dataclass
class FlattenedBin:
    """The k-independent part of one (bin, end) preparation.

    ``ctg_codes`` holds every contig's bases *oriented for the launch
    direction* (reverse-complemented for the left end), concatenated;
    the per-k seed k-mer of warp ``w`` is then always the last ``k``
    codes of its segment, so :meth:`BatchPreparer.finish` extracts all
    seeds with one vectorized gather instead of a per-contig
    string/`end_kmer` loop.
    """

    contig_ids: list[int]
    codes: np.ndarray           # all reads' codes, concatenated
    quals: np.ndarray           # matching qualities
    read_warps: np.ndarray      # warp id per read
    read_lens: np.ndarray       # length per read
    offsets: np.ndarray         # per-read start offsets into codes (n+1)
    read_bytes_per_warp: np.ndarray
    upper_capacities: np.ndarray  # k-independent table-size upper bound
    ctg_codes: np.ndarray       # oriented contig codes, concatenated
    ctg_offsets: np.ndarray     # per-contig start offsets (n_warps+1)
    ctg_lens: np.ndarray        # contig length per warp
    fp_prefix: np.ndarray       # fingerprint_prefix(codes), k-independent
    hash_words: np.ndarray      # murmur2_words(codes), k-independent

    @property
    def n_warps(self) -> int:
        return len(self.contig_ids)


#: Default entry bound for :class:`PrepareCache`. Generous relative to a
#: single k-schedule (which touches ``bins x ends`` entries, typically a
#: handful) so in-run reuse never thrashes, while keeping a long-lived
#: serving process from growing without limit.
DEFAULT_PREPARE_CACHE_ENTRIES = 128


class PrepareCache:
    """Memoizes :class:`FlattenedBin` results across a k-schedule.

    Keyed by (end, contig-index tuple) so a bin whose composition shifts
    between k values simply misses — correctness never depends on the
    binning being k-stable.

    The cache is a bounded LRU: a ``get`` refreshes recency, a ``put``
    past ``maxsize`` entries evicts the least-recently-used one, and
    ``hits`` / ``misses`` / ``evictions`` counters are surfaced in
    profiles as the ``prep_cache_*`` fields. Long-lived processes (the
    coalescing service) share one store across requests through
    :meth:`scoped` views, which namespace keys per tenant dataset and
    keep tenant-local hit/miss counts.
    """

    def __init__(self, maxsize: int = DEFAULT_PREPARE_CACHE_ENTRIES) -> None:
        if maxsize < 1:
            raise KernelError("PrepareCache maxsize must be >= 1")
        self._flat: OrderedDict = OrderedDict()
        self._scopes: dict = {}
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(bin_: Bin, end: End) -> tuple:
        return (end, tuple(bin_.contig_indices))

    def get(self, bin_: Bin, end: End) -> FlattenedBin | None:
        return self._get(self.key(bin_, end))

    def put(self, bin_: Bin, end: End, flat: FlattenedBin) -> None:
        self._put(self.key(bin_, end), flat)

    def scoped(self, scope) -> "PrepareCacheScope":
        """A tenant view whose keys are namespaced by ``scope``."""
        view = self._scopes.get(scope)
        if view is None:
            view = PrepareCacheScope(self, scope)
            self._scopes[scope] = view
        return view

    def _get(self, key: tuple) -> FlattenedBin | None:
        flat = self._flat.get(key)
        if flat is None:
            self.misses += 1
        else:
            self._flat.move_to_end(key)
            self.hits += 1
        return flat

    def _put(self, key: tuple, flat: FlattenedBin) -> None:
        if key in self._flat:
            self._flat.move_to_end(key)
        self._flat[key] = flat
        while len(self._flat) > self.maxsize:
            old_key, _ = self._flat.popitem(last=False)
            self.evictions += 1
            owner = self._scopes.get(old_key[0])
            if owner is not None:
                owner.evictions += 1

    def __len__(self) -> int:
        return len(self._flat)


class PrepareCacheScope:
    """One tenant's view of a shared :class:`PrepareCache`.

    Keys gain a ``scope`` prefix (e.g. the job's dataset fingerprint),
    so tenants whose bins carry identical contig-index tuples but
    different underlying reads never collide, while repeat submissions
    of the same dataset hit the flatten cache warm. Hit/miss counters
    are scope-local (they feed the owning job's profile); ``evictions``
    counts this scope's entries evicted by store pressure, whichever
    tenant caused it. Quacks like :class:`PrepareCache` for
    :meth:`BatchPreparer.prepare`.
    """

    def __init__(self, store: PrepareCache, scope) -> None:
        self.store = store
        self.scope = scope
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, bin_: Bin, end: End) -> FlattenedBin | None:
        flat = self.store._get((self.scope, *PrepareCache.key(bin_, end)))
        if flat is None:
            self.misses += 1
        else:
            self.hits += 1
        return flat

    def put(self, bin_: Bin, end: End, flat: FlattenedBin) -> None:
        self.store._put((self.scope, *PrepareCache.key(bin_, end)), flat)


class BatchPreparer:
    """Builds :class:`Batch` launch arrays, reusing flattens via a cache.

    Args:
        seed: Murmur seed for the insertion pre-hashing.
        qual_threshold: phred cut separating hi/low-quality votes.
        load_factor: hash-table occupancy target for size estimation.
        table_sizing: "upper_bound" reserves per-contig capacity from the
            k-independent read-volume bound (Figure 3: tables are sized
            once, before the k iterations run); "exact" sizes from the
            actual insertion count.
    """

    def __init__(self, *, seed: int = 0,
                 qual_threshold: int = DEFAULT_QUAL_THRESHOLD,
                 load_factor: float = DEFAULT_LOAD_FACTOR,
                 table_sizing: str = "upper_bound") -> None:
        if table_sizing not in ("upper_bound", "exact"):
            raise KernelError(f"unknown table_sizing {table_sizing!r}")
        self.seed = seed
        self.qual_threshold = qual_threshold
        self.load_factor = load_factor
        self.table_sizing = table_sizing

    # -- stage 1: k-independent ----------------------------------------

    def flatten(self, contigs: list[Contig], bin_: Bin, end: End) -> FlattenedBin:
        """Concatenate one bin's (direction-oriented) reads once."""
        contig_ids = bin_.contig_indices
        code_parts: list[np.ndarray] = []
        qual_parts: list[np.ndarray] = []
        read_lens: list[int] = []
        reads_per_warp = np.empty(len(contig_ids), dtype=np.int64)
        read_bytes = np.zeros(len(contig_ids), dtype=np.int64)
        upper = np.empty(len(contig_ids), dtype=np.int64)
        ctg_parts: list[np.ndarray] = []
        ctg_lens = np.empty(len(contig_ids), dtype=np.int64)
        for w, ci in enumerate(contig_ids):
            contig = contigs[ci]
            end_reads = contig.reads_for_end(end)
            base = len(read_lens)
            for r in end_reads.reads:
                code_parts.append(r.codes)
                qual_parts.append(r.quals)
                read_lens.append(r.codes.size)
            reads_per_warp[w] = len(read_lens) - base
            total_bases = sum(read_lens[base:])
            # The k-independent capacity bound is total_bases/load_factor
            # (a read's k-mer count never exceeds its base count), i.e.
            # ``estimate_table_slots_upper_bound`` evaluated on the base
            # total we already tallied — same formula, one pass.
            upper[w] = estimate_table_slots(total_bases, self.load_factor)
            read_bytes[w] = 2 * total_bases
            oriented = (contig.codes if end is End.RIGHT
                        else reverse_complement(contig.codes))
            ctg_parts.append(np.ascontiguousarray(oriented))
            ctg_lens[w] = len(oriented)
        codes = np.concatenate(code_parts) if code_parts else np.empty(0, np.uint8)
        quals = np.concatenate(qual_parts) if qual_parts else np.empty(0, np.uint8)
        lens = np.asarray(read_lens, dtype=np.int64)
        read_warps = np.repeat(np.arange(len(contig_ids), dtype=np.int64),
                               reads_per_warp)
        offsets = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        if end is not End.RIGHT and codes.size:
            # Left-end orientation, batched: reverse-complement every
            # read segment in place of the per-read loop — one mirrored
            # gather over the stream (element i of read r maps to the
            # segment-mirrored position start_r + end_r - 1 - i).
            mirror = (np.repeat(offsets[:-1] + offsets[1:] - 1, lens)
                      - np.arange(codes.size, dtype=np.int64))
            codes = complement(codes)[mirror]
            quals = quals[mirror]
        ctg_codes = (np.concatenate(ctg_parts) if ctg_parts
                     else np.empty(0, np.uint8))
        ctg_offsets = np.zeros(ctg_lens.size + 1, dtype=np.int64)
        np.cumsum(ctg_lens, out=ctg_offsets[1:])
        return FlattenedBin(
            contig_ids=list(contig_ids), codes=codes, quals=quals,
            read_warps=read_warps,
            read_lens=lens, offsets=offsets, read_bytes_per_warp=read_bytes,
            upper_capacities=upper, ctg_codes=ctg_codes,
            ctg_offsets=ctg_offsets, ctg_lens=ctg_lens,
            fp_prefix=fingerprint_prefix(codes),
            hash_words=murmur2_words(codes),
        )

    # -- stage 2: per-k ------------------------------------------------

    def finish(self, flat: FlattenedBin, contigs: list[Contig], end: End,
               k: int) -> Batch:
        """Run the per-k hashing/fingerprint pass over a flattened bin."""
        n_warps = flat.n_warps
        n_ins_per_read = np.maximum(flat.read_lens - k, 0)
        starts = np.repeat(flat.offsets[:-1], n_ins_per_read) + segmented_arange(
            n_ins_per_read
        )
        ins_warp = np.repeat(flat.read_warps, n_ins_per_read)

        if self.table_sizing == "upper_bound":
            capacities = flat.upper_capacities.copy()
        else:
            ins_per_warp = np.zeros(n_warps, dtype=np.int64)
            np.add.at(ins_per_warp, flat.read_warps, n_ins_per_read)
            capacities = np.asarray(
                [estimate_table_slots(int(n), self.load_factor)
                 for n in ins_per_warp], dtype=np.int64)

        # Seed k-mers are the last k codes of each oriented contig
        # segment (for the right end that is ``end_kmer(k, RIGHT)``, for
        # the left end the reverse complement of ``end_kmer(k, LEFT)``) —
        # one vectorized gather over all warps.
        seeds = np.zeros((n_warps, k), dtype=np.uint8)
        seed_valid = flat.ctg_lens >= k
        valid = np.nonzero(seed_valid)[0]
        if valid.size:
            seg_ends = flat.ctg_offsets[valid + 1]
            seeds[valid] = flat.ctg_codes[
                (seg_ends - k)[:, None] + np.arange(k, dtype=np.int64)]

        # Hash and fingerprint straight off the flat stream: k-mer
        # windows never cross a read boundary (each read contributes
        # ``len - k`` insertions), so stream-addressed digests equal the
        # old per-window gather bit for bit — without materializing the
        # (n, k) window matrix at all.
        codes, quals = flat.codes, flat.quals
        if starts.size:
            ins_home = murmur2_stream(codes, starts, k, self.seed,
                                      words=flat.hash_words)
            ins_fp = rolling_fingerprints(codes, k,
                                          prefix=flat.fp_prefix)[starts]
            ext_pos = starts + k
            ins_ext = codes[ext_pos]
            ins_hi = quals[ext_pos] >= self.qual_threshold
        else:
            ins_home = np.empty(0, dtype=np.uint32)
            ins_fp = np.empty(0, dtype=np.uint64)
            ins_ext = np.empty(0, dtype=np.uint8)
            ins_hi = np.empty(0, dtype=bool)
        return Batch(
            contig_ids=list(flat.contig_ids), codes=codes, quals=quals,
            ins_warp=ins_warp, ins_home=ins_home, ins_fp=ins_fp,
            ins_ext=ins_ext, ins_hi=ins_hi, seeds=seeds, seed_valid=seed_valid,
            capacities=capacities, read_bytes_per_warp=flat.read_bytes_per_warp,
        )

    # -- combined ------------------------------------------------------

    def prepare(self, contigs: list[Contig], bin_: Bin, end: End, k: int,
                cache: PrepareCache | None = None) -> Batch:
        """Flatten (or reuse a cached flatten) and finish for one k."""
        flat = cache.get(bin_, end) if cache is not None else None
        if flat is None:
            flat = self.flatten(contigs, bin_, end)
            if cache is not None:
                cache.put(bin_, end, flat)
        return self.finish(flat, contigs, end, k)
