"""Multi-tenant megabatch coalescing: fuse N jobs into one launch wave.

The serving tier (:mod:`repro.serve`) needs to run many *small* jobs —
each a handful of contigs with its own k-schedule run — without paying
full per-launch lockstep overhead per job. Warps are fully independent
in this engine (each owns a disjoint slot region of the fused
:class:`~repro.kernels.vectortable.WarpHashTables`, and every phase
decision is warp-local), so the per-warp behaviour of a fused launch is
*bit-identical* to the same warp running solo. That fusion invariance is
what this module exploits:

1. **Execute fused**: per k, every active job is planned with the
   kernel's own launch policy (per-job binning is preserved); segments
   that share an extension direction are concatenated with
   :func:`~repro.kernels.engine.prepare.concat_batches` and run through
   construct + walk **once**, with ``defer_overflow`` always on and the
   phases' attribution events enabled.
2. **Record**: a single recorder subscriber turns the attribution
   events (:class:`~repro.kernels.engine.events.WaveWarps` /
   :class:`~repro.kernels.engine.events.ProbeWarps` /
   :class:`~repro.kernels.engine.events.WalkStepWarps`) into per-segment
   count vectors — and, when tracing or sanitizing, splits the slot /
   write / read / barrier evidence per segment, rebased to each job's
   local warp and slot numbering (a subtraction, because every segment
   owns contiguous warp and slot ranges).
3. **Replay per job**: each job's solo event stream is re-emitted, in
   solo launch order, through the kernel's own instrumentation stack
   (:meth:`LocalAssemblyKernel._build_bus`), so profiles, traffic,
   traces, replay stats and sanitizer verdicts are byte-identical to a
   one-at-a-time run *by construction* — the hypothesis parity tests in
   ``tests/kernels/test_coalesce_parity.py`` are the drift guard.

Overflow semantics per job match the kernel's policy exactly:
``drop-contig`` and ``grow-retry`` replay the per-job drop/retry event
sequences (fused retry launches re-fuse only the failing segments);
``raise`` reconstructs the solo :class:`~repro.errors.HashTableFullError`
(same contig, k, capacity, probes) as the job's
:attr:`CoalescedJobResult.error` — solo raising aborts mid-launch, so an
erroring job yields its error instead of a result, while its co-tenants
are unaffected.

Fault injection is supported for the *wave-scoped, fingerprint-scoped*
kinds only (``worker-crash``, ``wave-stall``, ``launch-failure``):
faults attributed to a job fingerprint fire identically no matter how
the wave was fused, bisected, or re-dispatched, so chaos runs stay
replayable. Kinds that mutate a prepared batch or a finished profile
(``table-pressure``, ``read-corruption``, ``degenerate-profile``) and
launch-ordinal-scoped specs are rejected with a clear
:class:`~repro.errors.KernelError` — fusion changes launch ordinals and
batch layouts, so those faults could not replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.extension import WALK_STATE_CODES, WalkState
from repro.errors import HashTableFullError, KernelError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import decode_matrix, reverse_complement_matrix
from repro.hashing.opcount import hash_intops
from repro.kernels.engine.backend import KernelRunResult
from repro.kernels.engine.events import (
    BarrierSync,
    ContigDropped,
    ContigRetried,
    EventBus,
    LaunchDone,
    LaunchStarted,
    ProbeIteration,
    ProbeWarps,
    SlotAccess,
    SlotRead,
    SlotWrite,
    WalkStep,
    WalkStepWarps,
    WaveExecuted,
    WaveWarps,
)
from repro.kernels.engine.prepare import (
    Batch,
    PrepareCache,
    concat_batches,
    run_length_sorted,
    subset_batch,
)
from repro.kernels.engine.schedule import (
    MISSING_CODE,
    LaunchConfig,
    LaunchPlan,
    SideArrays,
    merge_k_side,
    validate_k_schedule,
)
from repro.kernels.vectortable import SLOT_BYTES, WarpHashTables
from repro.resilience.policy import OverflowPolicy
from repro.simt.counters import KernelProfile

_MAX_LEN_CODE = np.int8(WALK_STATE_CODES[WalkState.MAX_LEN])


@dataclass
class CoalescedJobResult:
    """One job's outcome of a coalesced wave.

    Exactly one of ``result`` / ``error`` is set. When ``result`` is
    set, it — and ``replay`` / ``trace`` / ``sanitizer_report`` — are
    byte-identical to what a solo ``kernel.run_schedule`` call (and its
    ``last_replay`` / ``last_trace`` / ``last_sanitizer_report``
    attributes) would have produced for the same contigs.
    """

    result: KernelRunResult | None
    replay: list = field(default_factory=list)
    trace: list = field(default_factory=list)
    sanitizer_report: object | None = None
    error: HashTableFullError | None = None


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------


class _LaunchRecord:
    """Everything one fused launch recorded, shared by its segments."""

    __slots__ = ("warp_base", "slot_base", "tokens")

    def __init__(self, warp_base: np.ndarray, slot_base: np.ndarray) -> None:
        self.warp_base = warp_base      # (n_segs + 1) fused warp offsets
        self.slot_base = slot_base      # (n_segs + 1) fused slot offsets
        self.tokens: list[tuple] = []   # ordered per-event decompositions


class _FusionRecorder:
    """Subscriber decomposing a fused launch's events per segment.

    Count-bearing events become per-segment count vectors (bincounts
    over the warp-sorted attribution arrays, via ``searchsorted``
    against the segment warp boundaries); evidence events carrying
    arrays (slot traces, sanitizer writes/reads/barriers) are pre-split
    and *rebased* to segment-local warp/slot numbering at record time,
    so replay is pure indexing. Which evidence classes are recorded
    follows what the per-job replay buses will want (``handled_events``
    is built accordingly — the phases' ``bus.wants`` gating then skips
    unrecorded evidence in the fused run too).
    """

    def __init__(self, want_slots: bool, want_writes: bool,
                 want_reads: bool, want_sync: bool) -> None:
        handled = [WaveWarps, ProbeWarps, WalkStepWarps]
        if want_slots:
            handled.append(SlotAccess)
        if want_writes:
            handled.append(SlotWrite)
        if want_reads:
            handled.append(SlotRead)
        if want_sync:
            handled.append(BarrierSync)
        self.handled_events = tuple(handled)
        self._rec: _LaunchRecord | None = None

    def begin_launch(self, warp_base: np.ndarray,
                     tables: WarpHashTables) -> None:
        self._rec = _LaunchRecord(warp_base, tables.offsets[warp_base])

    def end_launch(self) -> _LaunchRecord:
        rec, self._rec = self._rec, None
        assert rec is not None
        return rec

    # -- per-segment decompositions ------------------------------------

    def _counts(self, warps: np.ndarray) -> np.ndarray:
        """Per-segment element counts of a warp-sorted array."""
        return np.diff(np.searchsorted(warps, self._rec.warp_base))

    def _distinct(self, warps: np.ndarray) -> np.ndarray:
        """Per-segment distinct-warp counts of a warp-sorted array."""
        uniq = run_length_sorted(warps)[0]
        return np.diff(np.searchsorted(uniq, self._rec.warp_base))

    def _split_slots(self, slots: np.ndarray) -> list[np.ndarray]:
        """Per-segment rebased slices of a warp-grouped slot array.

        The array is not globally sorted (slots within one warp's region
        arrive in probe order), but every segment boundary *partitions*
        it — all earlier elements are below the boundary slot, all later
        ones at or above — so per-boundary binary search is exact.
        """
        rec = self._rec
        ptr = np.searchsorted(slots, rec.slot_base)
        return [slots[ptr[s]:ptr[s + 1]] - rec.slot_base[s]
                for s in range(rec.warp_base.size - 1)]

    def _split_by_warps(self, warps: np.ndarray, slots: np.ndarray,
                        lanes: np.ndarray | None) -> list[tuple]:
        rec = self._rec
        ptr = np.searchsorted(warps, rec.warp_base)
        out = []
        for s in range(rec.warp_base.size - 1):
            sl = slice(ptr[s], ptr[s + 1])
            out.append((slots[sl] - rec.slot_base[s],
                        warps[sl] - rec.warp_base[s],
                        lanes[sl] if lanes is not None else None))
        return out

    def _split_barrier(self, event: BarrierSync) -> list[tuple]:
        rec = self._rec
        ptr = np.searchsorted(event.warps, rec.warp_base)
        out = []
        for s in range(rec.warp_base.size - 1):
            sl = slice(ptr[s], ptr[s + 1])
            out.append((event.warps[sl] - rec.warp_base[s],
                        event.mask_lanes[sl], event.active_lanes[sl]))
        return out

    def handle(self, event, bus) -> None:
        rec = self._rec
        if rec is None:
            return
        t = type(event)
        tokens = rec.tokens
        if t is ProbeWarps:
            if event.phase == "construct":
                tokens.append(("citer",
                               self._counts(event.pending_warps),
                               self._distinct(event.pending_warps),
                               self._counts(event.compare_warps),
                               self._counts(event.cas_warps),
                               self._counts(event.matched_warps),
                               self._counts(event.claimed_warps),
                               self._counts(event.merged_warps)))
            else:
                tokens.append(("witer",
                               self._counts(event.pending_warps),
                               self._counts(event.compare_warps)))
        elif t is WaveWarps:
            tokens.append(("wave", self._counts(event.lane_warps),
                           self._distinct(event.lane_warps)))
        elif t is WalkStepWarps:
            tokens.append(("wstep", self._counts(event.walker_warps),
                           self._counts(event.vote_read_warps),
                           self._counts(event.commit_warps)))
        elif t is SlotAccess:
            tokens.append(("slots", event.kind,
                           self._split_slots(event.slots)))
        elif t is SlotWrite:
            tokens.append(("swrite", event.phase, event.kind, event.atomic,
                           self._split_by_warps(event.warps, event.slots,
                                                event.lanes)))
        elif t is SlotRead:
            tokens.append(("sread", event.phase, event.kind,
                           self._split_by_warps(event.warps, event.slots,
                                                None)))
        elif t is BarrierSync:
            tokens.append(("barrier", event.phase,
                           self._split_barrier(event)))


# ----------------------------------------------------------------------
# per-job state
# ----------------------------------------------------------------------


@dataclass
class _AttemptRecord:
    """One segment's share of one fused launch (one overflow attempt)."""

    sub: Batch                      # the segment's batch for this attempt
    launch: _LaunchRecord           # shared token log of the fused launch
    pos: int                        # this segment's index in the launch
    context: LaunchStarted          # the segment's solo launch context
    base_codes: np.ndarray          # wres slices for the solo scatter
    base_lens: np.ndarray
    state_codes: np.ndarray
    failed: list[int]               # overflowed warps, segment-local, sorted
    first_construct_fail: int | None  # chronological, for RAISE semantics
    first_walk_fail: int | None
    attempt: int                    # 0-based attempt index
    grown: np.ndarray | None = None  # retry capacities (set when retried)


@dataclass
class _Segment:
    """One (job, launch plan) unit of a coalesced k-run."""

    state: "_JobState"
    plan: LaunchPlan
    sub: Batch
    records: list[_AttemptRecord] = field(default_factory=list)


class _JobState:
    """Accumulated schedule state of one coalesced job."""

    def __init__(self, contigs: list[Contig], cache: PrepareCache,
                 first_k: int) -> None:
        self.contigs = contigs
        self.n = len(contigs)
        self.cache = cache
        self.best_r = SideArrays.empty(self.n)
        self.best_l = SideArrays.empty(self.n)
        self.settled_r = np.zeros(self.n, dtype=bool)
        self.settled_l = np.zeros(self.n, dtype=bool)
        self.merged_profile: KernelProfile | None = None
        self.degraded: set[int] = set()
        self.retried: set[int] = set()
        self.replay: list = []
        self.traces: list = []
        self.reports: list = []
        self.error: HashTableFullError | None = None
        self.last_k = first_k
        self.segments: list[_Segment] = []

    @property
    def done(self) -> bool:
        return (self.error is not None
                or (bool(self.settled_r.all()) and bool(self.settled_l.all())))


class _JobFailed(Exception):
    """Internal: carries a job's reconstructed solo overflow error."""

    def __init__(self, error: HashTableFullError) -> None:
        super().__init__(str(error))
        self.error = error


# ----------------------------------------------------------------------
# fused execution
# ----------------------------------------------------------------------


def _segment_context(sub: Batch, k: int, ops: int,
                     with_contig_ids: bool) -> LaunchStarted:
    """The LaunchStarted a solo run would emit for this segment batch."""
    total_slots = int(sub.capacities.sum())
    return LaunchStarted(
        k=k, hash_ops=ops, n_warps=sub.n_warps,
        mean_table_bytes=float(np.mean(sub.capacities)) * SLOT_BYTES,
        mean_read_bytes=float(np.mean(sub.read_bytes_per_warp)),
        cold_footprint_bytes=total_slots * SLOT_BYTES + 2 * sub.codes.size,
        total_slots=total_slots,
        contig_ids=(tuple(int(ci) for ci in sub.contig_ids)
                    if with_contig_ids else ()),
    )


def _run_fused_group(kernel, group: list[_Segment], k: int, ops: int,
                     construct, walker, bus: EventBus,
                     recorder: _FusionRecorder, with_contig_ids: bool) -> None:
    """Run one fused launch (plus grow-retry re-launches) over ``group``.

    Every launch fuses only the still-retrying segments; each segment's
    per-attempt record (token log share, result slices, failures) lands
    in ``segment.records`` for the replay pass.
    """
    grow = kernel.overflow_policy is OverflowPolicy.GROW_RETRY
    live = list(range(len(group)))
    attempt = 0
    while True:
        subs = [group[i].sub for i in live]
        fused, warp_base = concat_batches(subs)
        tables = WarpHashTables(fused.capacities, k)
        recorder.begin_launch(warp_base, tables)
        cres = construct.run(fused, tables, bus)
        wres = walker.run(fused, tables, bus)
        launch = recorder.end_launch()
        failed_global = sorted(set(cres.overflowed) | set(wres.overflowed))
        any_failed = False
        retry_live: list[int] = []
        for pos, i in enumerate(live):
            seg = group[i]
            lo, hi = int(warp_base[pos]), int(warp_base[pos + 1])
            seg_failed = [w - lo for w in failed_global if lo <= w < hi]
            rec = _AttemptRecord(
                sub=seg.sub, launch=launch, pos=pos,
                context=_segment_context(seg.sub, k, ops, with_contig_ids),
                base_codes=wres.base_codes[lo:hi],
                base_lens=wres.base_lens[lo:hi],
                state_codes=wres.state_codes[lo:hi],
                failed=seg_failed,
                first_construct_fail=next(
                    (w - lo for w in cres.overflowed if lo <= w < hi), None),
                first_walk_fail=next(
                    (w - lo for w in wres.overflowed if lo <= w < hi), None),
                attempt=attempt,
            )
            seg.records.append(rec)
            if seg_failed:
                any_failed = True
                if grow and attempt < kernel.max_grow_attempts:
                    caps = seg.sub.capacities[seg_failed]
                    grown = np.maximum(
                        caps + 1,
                        np.ceil(caps * kernel.grow_factor).astype(np.int64))
                    rec.grown = grown
                    seg.sub = subset_batch(seg.sub, seg_failed, grown)
                    retry_live.append(i)
        if not any_failed or not retry_live:
            return
        attempt += 1
        live = retry_live


# ----------------------------------------------------------------------
# per-job replay
# ----------------------------------------------------------------------


def _replay_attempt(rec: _AttemptRecord, bus: EventBus) -> LaunchDone:
    """Re-emit one segment's solo event stream from the fused token log.

    Emits ``LaunchStarted``, the segment's share of every token (skipped
    when the share is empty — exactly the condition under which the solo
    loops would not have emitted the event), and returns the per-segment
    ``LaunchDone`` for the caller to emit after any scatter bookkeeping.
    """
    s = rec.pos
    bus.emit(rec.context)
    waves = citers = wsteps = witers = 0
    for tok in rec.launch.tokens:
        kind = tok[0]
        if kind == "citer":
            lanes = int(tok[1][s])
            if lanes:
                bus.emit(ProbeIteration(
                    phase="construct", lanes=lanes, warps=int(tok[2][s]),
                    key_compares=int(tok[3][s]), cas_attempts=int(tok[4][s]),
                    votes_matched=int(tok[5][s]),
                    votes_claimed=int(tok[6][s]),
                    votes_merged=int(tok[7][s])))
                citers += 1
        elif kind == "wave":
            lanes = int(tok[1][s])
            if lanes:
                bus.emit(WaveExecuted(lanes=lanes, warps=int(tok[2][s])))
                waves += 1
        elif kind == "witer":
            lanes = int(tok[1][s])
            if lanes:
                bus.emit(ProbeIteration(phase="walk", lanes=lanes,
                                        warps=lanes,
                                        key_compares=int(tok[2][s])))
                witers += 1
        elif kind == "wstep":
            walkers = int(tok[1][s])
            if walkers:
                bus.emit(WalkStep(walkers=walkers,
                                  vote_reads=int(tok[2][s]),
                                  bases_committed=int(tok[3][s])))
                wsteps += 1
        elif kind == "slots":
            chunk = tok[2][s]
            if chunk.size:
                bus.emit(SlotAccess(slots=chunk, kind=tok[1]))
        elif kind == "swrite":
            slots_s, warps_s, lanes_s = tok[4][s]
            if warps_s.size:
                bus.emit(SlotWrite(phase=tok[1], kind=tok[2], slots=slots_s,
                                   warps=warps_s, lanes=lanes_s,
                                   atomic=tok[3]))
        elif kind == "sread":
            slots_s, warps_s, _ = tok[3][s]
            if warps_s.size:
                bus.emit(SlotRead(phase=tok[1], kind=tok[2], slots=slots_s,
                                  warps=warps_s))
        elif kind == "barrier":
            warps_s, mask_s, active_s = tok[2][s]
            if warps_s.size:
                bus.emit(BarrierSync(phase=tok[1], warps=warps_s,
                                     mask_lanes=mask_s,
                                     active_lanes=active_s))
    # The max_walk_len cutoff step runs without emitting a WalkStep
    # (the solo loop breaks first) but still counts as a walk step; any
    # MAX_LEN terminal in this attempt's slice proves the segment had
    # walkers alive at the cutoff.
    if bool((rec.state_codes == _MAX_LEN_CODE).any()):
        wsteps += 1
    return LaunchDone(waves=waves, construct_iterations=citers,
                      walk_steps=wsteps, walk_iterations=witers)


def _solo_overflow_error(rec: _AttemptRecord, k: int) -> HashTableFullError:
    """Reconstruct the error a solo RAISE-policy run would have raised.

    Overflow detection is warp-local and iteration-exact, and a probe
    offset is bounds-checked every iteration once it can reach the
    capacity, so the solo error's ``probes`` always equals the failing
    warp's capacity; construction raises before the walk runs, so any
    construct overflow takes precedence.
    """
    if rec.first_construct_fail is not None:
        w, msg = rec.first_construct_fail, \
            "hash table overflow during construction"
    else:
        assert rec.first_walk_fail is not None
        w, msg = rec.first_walk_fail, "hash table wrapped during walk lookup"
    cap = int(rec.sub.capacities[w])
    return HashTableFullError(msg, contig_id=int(rec.sub.contig_ids[w]),
                              k=k, capacity=cap, probes=cap)


def _replay_job_k(kernel, state: _JobState, k: int,
                  parallel_scale: float) -> None:
    """Replay one job's k-run and fold it into the job's schedule state.

    Mirrors ``LocalAssemblyKernel.run`` (launch loop, scatter, overflow
    bookkeeping) and the ``run_schedule`` accumulation around it, but
    fed from the fused token logs instead of executing phases.
    """
    profile = KernelProfile(warp_size=kernel.warp_size)
    profile.walk_issue_width = (1 if kernel.lane_parallel_walks
                                else kernel.warp_size)
    profile.contigs = state.n
    right_arr = SideArrays.empty(state.n)
    left_arr = SideArrays.empty(state.n)
    bus, traffic, tracer, replayer, sanitizer = kernel._build_bus(
        profile, parallel_scale)
    raise_policy = kernel.overflow_policy is OverflowPolicy.RAISE
    try:
        for seg in state.segments:
            arr = right_arr if seg.plan.end is End.RIGHT else left_arr
            for ridx, rec in enumerate(seg.records):
                done = _replay_attempt(rec, bus)
                bus.emit(done)
                sub = rec.sub
                failed = rec.failed
                ok = np.ones(sub.n_warps, dtype=bool)
                if failed:
                    ok[failed] = False
                cis = np.asarray(sub.contig_ids, dtype=np.int64)[ok]
                if cis.size:
                    lens = rec.base_lens[ok]
                    mat = rec.base_codes[ok]
                    if seg.plan.end is not End.RIGHT:
                        mat = reverse_complement_matrix(mat, lens)
                    arr.text[cis] = decode_matrix(mat, lens)
                    arr.lens[cis] = lens
                    arr.state_codes[cis] = rec.state_codes[ok]
                if not failed:
                    continue
                if raise_policy:
                    raise _JobFailed(_solo_overflow_error(rec, k))
                if rec.grown is not None:
                    # this attempt was re-fused with grown tables
                    for w, cap in zip(failed, rec.grown):
                        bus.emit(ContigRetried(
                            contig_id=sub.contig_ids[w], k=k,
                            attempt=rec.attempt + 1, capacity=int(cap)))
                        state.retried.add(sub.contig_ids[w])
                    continue
                end_name = "right" if seg.plan.end is End.RIGHT else "left"
                for w in failed:
                    ci = sub.contig_ids[w]
                    bus.emit(ContigDropped(
                        contig_id=ci, k=k, end=end_name,
                        capacity=int(sub.capacities[w])))
                    state.degraded.add(ci)
                    arr.text[ci] = ""
                    arr.lens[ci] = 0
                    arr.state_codes[ci] = MISSING_CODE
                assert ridx == len(seg.records) - 1
    except _JobFailed as exc:
        state.error = exc.error
        return
    if state.merged_profile is None:
        state.merged_profile = profile
    else:
        state.merged_profile.merge(profile)
    merge_k_side(right_arr, state.best_r, state.settled_r)
    merge_k_side(left_arr, state.best_l, state.settled_l)
    if tracer is not None:
        state.traces = tracer.traces
    if replayer is not None:
        state.replay.extend(replayer.launches)
    if sanitizer is not None:
        state.reports.append(sanitizer.report)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------


#: Fault kinds whose effects depend on launch ordinals or batch layout —
#: both change under fusion, so these cannot replay deterministically.
_COALESCE_UNSUPPORTED_FAULTS = frozenset({
    "table-pressure", "read-corruption", "degenerate-profile",
})


def _validate_coalesced_injector(injector, n_jobs: int,
                                 fingerprints: list[str] | None) -> None:
    """Reject fault plans that cannot fire deterministically under fusion."""
    unsupported = sorted({
        spec.kind.value for spec in injector.plan.faults
        if spec.kind.value in _COALESCE_UNSUPPORTED_FAULTS})
    if unsupported:
        raise KernelError(
            "coalesced execution does not support fault kinds "
            f"{unsupported}: they mutate batch layouts or profiles that "
            "fusion rearranges; scope chaos by job fingerprint with "
            "worker-crash / wave-stall / launch-failure instead")
    if any(spec.launch is not None for spec in injector.plan.faults):
        raise KernelError(
            "launch-ordinal-scoped faults are not replayable under "
            "fusion (ordinals depend on how jobs were coalesced); "
            "scope the spec by job fingerprint instead")
    if fingerprints is not None and len(fingerprints) != n_jobs:
        raise KernelError("fingerprints must align with jobs")


def run_schedule_coalesced(
    kernel,
    jobs: list[list[Contig]],
    k_schedule: tuple[int, ...] = (21, 33, 55, 77),
    parallel_scale: float = 1.0,
    prep_caches: list | None = None,
    fingerprints: list[str] | None = None,
) -> list[CoalescedJobResult]:
    """Run N jobs' k-schedules as fused multi-tenant launch waves.

    Results (outputs, profiles, overflow sets, traces, sanitizer
    verdicts) are byte-identical to ``kernel.run_schedule(job, ...)``
    run per job. ``prep_caches`` optionally supplies one prepare cache
    per job (e.g. :meth:`PrepareCache.scoped` views of a store shared
    across service requests); the default is a fresh solo-equivalent
    cache per job. ``fingerprints`` optionally names each job (the
    serve tier passes request fingerprints) so a seeded
    :class:`~repro.resilience.FaultInjector` on the kernel can attribute
    wave-scoped faults per job; an injector whose plan contains kinds
    that cannot replay under fusion is rejected up front.
    """
    if not jobs:
        raise KernelError("run_schedule_coalesced needs at least one job")
    for j, contigs in enumerate(jobs):
        if not contigs:
            raise KernelError(f"coalesced job {j} has no contigs")
    if prep_caches is not None and len(prep_caches) != len(jobs):
        raise KernelError("prep_caches must align with jobs")
    if kernel.fault_injector is not None:
        _validate_coalesced_injector(kernel.fault_injector, len(jobs),
                                     fingerprints)
        # may raise InjectedCrashError (fatal) or BackendLaunchError
        # (transient) before any launch — whole-wave faults, attributed
        # by fingerprint, absorbed by the serve supervisor's bisection
        kernel.fault_injector.begin_wave(list(fingerprints or []))
    validate_k_schedule(k_schedule)
    if parallel_scale <= 0 or parallel_scale > 1:
        raise KernelError(
            f"parallel_scale must be in (0, 1], got {parallel_scale}")

    states = [
        _JobState(contigs,
                  prep_caches[j] if prep_caches is not None else PrepareCache(),
                  k_schedule[0])
        for j, contigs in enumerate(jobs)
    ]

    # What the per-job replay buses will want decides which evidence the
    # fused run must record (and therefore emit): probe with a throwaway
    # instrumentation stack built exactly like the replay ones.
    probe_bus, _, _, _, _ = kernel._build_bus(
        KernelProfile(warp_size=kernel.warp_size), parallel_scale)
    recorder = _FusionRecorder(
        want_slots=probe_bus.wants(SlotAccess),
        want_writes=probe_bus.wants(SlotWrite),
        want_reads=probe_bus.wants(SlotRead),
        want_sync=probe_bus.wants(BarrierSync),
    )
    fused_bus = EventBus()
    fused_bus.subscribe(recorder)
    construct = kernel.construct_cls(kernel.protocol, kernel.warp_size,
                                     defer_overflow=True, attribution=True)
    walker = kernel.walk_cls(kernel.policy, kernel.max_walk_len, kernel.seed,
                             defer_overflow=True, attribution=True)
    # reserve at most ~25% of HBM for tables in one launch (solo default)
    max_batch_insertions = int(
        kernel.device.hbm_bytes * 0.25 * kernel.load_factor / SLOT_BYTES)
    config = LaunchConfig(depth_ratio=2.0,
                          max_batch_insertions=max_batch_insertions,
                          load_factor=kernel.load_factor)

    for k in k_schedule:
        active = [s for s in states if not s.done]
        if not active:
            break
        ops = hash_intops(k)
        with_contig_ids = bool(kernel.sanitize_checks)
        by_end: dict[End, list[_Segment]] = {}
        for s in active:
            s.last_k = k
            s.segments = []
            for plan in kernel.launch_policy.plan(s.contigs, k, config):
                sub = kernel.preparer.prepare(s.contigs, plan.bin, plan.end,
                                              k, cache=s.cache)
                seg = _Segment(state=s, plan=plan, sub=sub)
                s.segments.append(seg)
                by_end.setdefault(plan.end, []).append(seg)
        for group in by_end.values():
            _run_fused_group(kernel, group, k, ops, construct, walker,
                             fused_bus, recorder, with_contig_ids)
        for s in active:
            _replay_job_k(kernel, s, k, parallel_scale)

    results: list[CoalescedJobResult] = []
    for s in states:
        if s.error is not None:
            results.append(CoalescedJobResult(result=None, error=s.error))
            continue
        merged = s.merged_profile
        assert merged is not None
        merged.contigs = s.n
        merged.prep_cache_hits = s.cache.hits
        merged.prep_cache_misses = s.cache.misses
        merged.prep_cache_evictions = s.cache.evictions
        report = None
        if kernel.sanitize_checks and s.reports:
            from repro.sanitize.report import SanitizerReport
            report = SanitizerReport(max_findings=s.reports[0].max_findings)
            for rep in s.reports:
                report.extend(rep)
        res = KernelRunResult(device=kernel.device, k=s.last_k,
                              profile=merged,
                              right=s.best_r.to_side(),
                              left=s.best_l.to_side(),
                              degraded=sorted(s.degraded),
                              retried=sorted(s.retried))
        results.append(CoalescedJobResult(result=res, replay=s.replay,
                                          trace=s.traces,
                                          sanitizer_report=report))
    return results
