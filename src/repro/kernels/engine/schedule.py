"""Launch scheduling: bins -> :class:`LaunchPlan` s -> launches.

The engine turns a contig set into an ordered list of launch plans (one
per bin per extension direction) through a pluggable
:class:`LaunchPolicy`, so binning and launch ordering are policies
rather than code baked into the kernel. The default
:class:`BinnedLaunchPolicy` reproduces the paper's Figure 3
pre-processing: depth-similar bins, capped by aggregate table memory,
each launched once per end (right first, matching the GPU's separate
right-/left-extension kernels).

:func:`iterate_k_schedule` is the shared on-device k-schedule driver
(Figures 2 and 4) used by every backend: per contig end, the first
*accepted* walk (anything but a fork) at the smallest k wins, and forked
ends retry at the next k, keeping the longest extension if no k resolves
the fork.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.core.binning import Bin, bin_contigs
from repro.core.construct import DEFAULT_LOAD_FACTOR
from repro.core.extension import WalkState
from repro.errors import KernelError
from repro.genomics.contig import Contig, End
from repro.simt.counters import KernelProfile


@dataclass(frozen=True)
class LaunchConfig:
    """Knobs a launch policy may consult when planning."""

    depth_ratio: float = 2.0
    max_batch_insertions: int | None = None
    load_factor: float = DEFAULT_LOAD_FACTOR


@dataclass(frozen=True)
class LaunchPlan:
    """One kernel launch: a bin of contigs extended in one direction."""

    bin: Bin
    end: End
    k: int


@runtime_checkable
class LaunchPolicy(Protocol):
    """Strategy turning (contigs, k, config) into an ordered launch list."""

    def plan(self, contigs: list[Contig], k: int,
             config: LaunchConfig) -> list[LaunchPlan]:
        ...


class BinnedLaunchPolicy:
    """Figure 3 default: depth-similar bins, one launch per bin per end."""

    def __init__(self, ends: tuple[End, ...] = (End.RIGHT, End.LEFT)) -> None:
        self.ends = ends

    def plan(self, contigs: list[Contig], k: int,
             config: LaunchConfig) -> list[LaunchPlan]:
        bins = bin_contigs(contigs, k, config.depth_ratio,
                           config.max_batch_insertions, config.load_factor)
        return [LaunchPlan(bin=b, end=end, k=k)
                for b in bins for end in self.ends]


class SingleBinLaunchPolicy:
    """Ablation policy: the whole dataset as one launch per end (no
    binning), the unbatched baseline the binning ablation contrasts."""

    def __init__(self, ends: tuple[End, ...] = (End.RIGHT, End.LEFT)) -> None:
        self.ends = ends

    def plan(self, contigs: list[Contig], k: int,
             config: LaunchConfig) -> list[LaunchPlan]:
        bin_ = Bin(contig_indices=list(range(len(contigs))))
        return [LaunchPlan(bin=bin_, end=end, k=k) for end in self.ends]


def validate_k_schedule(k_schedule: tuple[int, ...]) -> None:
    if not k_schedule or list(k_schedule) != sorted(set(k_schedule)):
        raise KernelError(
            f"k_schedule must be strictly increasing, got {k_schedule}"
        )


def iterate_k_schedule(
    run_one: Callable[[int], "object"],
    n_contigs: int,
    k_schedule: tuple[int, ...],
) -> tuple[int, KernelProfile, list, list]:
    """Drive the iterative k schedule over any backend's ``run``.

    ``run_one(k)`` must return a :class:`KernelRunResult`-shaped object
    (``right``/``left`` lists of ``(bases, WalkState)`` plus ``profile``).
    Returns ``(last_k, merged_profile, right, left)``. Every k runs as
    its own launch sequence (tables must be rebuilt per k — the GPU
    cannot resize them); profiles of all launches merge.
    """
    validate_k_schedule(k_schedule)
    merged: KernelProfile | None = None
    right: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * n_contigs
    left: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * n_contigs
    settled_r = [False] * n_contigs
    settled_l = [False] * n_contigs
    last_k = k_schedule[0]
    for k in k_schedule:
        if all(settled_r) and all(settled_l):
            break
        last_k = k
        res = run_one(k)
        if merged is None:
            merged = res.profile
        else:
            merged.merge(res.profile)
        for i in range(n_contigs):
            for side, settled, best in (
                (res.right, settled_r, right),
                (res.left, settled_l, left),
            ):
                if settled[i]:
                    continue
                bases, state = side[i]
                if len(bases) >= len(best[i][0]) or state is not WalkState.FORK:
                    best[i] = (bases, state)
                if state is not WalkState.FORK:
                    settled[i] = True
    assert merged is not None
    merged.contigs = n_contigs
    return last_k, merged, right, left
