"""Launch scheduling: bins -> :class:`LaunchPlan` s -> launches.

The engine turns a contig set into an ordered list of launch plans (one
per bin per extension direction) through a pluggable
:class:`LaunchPolicy`, so binning and launch ordering are policies
rather than code baked into the kernel. The default
:class:`BinnedLaunchPolicy` reproduces the paper's Figure 3
pre-processing: depth-similar bins, capped by aggregate table memory,
each launched once per end (right first, matching the GPU's separate
right-/left-extension kernels).

:func:`iterate_k_schedule` is the shared on-device k-schedule driver
(Figures 2 and 4) used by every backend: per contig end, the first
*accepted* walk (anything but a fork) at the smallest k wins, and forked
ends retry at the next k, keeping the longest extension if no k resolves
the fork. The settle/merge decisions run as NumPy mask assignments over
:class:`SideArrays` (the lockstep per-contig result representation the
engine driver scatters into); backends that only produce the per-contig
``(bases, WalkState)`` lists fall back to a derivation at the boundary.
The pre-refactor per-contig merge loop survives as
:func:`repro.kernels.engine.oracle.iterate_k_schedule_scalar`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.binning import Bin, bin_contigs
from repro.core.construct import DEFAULT_LOAD_FACTOR
from repro.core.extension import CODE_TO_WALK_STATE, WALK_STATE_CODES, WalkState
from repro.errors import KernelError
from repro.genomics.contig import Contig, End
from repro.simt.counters import KernelProfile

#: int8 codes the merge masks compare against.
MISSING_CODE = np.int8(WALK_STATE_CODES[WalkState.MISSING])
FORK_CODE = np.int8(WALK_STATE_CODES[WalkState.FORK])


@dataclass
class SideArrays:
    """One extension side (right or left) of a run, as lockstep arrays.

    The engine driver scatters every launch's accepted walks straight
    into these (text via one batched decode, lengths and terminal state
    codes as array assignments), and :func:`iterate_k_schedule` merges
    them with boolean masks — no per-contig Python in between. The
    ``(bases, WalkState)`` tuple list every caller consumes is derived
    once at the end through :meth:`to_side`.
    """

    text: np.ndarray         #: object array of per-contig extension strings
    lens: np.ndarray         #: int64 extension lengths (== len of text)
    state_codes: np.ndarray  #: int8 :data:`WALK_STATE_CODES` per contig

    @classmethod
    def empty(cls, n: int) -> "SideArrays":
        """All contigs unextended: ``("", MISSING)`` in array form."""
        return cls(text=np.full(n, "", dtype=object),
                   lens=np.zeros(n, dtype=np.int64),
                   state_codes=np.full(n, MISSING_CODE, dtype=np.int8))

    @classmethod
    def from_side(cls, side: list[tuple[str, WalkState]]) -> "SideArrays":
        """Boundary derivation for backends that only build the list."""
        n = len(side)
        text = np.empty(n, dtype=object)
        text[:] = [b for b, _ in side]
        lens = np.fromiter((len(b) for b, _ in side),
                           dtype=np.int64, count=n)
        codes = np.fromiter((WALK_STATE_CODES[s] for _, s in side),
                            dtype=np.int8, count=n)
        return cls(text=text, lens=lens, state_codes=codes)

    def to_side(self) -> list[tuple[str, WalkState]]:
        """The classic per-contig ``(bases, WalkState)`` list view."""
        states = [CODE_TO_WALK_STATE[c] for c in self.state_codes.tolist()]
        return list(zip(self.text.tolist(), states))


@dataclass(frozen=True)
class LaunchConfig:
    """Knobs a launch policy may consult when planning."""

    depth_ratio: float = 2.0
    max_batch_insertions: int | None = None
    load_factor: float = DEFAULT_LOAD_FACTOR


@dataclass(frozen=True)
class LaunchPlan:
    """One kernel launch: a bin of contigs extended in one direction."""

    bin: Bin
    end: End
    k: int


@runtime_checkable
class LaunchPolicy(Protocol):
    """Strategy turning (contigs, k, config) into an ordered launch list."""

    def plan(self, contigs: list[Contig], k: int,
             config: LaunchConfig) -> list[LaunchPlan]:
        ...


class BinnedLaunchPolicy:
    """Figure 3 default: depth-similar bins, one launch per bin per end."""

    def __init__(self, ends: tuple[End, ...] = (End.RIGHT, End.LEFT)) -> None:
        self.ends = ends

    def plan(self, contigs: list[Contig], k: int,
             config: LaunchConfig) -> list[LaunchPlan]:
        bins = bin_contigs(contigs, k, config.depth_ratio,
                           config.max_batch_insertions, config.load_factor)
        return [LaunchPlan(bin=b, end=end, k=k)
                for b in bins for end in self.ends]


class SingleBinLaunchPolicy:
    """Ablation policy: the whole dataset as one launch per end (no
    binning), the unbatched baseline the binning ablation contrasts."""

    def __init__(self, ends: tuple[End, ...] = (End.RIGHT, End.LEFT)) -> None:
        self.ends = ends

    def plan(self, contigs: list[Contig], k: int,
             config: LaunchConfig) -> list[LaunchPlan]:
        bin_ = Bin(contig_indices=list(range(len(contigs))))
        return [LaunchPlan(bin=bin_, end=end, k=k) for end in self.ends]


def validate_k_schedule(k_schedule: tuple[int, ...]) -> None:
    if not k_schedule or list(k_schedule) != sorted(set(k_schedule)):
        raise KernelError(
            f"k_schedule must be strictly increasing, got {k_schedule}"
        )


def merge_k_side(cur: SideArrays, best: SideArrays,
                 settled: np.ndarray) -> None:
    """One side's settle/merge step of the iterative k schedule.

    Unsettled ends take the new walk if it is *accepted* (any non-fork
    state) or at least as long as the held fork; accepted ends settle.
    Mutates ``best`` and ``settled`` in place. Shared by
    :func:`iterate_k_schedule` and the coalescing driver
    (:mod:`repro.kernels.engine.coalesce`), whose per-job merges must
    carry identical semantics to stay byte-identical with solo runs.
    """
    accepted = cur.state_codes != FORK_CODE
    # unsettled ends take the new walk if it is accepted (any
    # non-fork state) or at least as long as the held fork
    upd = ~settled & (accepted | (cur.lens >= best.lens))
    best.text[upd] = cur.text[upd]
    best.lens[upd] = cur.lens[upd]
    best.state_codes[upd] = cur.state_codes[upd]
    settled |= accepted


def iterate_k_schedule(
    run_one: Callable[[int], "object"],
    n_contigs: int,
    k_schedule: tuple[int, ...],
) -> tuple[int, KernelProfile, list, list]:
    """Drive the iterative k schedule over any backend's ``run``.

    ``run_one(k)`` must return a :class:`KernelRunResult`-shaped object
    (``right``/``left`` lists of ``(bases, WalkState)`` plus ``profile``).
    Returns ``(last_k, merged_profile, right, left)``. Every k runs as
    its own launch sequence (tables must be rebuilt per k — the GPU
    cannot resize them); profiles of all launches merge.
    """
    validate_k_schedule(k_schedule)
    merged: KernelProfile | None = None
    best_r = SideArrays.empty(n_contigs)
    best_l = SideArrays.empty(n_contigs)
    settled_r = np.zeros(n_contigs, dtype=bool)
    settled_l = np.zeros(n_contigs, dtype=bool)
    last_k = k_schedule[0]
    for k in k_schedule:
        if settled_r.all() and settled_l.all():
            break
        last_k = k
        res = run_one(k)
        if merged is None:
            merged = res.profile
        else:
            merged.merge(res.profile)
        for arrays, side, settled, best in (
            (getattr(res, "right_arrays", None), res.right, settled_r, best_r),
            (getattr(res, "left_arrays", None), res.left, settled_l, best_l),
        ):
            cur = arrays if arrays is not None else SideArrays.from_side(side)
            merge_k_side(cur, best, settled)
    assert merged is not None
    merged.contigs = n_contigs
    return last_k, merged, best_r.to_side(), best_l.to_side()
