"""The instrumentation-hook layer: typed engine events + subscribers.

The execution engine never mutates a :class:`~repro.simt.counters.KernelProfile`
or a traffic ledger inline. Instead, the phases emit *events* describing
what just executed (a construction wave, a probe iteration, a walk step,
a batch of table-slot accesses, a finished launch) onto an
:class:`EventBus`, and independent subscribers turn those events into
observations:

* :class:`ProfileSubscriber` — instruction/operation counters
  (:class:`~repro.simt.counters.KernelProfile`).
* :class:`TrafficSubscriber` — the per-launch
  :class:`~repro.simt.memory.AnalyticCacheModel` traffic accounting;
  publishes a :class:`MemoryTrafficResolved` event back onto the bus so
  the profile can absorb the byte counts and latency-weighted chain
  cycles without the two subscribers knowing about each other.
* :class:`TraceSubscriber` — exact table-slot address traces for the
  trace-driven cache-simulator validation.
* :class:`TraceReplaySubscriber` — streams every launch's slot trace
  through the exact batched cache hierarchy
  (:meth:`~repro.simt.memory.CacheHierarchy.replay`) during a normal
  kernel run (``memory_model="trace"``), yielding measured per-level
  counts to validate — and recalibrate ``l2_churn`` in — the analytic
  model.

Any object with a ``handle(event, bus)`` method can subscribe, so new
observability (histograms, per-launch logs, live dashboards) attaches
without touching kernel code. Subscribers may declare the event types
they consume in a ``handled_events`` class attribute; the phases use
:meth:`EventBus.wants` to skip building hot-loop events (the per-probe
:class:`SlotAccess` arrays) that nobody listens to.

Ordering note: :class:`TrafficSubscriber` emits
:class:`MemoryTrafficResolved` while handling :class:`LaunchDone`;
subscribers that consume both (the profile) must be registered *before*
it so they see the launch stats first. The SIMT driver
(:mod:`repro.kernels.engine.simt`) registers them in that order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.vectortable import SLOT_BYTES, SLOT_TAG_BYTES, SLOT_VALUE_BYTES
from repro.simt.device import DeviceSpec
from repro.simt.memory import (
    AccessCategory,
    AnalyticCacheModel,
    CacheHierarchy,
    implied_l2_churn,
)

#: Warp instructions charged per probe iteration (loop bookkeeping).
ITERATION_BASE_INSTRS = 10

#: Thread-level integer ops per walk step outside the hash (state updates).
WALK_STEP_INTOPS = 24

# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LaunchStarted:
    """A kernel launch (one bin, one extension direction) is beginning."""

    k: int
    hash_ops: int                 #: INTOPs of one k-length Murmur hash
    n_warps: int                  #: contigs (= warps) in the launch
    mean_table_bytes: float       #: mean per-warp hash-table footprint
    mean_read_bytes: float        #: mean per-warp read-buffer footprint
    cold_footprint_bytes: float   #: compulsory-traffic floor of the launch
    total_slots: int = 0          #: table slots across all warps (sanitizer)
    #: Per-warp contig ids, for finding provenance. Populated only when a
    #: sanitizer is attached (building the tuple costs per-launch work).
    contig_ids: tuple = ()


@dataclass(frozen=True)
class WaveExecuted:
    """One construction wave hashed + dispatched its k-mers."""

    lanes: int                    #: k-mers hashed (insertions issued)
    warps: int                    #: warps with at least one pending lane


@dataclass(frozen=True)
class ProbeIteration:
    """One lockstep probe iteration over all pending lanes.

    ``phase`` is ``"construct"`` (insert probing) or ``"walk"`` (lookup
    probing); the vote/CAS fields are only non-zero during construction.
    """

    phase: str                    #: "construct" | "walk"
    lanes: int                    #: lanes still pending this iteration
    warps: int                    #: warps with pending lanes
    key_compares: int             #: occupied slots whose key was compared
    cas_attempts: int = 0         #: atomicCAS claims issued on empty slots
    votes_matched: int = 0        #: votes merged into pre-existing keys
    votes_claimed: int = 0        #: votes by fresh CAS winners
    votes_merged: int = 0         #: same-iteration loser merges (match_any)


@dataclass(frozen=True)
class WalkStep:
    """One lockstep mer-walk step across all still-walking warps."""

    walkers: int                  #: warps that executed this step
    vote_reads: int               #: slot vote rows read to resolve bases
    bases_committed: int          #: bases accepted across all walkers


@dataclass(frozen=True)
class SlotAccess:
    """Raw table-slot indices touched by one probe iteration.

    ``kind`` names the access category (``"probe"``, ``"claim"``,
    ``"vote"``, ``"vote_read"``); emission sites must pass it explicitly
    (lint rule REP004), so trace consumers can attribute traffic.
    """

    slots: np.ndarray             #: global slot indices (int64)
    kind: str = "probe"           #: access category


@dataclass(frozen=True)
class SlotWrite:
    """Sanitizer-facing record of one batched table-slot write.

    Emitted by the phases (gated on ``bus.wants(SlotWrite)``) at every
    point where slot state is committed — ``atomicCAS`` tag claims and
    ``atomicAdd`` vote accumulations. ``atomic=False`` declares the
    commit was *not* performed with a read-modify-write primitive, which
    is exactly what the racecheck sanitizer flags when the batch carries
    same-slot conflicts (lost updates).
    """

    phase: str                    #: "construct" | "walk"
    kind: str                     #: "claim" | "vote"
    slots: np.ndarray             #: global slot indices written
    warps: np.ndarray             #: issuing warp per write
    lanes: np.ndarray | None = None  #: issuing lane per write (if known)
    atomic: bool = True           #: committed via an atomic primitive


@dataclass(frozen=True)
class SlotRead:
    """Sanitizer-facing record of one batched table-slot value read.

    Emitted where the walk resolves votes (``kind="vote_read"``); the
    initcheck sanitizer flags reads of slots whose value region was never
    written — the device-memory analogue of reading uninitialized memory.
    """

    phase: str                    #: "construct" | "walk"
    kind: str                     #: "vote_read"
    slots: np.ndarray             #: global slot indices read
    warps: np.ndarray             #: issuing warp per read


@dataclass(frozen=True)
class BarrierSync:
    """Sanitizer-facing record of one warp/sub-group synchronization.

    ``mask_lanes`` is the lane count each warp's barrier mask names (what
    the code passed to ``__syncwarp(mask)`` / sized the sub-group barrier
    for); ``active_lanes`` is the lane count actually converged at the
    barrier. The synccheck sanitizer flags any divergence — a stale
    ``__activemask()`` or a barrier inside divergent control flow, the
    classic warp-synchronous deadlock.
    """

    phase: str                    #: "construct" | "walk"
    warps: np.ndarray             #: warps executing the barrier
    mask_lanes: np.ndarray        #: lanes named by each warp's sync mask
    active_lanes: np.ndarray      #: lanes actually active at the barrier


#: Shared empty warp array for attribution events with no entries.
NO_WARPS = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class WaveWarps:
    """Attribution evidence for one construction wave (coalescing).

    Carries the issuing warp id of every hashed lane so a multi-tenant
    megabatch launch can be decomposed back into per-job event streams
    (:mod:`repro.kernels.engine.coalesce`). Gated on ``bus.wants`` —
    only the coalescing recorder subscribes, so solo runs never build
    these arrays.
    """

    lane_warps: np.ndarray        #: warp per hashed lane (non-decreasing)


@dataclass(frozen=True)
class ProbeWarps:
    """Attribution evidence for one lockstep probe iteration (coalescing).

    Mirrors :class:`ProbeIteration` with the *warp id behind every
    counted unit*, so per-job shares of lanes / key compares / CAS
    claims / votes are bincounts over these arrays. The vote/CAS fields
    are empty for ``phase="walk"``. Gated on ``bus.wants``.
    """

    phase: str                    #: "construct" | "walk"
    pending_warps: np.ndarray     #: warp per pending lane (non-decreasing)
    compare_warps: np.ndarray     #: warp per key compare issued
    cas_warps: np.ndarray         #: warp per atomicCAS claim attempt
    matched_warps: np.ndarray     #: warp per vote into a pre-existing key
    claimed_warps: np.ndarray     #: warp per fresh-CAS-winner vote
    merged_warps: np.ndarray      #: warp per same-iteration loser merge


@dataclass(frozen=True)
class WalkStepWarps:
    """Attribution evidence for one lockstep walk step (coalescing).

    Mirrors :class:`WalkStep` with per-unit warp ids. Gated on
    ``bus.wants``.
    """

    walker_warps: np.ndarray      #: warp per walker executing this step
    vote_read_warps: np.ndarray   #: warp per vote-row read
    commit_warps: np.ndarray      #: warp per base committed


@dataclass(frozen=True)
class LaunchDone:
    """A launch finished; carries its serial-chain statistics."""

    waves: int                    #: construction waves executed
    construct_iterations: int     #: lockstep insert-probe iterations
    walk_steps: int               #: lockstep walk steps
    walk_iterations: int          #: lockstep lookup-probe iterations


@dataclass(frozen=True)
class ContigDropped:
    """A contig was dropped after its table overflowed.

    The paper's ``*hashtable full*`` semantics, emitted under
    :attr:`repro.resilience.OverflowPolicy.DROP_CONTIG` (or when
    grow-retry exhausts its attempt budget).
    """

    contig_id: int                #: index in the run's contig list
    k: int
    end: str                      #: "right" | "left"
    capacity: int                 #: slots of the table that overflowed


@dataclass(frozen=True)
class ContigRetried:
    """A contig's launch is being re-run with a grown hash table.

    Emitted once per failed contig per
    :attr:`repro.resilience.OverflowPolicy.GROW_RETRY` attempt.
    """

    contig_id: int                #: index in the run's contig list
    k: int
    attempt: int                  #: 1-based retry attempt
    capacity: int                 #: grown table capacity for the retry


@dataclass(frozen=True)
class MemoryTrafficResolved:
    """Published by :class:`TrafficSubscriber` after each launch."""

    hbm_bytes: float
    l1_bytes: float
    l2_bytes: float
    access_latency: float         #: cache-weighted dependent-access cycles


# ----------------------------------------------------------------------
# bus
# ----------------------------------------------------------------------


class EventBus:
    """Synchronous in-process dispatch of engine events to subscribers.

    Subscribers may declare the event types they handle in a
    ``handled_events`` class attribute (a tuple of event classes);
    omitting it means "wants everything". :meth:`wants` lets hot loops skip constructing events no
    subscriber would consume.
    """

    def __init__(self) -> None:
        self._subscribers: list = []
        self._wants_cache: dict = {}

    def subscribe(self, subscriber):
        """Attach a subscriber (any object with ``handle(event, bus)``)."""
        self._subscribers.append(subscriber)
        self._wants_cache.clear()
        return subscriber

    def wants(self, event_type: type) -> bool:
        """Whether any subscriber consumes events of ``event_type``."""
        cached = self._wants_cache.get(event_type)
        if cached is not None:
            return cached
        wanted = any(
            getattr(sub, "handled_events", None) is None
            or event_type in sub.handled_events
            for sub in self._subscribers
        )
        self._wants_cache[event_type] = wanted
        return wanted

    def emit(self, event) -> None:
        subscribers = self._subscribers
        if not subscribers:
            return
        for sub in subscribers:
            sub.handle(event, self)


# ----------------------------------------------------------------------
# subscribers
# ----------------------------------------------------------------------


class ProfileSubscriber:
    """Turns engine events into :class:`KernelProfile` counter updates.

    Holds the port-specific cost constants (protocol, warp size, walk
    scheduling mode) so the *same* event stream yields different profiles
    for different ports — exactly how the paper's three ports differ.
    """

    handled_events = (LaunchStarted, WaveExecuted, ProbeIteration, WalkStep,
                      LaunchDone, MemoryTrafficResolved, ContigDropped,
                      ContigRetried)

    def __init__(self, profile, *, warp_size: int, protocol,
                 lane_parallel_walks: bool, dependent_cpi: float) -> None:
        self.profile = profile
        self.warp_size = warp_size
        self.protocol = protocol
        self.lane_parallel_walks = lane_parallel_walks
        self.dependent_cpi = dependent_cpi
        self._hash_ops = 0
        self._launch_stats: LaunchDone | None = None

    def handle(self, event, bus) -> None:
        p = self.profile
        if isinstance(event, LaunchStarted):
            self._hash_ops = event.hash_ops
            self._launch_stats = None
        elif isinstance(event, WaveExecuted):
            h = self._hash_ops
            # every lane hashes its k-mer; the warp runs the hash code once
            p.intops += event.lanes * h
            p.construct_intops += event.lanes * h
            p.warp_instructions += event.warps * h
            p.lane_instructions += event.lanes * h
            p.inserts += event.lanes
        elif isinstance(event, ProbeIteration):
            if event.phase == "construct":
                ops = ITERATION_BASE_INSTRS + self.protocol.iteration_intops
                p.intops += event.lanes * ops
                p.construct_intops += event.lanes * ops
                p.warp_instructions += event.warps * ops
                p.lane_instructions += event.lanes * ops
                p.sync_ops += event.warps * self.protocol.iteration_syncs
                p.insert_probe_iterations += event.lanes
                p.atomics += (event.votes_matched + event.cas_attempts
                              + event.votes_merged)
            else:
                ops = ITERATION_BASE_INSTRS
                p.intops += event.lanes * ops
                p.walk_intops += event.lanes * ops
                p.warp_instructions += event.lanes * ops
                p.lane_instructions += event.lanes * ops // self.warp_size
                p.lookup_probe_iterations += event.lanes
            p.serial_depth += 1
        elif isinstance(event, WalkStep):
            walk_ops = self._hash_ops + WALK_STEP_INTOPS
            p.intops += event.walkers * walk_ops
            p.walk_intops += event.walkers * walk_ops
            if self.lane_parallel_walks:
                # independent thread scheduling: one walk per lane, so
                # ceil(walks / warp_size) warps execute each instruction
                warps_walking = -(-event.walkers // self.warp_size)
                p.warp_instructions += warps_walking * walk_ops
                p.lane_instructions += event.walkers * walk_ops
            else:
                # one lane walks; the warp still issues every instruction
                p.warp_instructions += event.walkers * walk_ops
                p.lane_instructions += event.walkers * walk_ops // self.warp_size
            p.lookups += event.walkers
            p.sync_ops += event.walkers  # terminal-state shuffle broadcast
            p.walk_steps += event.bases_committed
            p.extension_bases += event.bases_committed
        elif isinstance(event, LaunchDone):
            self._launch_stats = event
            p.kernels_launched += 1
        elif isinstance(event, ContigDropped):
            p.contigs_dropped += 1
        elif isinstance(event, ContigRetried):
            p.overflow_retries += 1
        elif isinstance(event, MemoryTrafficResolved):
            p.hbm_bytes += event.hbm_bytes
            p.l1_hit_bytes += event.l1_bytes
            p.l2_hit_bytes += event.l2_bytes
            stats = self._launch_stats
            if stats is None:
                return
            # serial chain of this launch: dependent instruction cycles
            # plus one cache-weighted access latency per probe iteration
            lat = event.access_latency
            cpi = self.dependent_cpi
            p.construct_chain_cycles += (
                stats.waves * self._hash_ops * cpi
                + stats.construct_iterations * lat
            )
            p.walk_chain_cycles += (
                stats.walk_steps * (self._hash_ops + WALK_STEP_INTOPS) * cpi
                + stats.walk_iterations * lat
            )


class TrafficSubscriber:
    """Accumulates per-launch access counts and applies the cache model.

    On :class:`LaunchDone` it evaluates the
    :class:`~repro.simt.memory.AnalyticCacheModel` over the launch's
    access categories and publishes :class:`MemoryTrafficResolved`.
    """

    handled_events = (LaunchStarted, WaveExecuted, ProbeIteration, WalkStep,
                      LaunchDone)

    _COUNT_KEYS = ("table_probe", "table_vote", "table_vote_read",
                   "key_compare", "read_stream")

    def __init__(self, device: DeviceSpec, *, l2_churn: float = 4.0,
                 parallel_scale: float = 1.0) -> None:
        self.device = device
        self.l2_churn = l2_churn
        self.parallel_scale = parallel_scale
        self.last_access_latency = 0.0
        self._context: LaunchStarted | None = None
        self._counts = dict.fromkeys(self._COUNT_KEYS, 0)

    @property
    def counts(self) -> dict:
        """The current launch's access-count ledger (for tests/tools)."""
        return dict(self._counts)

    def handle(self, event, bus) -> None:
        if isinstance(event, LaunchStarted):
            self._context = event
            self._counts = dict.fromkeys(self._COUNT_KEYS, 0)
        elif isinstance(event, WaveExecuted):
            self._counts["read_stream"] += event.lanes
        elif isinstance(event, ProbeIteration):
            self._counts["table_probe"] += event.lanes
            self._counts["key_compare"] += event.key_compares
            self._counts["table_vote"] += (event.votes_matched
                                           + event.votes_claimed
                                           + event.votes_merged)
        elif isinstance(event, WalkStep):
            self._counts["table_vote_read"] += event.vote_reads
        elif isinstance(event, LaunchDone):
            ctx = self._context
            if ctx is None:
                return
            mem = self._counts
            cats = [
                # probes are atomicCAS attempts and walk reads of CAS-owned
                # tags; votes are atomicAdds — all execute at the L2
                AccessCategory("table_probe", mem["table_probe"],
                               SLOT_TAG_BYTES, ctx.mean_table_bytes,
                               "random", atomic=True),
                AccessCategory("table_vote", mem["table_vote"],
                               SLOT_VALUE_BYTES, ctx.mean_table_bytes,
                               "random", writes=True, atomic=True),
                AccessCategory("table_vote_read", mem["table_vote_read"],
                               SLOT_VALUE_BYTES, ctx.mean_table_bytes,
                               "random", atomic=True),
                AccessCategory("key_compare", mem["key_compare"],
                               float(ctx.k), ctx.mean_read_bytes, "random"),
                AccessCategory("read_stream", mem["read_stream"], 2.0,
                               ctx.mean_read_bytes, "stream"),
            ]
            # At a reduced dataset scale the batch has proportionally fewer
            # warps; model the L2 pressure of the full-size batch so scaled
            # runs predict full-scale behaviour.
            effective_warps = max(1, round(ctx.n_warps / self.parallel_scale))
            model = AnalyticCacheModel(self.device, effective_warps,
                                       l2_churn=self.l2_churn)
            traffic = model.traffic(
                cats, cold_footprint_bytes=ctx.cold_footprint_bytes)
            # latency of one dependent table access, for chain-cycle terms
            h1, h2 = model.hit_rates(cats[0])
            dev = self.device
            latency = (
                h1 * dev.l1.latency_cycles
                + (1 - h1) * (h2 * dev.l2.latency_cycles
                              + (1 - h2) * dev.hbm_latency_cycles)
            )
            self.last_access_latency = latency
            bus.emit(MemoryTrafficResolved(
                hbm_bytes=traffic.hbm_bytes, l1_bytes=traffic.l1_bytes,
                l2_bytes=traffic.l2_bytes, access_latency=latency,
            ))


class TraceSubscriber:
    """Records every table-slot access's byte address, one array/launch."""

    handled_events = (LaunchStarted, SlotAccess, LaunchDone)

    def __init__(self) -> None:
        self.traces: list[np.ndarray] = []
        self._chunks: list[np.ndarray] = []

    def handle(self, event, bus) -> None:
        if isinstance(event, LaunchStarted):
            self._chunks = []
        elif isinstance(event, SlotAccess):
            self._chunks.append(event.slots * SLOT_BYTES)
        elif isinstance(event, LaunchDone):
            if self._chunks:
                self.traces.append(np.concatenate(self._chunks))


@dataclass(frozen=True)
class TraceReplayStats:
    """Exact-replay measurement of one launch's table-slot traffic."""

    k: int
    n_warps: int
    mean_table_bytes: float       #: per-warp table footprint (L2 pressure)
    accesses: int                 #: slot accesses replayed
    l1: int                       #: accesses served by the L1 (0: atomics)
    l2: int                       #: accesses served by the L2
    hbm: int                      #: accesses that went to memory
    hbm_bytes: int                #: line-granular bytes over the bus
    cold_lines: int               #: distinct L2 lines touched (compulsory)

    @property
    def l2_hit_rate(self) -> float:
        """L2 hit probability given an L1 miss (compulsory misses included)."""
        seen = self.accesses - self.l1
        return self.l2 / seen if seen else 0.0

    @property
    def warm_l2_hit_rate(self) -> float:
        """L2 hit probability with compulsory misses excluded.

        The analytic capacity model prices cold traffic separately (the
        cold-footprint floor), so this — not :attr:`l2_hit_rate` — is the
        quantity ``min(1, C / W)`` predicts.
        """
        seen = self.accesses - self.l1 - self.cold_lines
        return self.l2 / seen if seen > 0 else 1.0


class TraceReplaySubscriber:
    """Replays every table-slot access through the exact cache hierarchy.

    Attached when a kernel runs with ``memory_model="trace"``. Slot
    traces buffer per launch and replay in one batched
    :meth:`~repro.simt.memory.CacheHierarchy.replay` call on
    :class:`LaunchDone` — atomically, because the kernel's probes and
    votes are atomicCAS/atomicAdd and execute at the L2 on every GPU
    modeled here. The hierarchy cold-starts per launch: each launch
    allocates fresh tables, so byte addresses from different launches
    alias unrelated memory.
    """

    handled_events = (LaunchStarted, SlotAccess, LaunchDone)

    def __init__(self, device: DeviceSpec, ways: int = 8) -> None:
        self.device = device
        self.hierarchy = CacheHierarchy(device, ways=ways)
        self.launches: list[TraceReplayStats] = []
        self._chunks: list[np.ndarray] = []
        self._context: LaunchStarted | None = None

    def handle(self, event, bus) -> None:
        if isinstance(event, LaunchStarted):
            self._chunks = []
            self._context = event
        elif isinstance(event, SlotAccess):
            self._chunks.append(event.slots * SLOT_BYTES)
        elif isinstance(event, LaunchDone):
            ctx = self._context
            if ctx is None:
                return
            trace = (np.concatenate(self._chunks) if self._chunks
                     else np.zeros(0, dtype=np.int64))
            self.hierarchy.reset()
            counts = self.hierarchy.replay(trace, atomic=True)
            line = self.device.l2.line_bytes
            self.launches.append(TraceReplayStats(
                k=ctx.k, n_warps=ctx.n_warps,
                mean_table_bytes=ctx.mean_table_bytes,
                accesses=int(trace.size), l1=counts["l1"], l2=counts["l2"],
                hbm=counts["hbm"], hbm_bytes=self.hierarchy.hbm_bytes,
                cold_lines=int(np.unique(trace // line).size),
            ))
            self._chunks = []

    # ------------------------------------------------------------------
    # aggregate views (validation / recalibration of the analytic model)

    @property
    def total_accesses(self) -> int:
        return sum(s.accesses for s in self.launches)

    @property
    def total_hbm_bytes(self) -> int:
        return sum(s.hbm_bytes for s in self.launches)

    @property
    def l2_hit_rate(self) -> float:
        """Access-weighted exact L2 hit rate across all launches."""
        return replay_l2_hit_rate(self.launches)

    def suggested_l2_churn(self) -> float:
        """The ``l2_churn`` making the analytic model match the replay."""
        return replay_suggested_l2_churn(self.device, self.launches)


def replay_l2_hit_rate(launches: list[TraceReplayStats],
                       warm: bool = True) -> float:
    """Access-weighted exact L2 hit rate over replayed launches.

    ``warm`` (default) excludes each launch's compulsory misses, which is
    what the analytic capacity model predicts; ``warm=False`` gives the
    raw rate including cold traffic.
    """
    if warm:
        seen = sum(s.accesses - s.l1 - s.cold_lines for s in launches)
    else:
        seen = sum(s.accesses - s.l1 for s in launches)
    return sum(s.l2 for s in launches) / seen if seen > 0 else 1.0


def replay_suggested_l2_churn(device: DeviceSpec,
                              launches: list[TraceReplayStats]) -> float:
    """The ``l2_churn`` making the analytic model match exact replays.

    Access-weighted mean of the per-launch inversions
    (:func:`~repro.simt.memory.implied_l2_churn`) against the *warm* hit
    rates (the model floors compulsory traffic separately); launches
    whose replay saw no L2 hits are ignored.
    """
    total = 0.0
    weight = 0
    for s in launches:
        if s.accesses == 0 or s.warm_l2_hit_rate <= 0.0:
            continue
        churn = implied_l2_churn(device, s.n_warps,
                                 s.mean_table_bytes, s.warm_l2_hit_rate)
        total += churn * s.accesses
        weight += s.accesses
    return total / weight if weight else 1.0
