"""The instrumentation-hook layer: typed engine events + subscribers.

The execution engine never mutates a :class:`~repro.simt.counters.KernelProfile`
or a traffic ledger inline. Instead, the phases emit *events* describing
what just executed (a construction wave, a probe iteration, a walk step,
a batch of table-slot accesses, a finished launch) onto an
:class:`EventBus`, and independent subscribers turn those events into
observations:

* :class:`ProfileSubscriber` — instruction/operation counters
  (:class:`~repro.simt.counters.KernelProfile`).
* :class:`TrafficSubscriber` — the per-launch
  :class:`~repro.simt.memory.AnalyticCacheModel` traffic accounting;
  publishes a :class:`MemoryTrafficResolved` event back onto the bus so
  the profile can absorb the byte counts and latency-weighted chain
  cycles without the two subscribers knowing about each other.
* :class:`TraceSubscriber` — exact table-slot address traces for the
  trace-driven cache-simulator validation.

Any object with a ``handle(event, bus)`` method can subscribe, so new
observability (histograms, per-launch logs, live dashboards) attaches
without touching kernel code.

Ordering note: :class:`TrafficSubscriber` emits
:class:`MemoryTrafficResolved` while handling :class:`LaunchDone`;
subscribers that consume both (the profile) must be registered *before*
it so they see the launch stats first. The SIMT driver
(:mod:`repro.kernels.engine.simt`) registers them in that order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.vectortable import SLOT_BYTES, SLOT_TAG_BYTES, SLOT_VALUE_BYTES
from repro.simt.device import DeviceSpec
from repro.simt.memory import AccessCategory, AnalyticCacheModel

#: Warp instructions charged per probe iteration (loop bookkeeping).
ITERATION_BASE_INSTRS = 10

#: Thread-level integer ops per walk step outside the hash (state updates).
WALK_STEP_INTOPS = 24

# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LaunchStarted:
    """A kernel launch (one bin, one extension direction) is beginning."""

    k: int
    hash_ops: int                 #: INTOPs of one k-length Murmur hash
    n_warps: int                  #: contigs (= warps) in the launch
    mean_table_bytes: float       #: mean per-warp hash-table footprint
    mean_read_bytes: float        #: mean per-warp read-buffer footprint
    cold_footprint_bytes: float   #: compulsory-traffic floor of the launch


@dataclass(frozen=True)
class WaveExecuted:
    """One construction wave hashed + dispatched its k-mers."""

    lanes: int                    #: k-mers hashed (insertions issued)
    warps: int                    #: warps with at least one pending lane


@dataclass(frozen=True)
class ProbeIteration:
    """One lockstep probe iteration over all pending lanes.

    ``phase`` is ``"construct"`` (insert probing) or ``"walk"`` (lookup
    probing); the vote/CAS fields are only non-zero during construction.
    """

    phase: str                    #: "construct" | "walk"
    lanes: int                    #: lanes still pending this iteration
    warps: int                    #: warps with pending lanes
    key_compares: int             #: occupied slots whose key was compared
    cas_attempts: int = 0         #: atomicCAS claims issued on empty slots
    votes_matched: int = 0        #: votes merged into pre-existing keys
    votes_claimed: int = 0        #: votes by fresh CAS winners
    votes_merged: int = 0         #: same-iteration loser merges (match_any)


@dataclass(frozen=True)
class WalkStep:
    """One lockstep mer-walk step across all still-walking warps."""

    walkers: int                  #: warps that executed this step
    vote_reads: int               #: slot vote rows read to resolve bases
    bases_committed: int          #: bases accepted across all walkers


@dataclass(frozen=True)
class SlotAccess:
    """Raw table-slot indices touched by one probe iteration."""

    slots: np.ndarray             #: global slot indices (int64)


@dataclass(frozen=True)
class LaunchDone:
    """A launch finished; carries its serial-chain statistics."""

    waves: int                    #: construction waves executed
    construct_iterations: int     #: lockstep insert-probe iterations
    walk_steps: int               #: lockstep walk steps
    walk_iterations: int          #: lockstep lookup-probe iterations


@dataclass(frozen=True)
class MemoryTrafficResolved:
    """Published by :class:`TrafficSubscriber` after each launch."""

    hbm_bytes: float
    l1_bytes: float
    l2_bytes: float
    access_latency: float         #: cache-weighted dependent-access cycles


# ----------------------------------------------------------------------
# bus
# ----------------------------------------------------------------------


class EventBus:
    """Synchronous in-process dispatch of engine events to subscribers."""

    def __init__(self) -> None:
        self._subscribers: list = []

    def subscribe(self, subscriber):
        """Attach a subscriber (any object with ``handle(event, bus)``)."""
        self._subscribers.append(subscriber)
        return subscriber

    def emit(self, event) -> None:
        for sub in self._subscribers:
            sub.handle(event, self)


# ----------------------------------------------------------------------
# subscribers
# ----------------------------------------------------------------------


class ProfileSubscriber:
    """Turns engine events into :class:`KernelProfile` counter updates.

    Holds the port-specific cost constants (protocol, warp size, walk
    scheduling mode) so the *same* event stream yields different profiles
    for different ports — exactly how the paper's three ports differ.
    """

    def __init__(self, profile, *, warp_size: int, protocol,
                 lane_parallel_walks: bool, dependent_cpi: float) -> None:
        self.profile = profile
        self.warp_size = warp_size
        self.protocol = protocol
        self.lane_parallel_walks = lane_parallel_walks
        self.dependent_cpi = dependent_cpi
        self._hash_ops = 0
        self._launch_stats: LaunchDone | None = None

    def handle(self, event, bus) -> None:
        p = self.profile
        if isinstance(event, LaunchStarted):
            self._hash_ops = event.hash_ops
            self._launch_stats = None
        elif isinstance(event, WaveExecuted):
            h = self._hash_ops
            # every lane hashes its k-mer; the warp runs the hash code once
            p.intops += event.lanes * h
            p.construct_intops += event.lanes * h
            p.warp_instructions += event.warps * h
            p.lane_instructions += event.lanes * h
            p.inserts += event.lanes
        elif isinstance(event, ProbeIteration):
            if event.phase == "construct":
                ops = ITERATION_BASE_INSTRS + self.protocol.iteration_intops
                p.intops += event.lanes * ops
                p.construct_intops += event.lanes * ops
                p.warp_instructions += event.warps * ops
                p.lane_instructions += event.lanes * ops
                p.sync_ops += event.warps * self.protocol.iteration_syncs
                p.insert_probe_iterations += event.lanes
                p.atomics += (event.votes_matched + event.cas_attempts
                              + event.votes_merged)
            else:
                ops = ITERATION_BASE_INSTRS
                p.intops += event.lanes * ops
                p.walk_intops += event.lanes * ops
                p.warp_instructions += event.lanes * ops
                p.lane_instructions += event.lanes * ops // self.warp_size
                p.lookup_probe_iterations += event.lanes
            p.serial_depth += 1
        elif isinstance(event, WalkStep):
            walk_ops = self._hash_ops + WALK_STEP_INTOPS
            p.intops += event.walkers * walk_ops
            p.walk_intops += event.walkers * walk_ops
            if self.lane_parallel_walks:
                # independent thread scheduling: one walk per lane, so
                # ceil(walks / warp_size) warps execute each instruction
                warps_walking = -(-event.walkers // self.warp_size)
                p.warp_instructions += warps_walking * walk_ops
                p.lane_instructions += event.walkers * walk_ops
            else:
                # one lane walks; the warp still issues every instruction
                p.warp_instructions += event.walkers * walk_ops
                p.lane_instructions += event.walkers * walk_ops // self.warp_size
            p.lookups += event.walkers
            p.sync_ops += event.walkers  # terminal-state shuffle broadcast
            p.walk_steps += event.bases_committed
            p.extension_bases += event.bases_committed
        elif isinstance(event, LaunchDone):
            self._launch_stats = event
            p.kernels_launched += 1
        elif isinstance(event, MemoryTrafficResolved):
            p.hbm_bytes += event.hbm_bytes
            p.l1_hit_bytes += event.l1_bytes
            p.l2_hit_bytes += event.l2_bytes
            stats = self._launch_stats
            if stats is None:
                return
            # serial chain of this launch: dependent instruction cycles
            # plus one cache-weighted access latency per probe iteration
            lat = event.access_latency
            cpi = self.dependent_cpi
            p.construct_chain_cycles += (
                stats.waves * self._hash_ops * cpi
                + stats.construct_iterations * lat
            )
            p.walk_chain_cycles += (
                stats.walk_steps * (self._hash_ops + WALK_STEP_INTOPS) * cpi
                + stats.walk_iterations * lat
            )


class TrafficSubscriber:
    """Accumulates per-launch access counts and applies the cache model.

    On :class:`LaunchDone` it evaluates the
    :class:`~repro.simt.memory.AnalyticCacheModel` over the launch's
    access categories and publishes :class:`MemoryTrafficResolved`.
    """

    _COUNT_KEYS = ("table_probe", "table_vote", "table_vote_read",
                   "key_compare", "read_stream")

    def __init__(self, device: DeviceSpec, *, l2_churn: float = 4.0,
                 parallel_scale: float = 1.0) -> None:
        self.device = device
        self.l2_churn = l2_churn
        self.parallel_scale = parallel_scale
        self.last_access_latency = 0.0
        self._context: LaunchStarted | None = None
        self._counts = dict.fromkeys(self._COUNT_KEYS, 0)

    @property
    def counts(self) -> dict:
        """The current launch's access-count ledger (for tests/tools)."""
        return dict(self._counts)

    def handle(self, event, bus) -> None:
        if isinstance(event, LaunchStarted):
            self._context = event
            self._counts = dict.fromkeys(self._COUNT_KEYS, 0)
        elif isinstance(event, WaveExecuted):
            self._counts["read_stream"] += event.lanes
        elif isinstance(event, ProbeIteration):
            self._counts["table_probe"] += event.lanes
            self._counts["key_compare"] += event.key_compares
            self._counts["table_vote"] += (event.votes_matched
                                           + event.votes_claimed
                                           + event.votes_merged)
        elif isinstance(event, WalkStep):
            self._counts["table_vote_read"] += event.vote_reads
        elif isinstance(event, LaunchDone):
            ctx = self._context
            if ctx is None:
                return
            mem = self._counts
            cats = [
                # probes are atomicCAS attempts and walk reads of CAS-owned
                # tags; votes are atomicAdds — all execute at the L2
                AccessCategory("table_probe", mem["table_probe"],
                               SLOT_TAG_BYTES, ctx.mean_table_bytes,
                               "random", atomic=True),
                AccessCategory("table_vote", mem["table_vote"],
                               SLOT_VALUE_BYTES, ctx.mean_table_bytes,
                               "random", writes=True, atomic=True),
                AccessCategory("table_vote_read", mem["table_vote_read"],
                               SLOT_VALUE_BYTES, ctx.mean_table_bytes,
                               "random", atomic=True),
                AccessCategory("key_compare", mem["key_compare"],
                               float(ctx.k), ctx.mean_read_bytes, "random"),
                AccessCategory("read_stream", mem["read_stream"], 2.0,
                               ctx.mean_read_bytes, "stream"),
            ]
            # At a reduced dataset scale the batch has proportionally fewer
            # warps; model the L2 pressure of the full-size batch so scaled
            # runs predict full-scale behaviour.
            effective_warps = max(1, round(ctx.n_warps / self.parallel_scale))
            model = AnalyticCacheModel(self.device, effective_warps,
                                       l2_churn=self.l2_churn)
            traffic = model.traffic(
                cats, cold_footprint_bytes=ctx.cold_footprint_bytes)
            # latency of one dependent table access, for chain-cycle terms
            h1, h2 = model.hit_rates(cats[0])
            dev = self.device
            latency = (
                h1 * dev.l1.latency_cycles
                + (1 - h1) * (h2 * dev.l2.latency_cycles
                              + (1 - h2) * dev.hbm_latency_cycles)
            )
            self.last_access_latency = latency
            bus.emit(MemoryTrafficResolved(
                hbm_bytes=traffic.hbm_bytes, l1_bytes=traffic.l1_bytes,
                l2_bytes=traffic.l2_bytes, access_latency=latency,
            ))


class TraceSubscriber:
    """Records every table-slot access's byte address, one array/launch."""

    def __init__(self) -> None:
        self.traces: list[np.ndarray] = []
        self._chunks: list[np.ndarray] = []

    def handle(self, event, bus) -> None:
        if isinstance(event, LaunchStarted):
            self._chunks = []
        elif isinstance(event, SlotAccess):
            self._chunks.append(event.slots * SLOT_BYTES)
        elif isinstance(event, LaunchDone):
            if self._chunks:
                self.traces.append(np.concatenate(self._chunks))
