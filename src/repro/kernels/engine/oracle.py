"""The scalar parity oracles: the pre-megabatch per-warp code paths.

The PR-6 megabatch refactor (DESIGN.md decision #14) turned the walk,
construct, result-scatter, and k-schedule-merge hot paths into lockstep
NumPy array programs. This module preserves the *previous* per-warp
Python implementations verbatim -- walk state in ``list[set]`` /
list-of-lists, insert waves re-deriving their pending set from a
full-size boolean mask every probe iteration, the per-contig result
scatter with per-string :func:`~repro.genomics.dna.reverse_complement`,
and the per-contig k-schedule merge loop -- so that

* the parity test suite can assert, property-style, that the lockstep
  paths are bit-identical to the scalar semantics (outputs, iteration
  counts, overflow sets, and the full emitted event stream), and
* ``benchmarks/bench_engine_megabatch.py`` and ``repro bench`` can
  measure the megabatch speedup against the genuine pre-refactor
  engine on the same inputs.

These classes are oracles, not production paths: they trade speed for
obviousness, and they are exactly the style lint rule REP006 bans from
the production phase modules (which is why they live here and not in
``walk.py`` / ``construct.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.construct import (
    estimate_table_slots,
    estimate_table_slots_upper_bound,
)
from repro.core.extension import (
    STATE_CODES,
    WalkState,
    resolve_extension_batch,
)
from repro.errors import HashTableFullError, KernelError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import reverse_complement
from repro.genomics.kmer import fingerprint_matrix
from repro.hashing.murmur import murmur2_batch
from repro.hashing.opcount import hash_intops
from repro.kernels.engine.backend import KernelRunResult
from repro.kernels.engine.construct import ConstructPhase
from repro.kernels.engine.events import (
    BarrierSync,
    ContigDropped,
    ContigRetried,
    EventBus,
    LaunchDone,
    LaunchStarted,
    ProbeIteration,
    SlotAccess,
    SlotRead,
    SlotWrite,
    WalkStep,
)
from repro.kernels.engine.prepare import (
    Batch,
    BatchPreparer,
    PrepareCache,
    segmented_arange,
    subset_batch,
)
from repro.kernels.engine.schedule import LaunchConfig, validate_k_schedule
from repro.kernels.engine.walk import WalkOutput, WalkPhase
from repro.kernels.vectortable import SLOT_BYTES, WarpHashTables
from repro.resilience.policy import OverflowPolicy
from repro.simt.counters import KernelProfile

_CODE_TO_STATE = {v: k for k, v in STATE_CODES.items()}


class ScalarOracleWalkPhase(WalkPhase):
    """The pre-refactor walk: per-warp ``visited`` sets and base lists.

    ``run`` is the pre-refactor implementation byte-for-byte, modulo the
    final packing of its Python-level results through
    :meth:`~repro.kernels.engine.walk.WalkOutput.from_scalar` (so the
    refactored driver can consume either phase interchangeably).
    """

    def run(self, batch: Batch, tables: WarpHashTables,
            bus: EventBus) -> WalkOutput:
        n_warps = batch.n_warps
        cur = batch.seeds.copy()
        alive = batch.seed_valid.copy()
        bases: list[list[str]] = [[] for _ in range(n_warps)]
        states = [WalkState.MISSING] * n_warps
        visited: list[set] = [set() for _ in range(n_warps)]
        first_step = np.ones(n_warps, dtype=bool)
        live = np.nonzero(alive)[0]
        if live.size:
            for w, fp in zip(live, fingerprint_matrix(cur[live])):
                visited[w].add(int(fp))
        chain = 0
        steps_run = 0
        overflowed: list[int] = []
        emit_slots = bus.wants(SlotAccess)
        emit_reads = bus.wants(SlotRead)
        for _step in range(self.max_walk_len + 1):
            if not alive.any():
                break
            steps_run += 1
            a = np.nonzero(alive)[0]
            if _step == self.max_walk_len:
                for w in a:
                    states[w] = WalkState.MAX_LEN
                break
            homes = murmur2_batch(cur[a], self.seed)
            fps = fingerprint_matrix(cur[a])

            # probe for the key (or an empty slot = not present)
            found_slot = np.full(a.size, -1, dtype=np.int64)
            missing = np.zeros(a.size, dtype=bool)
            probe = np.zeros(a.size, dtype=np.int64)
            unresolved = np.ones(a.size, dtype=bool)
            while unresolved.any():
                u = np.nonzero(unresolved)[0]
                over = probe[u] >= tables.capacities[a[u]]
                if over.any():
                    # A wrapped probe means the table is completely full
                    # and the key absent; the open-addressing loop would
                    # never terminate.
                    if not self.defer_overflow:
                        j = int(u[np.nonzero(over)[0][0]])
                        w = int(a[j])
                        raise HashTableFullError(
                            "hash table wrapped during walk lookup",
                            contig_id=int(batch.contig_ids[w]),
                            k=int(cur.shape[1]),
                            capacity=int(tables.capacities[w]),
                            probes=int(probe[j]),
                        )
                    bad = u[over]
                    overflowed.extend(int(w) for w in a[bad])
                    missing[bad] = True
                    unresolved[bad] = False
                    if not unresolved.any():
                        break
                    u = np.nonzero(unresolved)[0]
                chain += 1
                slots = tables.slot_of(a[u], homes[u], probe[u])
                if emit_slots:
                    bus.emit(SlotAccess(slots=slots, kind="probe"))
                occupied, slot_fp = tables.inspect(slots)
                bus.emit(ProbeIteration(
                    phase="walk", lanes=u.size, warps=u.size,
                    key_compares=int(np.count_nonzero(occupied)),
                ))
                hit = occupied & (slot_fp == fps[u])
                found_slot[u[hit]] = slots[hit]
                miss = ~occupied
                self._on_probe_miss(found_slot, missing, u, miss, slots)
                probe[u[occupied & ~hit]] += 1
                unresolved[u[hit | miss]] = False

            # resolve extensions for found keys
            res_states = np.full(a.size, -2, dtype=np.int8)
            res_bases = np.full(a.size, -1, dtype=np.int8)
            f = found_slot >= 0
            vote_reads = int(f.sum())
            if f.any():
                if emit_reads:
                    bus.emit(SlotRead(phase="walk", kind="vote_read",
                                      slots=found_slot[f], warps=a[f]))
                hi_rows, lo_rows = tables.votes_at(found_slot[f])
                s, b = resolve_extension_batch(hi_rows, lo_rows, self.policy)
                res_states[f] = s
                res_bases[f] = b

            bases_committed = 0
            next_alive = alive.copy()
            advancing = ~missing & (res_states == STATE_CODES[WalkState.EXTEND])
            # terminal warps leave the walk; each warp terminates at most
            # once per launch, so these loops are O(n_warps) overall
            for w in a[missing]:
                states[w] = WalkState.MISSING if first_step[w] else WalkState.END
                next_alive[w] = False
            for j in np.nonzero(~missing & ~advancing)[0]:
                w = a[j]
                states[w] = _CODE_TO_STATE[int(res_states[j])]
                next_alive[w] = False
            if advancing.any():
                adv = np.nonzero(advancing)[0]
                aw = a[adv]
                cur[aw, :-1] = cur[aw, 1:]
                cur[aw, -1] = res_bases[adv]
                fps_next = fingerprint_matrix(cur[aw])
                for j, w, fp in zip(adv, aw, fps_next):
                    fp_next = int(fp)
                    if fp_next in visited[w]:
                        states[w] = WalkState.LOOP
                        next_alive[w] = False
                        continue
                    visited[w].add(fp_next)
                    bases[w].append("ACGT"[int(res_bases[j])])
                    bases_committed += 1
            bus.emit(WalkStep(walkers=a.size, vote_reads=vote_reads,
                              bases_committed=bases_committed))
            first_step[a] = False
            alive = next_alive
        return WalkOutput.from_scalar(
            ["".join(b) for b in bases], states, steps_run, chain,
            tuple(overflowed), self.max_walk_len)


class ScalarOracleConstructPhase(ConstructPhase):
    """The pre-compaction insert wave: full-mask ``nonzero`` per round."""

    def _insert_wave(self, batch: Batch, tables: WarpHashTables,
                     idx: np.ndarray, bus: EventBus,
                     lanes: np.ndarray | None = None) -> tuple[int, list[int]]:
        proto = self.protocol
        warps = batch.ins_warp[idx]
        homes = batch.ins_home[idx]
        fps = batch.ins_fp[idx]
        exts = batch.ins_ext[idx]
        his = batch.ins_hi[idx]
        n = idx.size
        probe = np.zeros(n, dtype=np.int64)
        pending = np.ones(n, dtype=bool)
        iterations = 0
        overflowed: list[int] = []
        emit_slots = bus.wants(SlotAccess)
        emit_writes = bus.wants(SlotWrite)
        emit_sync = bus.wants(BarrierSync)

        def lane_of(sel: np.ndarray) -> np.ndarray | None:
            return lanes[sel] if lanes is not None else None

        while pending.any():
            p = np.nonzero(pending)[0]
            over = probe[p] >= tables.capacities[warps[p]]
            if over.any():
                if not self.defer_overflow:
                    j = int(p[np.nonzero(over)[0][0]])
                    w = int(warps[j])
                    raise HashTableFullError(
                        "hash table overflow during construction",
                        contig_id=int(batch.contig_ids[w]),
                        k=int(batch.seeds.shape[1]),
                        capacity=int(tables.capacities[w]),
                        probes=int(probe[j]),
                    )
                bad = np.unique(warps[p[over]])
                overflowed.extend(int(w) for w in bad)
                pending &= ~np.isin(warps, bad)
                if not pending.any():
                    break
                p = np.nonzero(pending)[0]
            iterations += 1
            uniq_warps, uniq_counts = np.unique(warps[p], return_counts=True)
            active_warps = int(uniq_warps.size)

            slots = tables.slot_of(warps[p], homes[p], probe[p])
            if emit_slots:
                bus.emit(SlotAccess(slots=slots, kind="probe"))
            occupied, slot_fp = tables.inspect(slots)
            key_compares = int(np.count_nonzero(occupied))

            done = np.zeros(p.size, dtype=bool)
            votes_matched = 0
            match = occupied & (slot_fp == fps[p])
            if match.any():
                sel = p[match]
                self._vote(tables, slots[match], exts[sel], his[sel],
                           warps[sel], lane_of(sel), bus, emit_writes)
                votes_matched = int(match.sum())
                done |= match

            cas_attempts = 0
            votes_claimed = 0
            votes_merged = 0
            empty = ~occupied
            if empty.any():
                e = np.nonzero(empty)[0]
                sel = p[e]
                winners_local = self._claim(tables, slots[e], fps[sel],
                                            warps[sel], lane_of(sel), bus,
                                            emit_writes)
                cas_attempts = e.size  # every empty observer issues a CAS
                win = e[winners_local]
                sel = p[win]
                self._vote(tables, slots[win], exts[sel], his[sel],
                           warps[sel], lane_of(sel), bus, emit_writes)
                votes_claimed = win.size
                done_claim = np.zeros(p.size, dtype=bool)
                done_claim[win] = True
                done |= done_claim
                losers = e[~winners_local]
                if proto.merges_in_iteration and losers.size:
                    # __match_any_sync: losers whose key equals the fresh
                    # winner's key merge their vote in this same iteration.
                    now_fp = tables.fp[slots[losers]]
                    same = now_fp == fps[p[losers]]
                    m = losers[same]
                    if m.size:
                        sel = p[m]
                        self._vote(tables, slots[m], exts[sel], his[sel],
                                   warps[sel], lane_of(sel), bus, emit_writes)
                        votes_merged = m.size
                        d = np.zeros(p.size, dtype=bool)
                        d[m] = True
                        done |= d
                # HIP/SYCL losers retry next iteration at the same probe.

            if emit_sync and proto.iteration_syncs:
                self._barrier(uniq_warps, uniq_counts, bus)
            bus.emit(ProbeIteration(
                phase="construct", lanes=p.size, warps=active_warps,
                key_compares=key_compares, cas_attempts=cas_attempts,
                votes_matched=votes_matched, votes_claimed=votes_claimed,
                votes_merged=votes_merged,
            ))
            mismatch = occupied & ~match
            probe[p[mismatch]] += 1
            pending[p[done]] = False
        return iterations, overflowed


def iterate_k_schedule_scalar(
    run_one: Callable[[int], "object"],
    n_contigs: int,
    k_schedule: tuple[int, ...],
) -> tuple[int, KernelProfile, list, list]:
    """The pre-refactor per-contig k-schedule merge loop.

    Drop-in for :func:`~repro.kernels.engine.schedule.iterate_k_schedule`
    with the settle/merge decisions taken one contig at a time instead
    of as NumPy mask assignments.
    """
    validate_k_schedule(k_schedule)
    merged: KernelProfile | None = None
    right: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * n_contigs
    left: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * n_contigs
    settled_r = [False] * n_contigs
    settled_l = [False] * n_contigs
    last_k = k_schedule[0]
    for k in k_schedule:
        if all(settled_r) and all(settled_l):
            break
        last_k = k
        res = run_one(k)
        if merged is None:
            merged = res.profile
        else:
            merged.merge(res.profile)
        for i in range(n_contigs):
            for side, settled, best in (
                (res.right, settled_r, right),
                (res.left, settled_l, left),
            ):
                if settled[i]:
                    continue
                bases, state = side[i]
                if len(bases) >= len(best[i][0]) or state is not WalkState.FORK:
                    best[i] = (bases, state)
                if state is not WalkState.FORK:
                    settled[i] = True
    assert merged is not None
    merged.contigs = n_contigs
    return last_k, merged, right, left


#: Chunk size of the pre-refactor hashing pass (pinned HEAD value).
_HASH_CHUNK = 1 << 18


@dataclass
class OracleFlattenedBin:
    """The pre-refactor k-independent flatten result (pinned verbatim).

    No oriented-contig code stream: the pre-refactor ``finish`` extracted
    seed k-mers with a per-contig ``end_kmer`` / ``reverse_complement``
    loop instead of a vectorized gather.
    """

    contig_ids: list[int]
    codes: np.ndarray           # all reads' codes, concatenated
    quals: np.ndarray           # matching qualities
    read_warps: np.ndarray      # warp id per read
    read_lens: np.ndarray       # length per read
    offsets: np.ndarray         # per-read start offsets into codes (n+1)
    read_bytes_per_warp: np.ndarray
    upper_capacities: np.ndarray  # k-independent table-size upper bound

    @property
    def n_warps(self) -> int:
        return len(self.contig_ids)


class OracleBatchPreparer(BatchPreparer):
    """The pre-refactor batch preparer, pinned verbatim.

    Per-read Python orientation in ``flatten`` and the chunked
    ``(n, k)``-window ``murmur2_batch`` / ``fingerprint_matrix`` hashing
    pass in ``finish`` — the exact code the refactored preparer's
    stream-addressed ``murmur2_stream`` / ``rolling_fingerprints`` path
    replaced, preserved so oracle kernels measure (and validate against)
    the genuine pre-refactor preparation cost. Produces bit-identical
    :class:`~repro.kernels.engine.prepare.Batch` arrays.
    """

    def flatten(self, contigs: list[Contig], bin_, end: End) -> OracleFlattenedBin:
        contig_ids = bin_.contig_indices
        code_parts: list[np.ndarray] = []
        qual_parts: list[np.ndarray] = []
        read_warps: list[int] = []
        read_lens: list[int] = []
        read_bytes = np.zeros(len(contig_ids), dtype=np.int64)
        upper = np.empty(len(contig_ids), dtype=np.int64)
        for w, ci in enumerate(contig_ids):
            contig = contigs[ci]
            end_reads = contig.reads_for_end(end)
            for r in end_reads:
                codes = r.codes if end is End.RIGHT else reverse_complement(r.codes)
                quals = r.quals if end is End.RIGHT else r.quals[::-1]
                code_parts.append(codes)
                qual_parts.append(np.ascontiguousarray(quals))
                read_warps.append(w)
                read_lens.append(len(codes))
            upper[w] = estimate_table_slots_upper_bound(end_reads,
                                                        self.load_factor)
            read_bytes[w] = 2 * end_reads.total_bases
        codes = np.concatenate(code_parts) if code_parts else np.empty(0, np.uint8)
        quals = np.concatenate(qual_parts) if qual_parts else np.empty(0, np.uint8)
        lens = np.asarray(read_lens, dtype=np.int64)
        offsets = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        return OracleFlattenedBin(
            contig_ids=list(contig_ids), codes=codes, quals=quals,
            read_warps=np.asarray(read_warps, dtype=np.int64),
            read_lens=lens, offsets=offsets, read_bytes_per_warp=read_bytes,
            upper_capacities=upper,
        )

    def finish(self, flat: OracleFlattenedBin, contigs: list[Contig],
               end: End, k: int) -> Batch:
        n_warps = flat.n_warps
        n_ins_per_read = np.maximum(flat.read_lens - k, 0)
        starts = np.repeat(flat.offsets[:-1], n_ins_per_read) + segmented_arange(
            n_ins_per_read
        )
        ins_warp = np.repeat(flat.read_warps, n_ins_per_read)

        if self.table_sizing == "upper_bound":
            capacities = flat.upper_capacities.copy()
        else:
            ins_per_warp = np.zeros(n_warps, dtype=np.int64)
            np.add.at(ins_per_warp, flat.read_warps, n_ins_per_read)
            capacities = np.asarray(
                [estimate_table_slots(int(n), self.load_factor)
                 for n in ins_per_warp], dtype=np.int64)

        seeds = np.zeros((n_warps, k), dtype=np.uint8)
        seed_valid = np.zeros(n_warps, dtype=bool)
        for w, ci in enumerate(flat.contig_ids):
            contig = contigs[ci]
            if len(contig) >= k:
                seed_valid[w] = True
                seeds[w] = (
                    contig.end_kmer(k, End.RIGHT)
                    if end is End.RIGHT
                    else reverse_complement(contig.end_kmer(k, End.LEFT))
                )

        codes, quals = flat.codes, flat.quals
        n = starts.size
        ins_home = np.empty(n, dtype=np.uint32)
        ins_fp = np.empty(n, dtype=np.uint64)
        ins_ext = np.empty(n, dtype=np.uint8)
        ins_hi = np.empty(n, dtype=bool)
        col = np.arange(k, dtype=np.int64)
        for lo in range(0, n, _HASH_CHUNK):
            hi = min(lo + _HASH_CHUNK, n)
            win = codes[starts[lo:hi, None] + col]
            ins_home[lo:hi] = murmur2_batch(win, self.seed)
            ins_fp[lo:hi] = fingerprint_matrix(win)
            ext_pos = starts[lo:hi] + k
            ins_ext[lo:hi] = codes[ext_pos]
            ins_hi[lo:hi] = quals[ext_pos] >= self.qual_threshold
        return Batch(
            contig_ids=list(flat.contig_ids), codes=codes, quals=quals,
            ins_warp=ins_warp, ins_home=ins_home, ins_fp=ins_fp,
            ins_ext=ins_ext, ins_hi=ins_hi, seeds=seeds, seed_valid=seed_valid,
            capacities=capacities, read_bytes_per_warp=flat.read_bytes_per_warp,
        )


class OracleWarpHashTables(WarpHashTables):
    """Per-warp tables with the pre-refactor ``np.add.at`` vote (pinned)."""

    def vote(self, slots: np.ndarray, exts: np.ndarray,
             hi_mask: np.ndarray) -> None:
        hi_rows = slots[hi_mask]
        lo_rows = slots[~hi_mask]
        np.add.at(self.hi_q, (hi_rows, exts[hi_mask].astype(np.int64)), 1)
        np.add.at(self.low_q, (lo_rows, exts[~hi_mask].astype(np.int64)), 1)
        np.add.at(self.count, slots, 1)


def oracle_kernel_cls(kernel_cls):
    """A kernel subclass running the entire pre-refactor scalar path.

    ``oracle_kernel_cls(CudaLocalAssemblyKernel)(device)`` behaves like
    the pre-megabatch engine end to end: scalar construct/walk phases,
    the per-contig result scatter with per-string
    :func:`~repro.genomics.dna.reverse_complement`, and the per-contig
    k-schedule merge -- with identical outputs, profiles, and event
    streams. This is the baseline every megabatch parity test and
    ``bench_engine_megabatch`` measures against.
    """

    class OracleKernel(kernel_cls):
        construct_cls = ScalarOracleConstructPhase
        walk_cls = ScalarOracleWalkPhase
        preparer_cls = OracleBatchPreparer

        def run(self, contigs: list[Contig], k: int,
                depth_ratio: float = 2.0,
                max_batch_insertions: int | None = None,
                parallel_scale: float = 1.0,
                prep_cache: PrepareCache | None = None) -> KernelRunResult:
            if parallel_scale <= 0 or parallel_scale > 1:
                raise KernelError(
                    f"parallel_scale must be in (0, 1], got {parallel_scale}")
            if max_batch_insertions is None:
                # reserve at most ~25% of HBM for tables in one launch
                max_batch_insertions = int(
                    self.device.hbm_bytes * 0.25 * self.load_factor / SLOT_BYTES
                )
            plans = self.launch_policy.plan(contigs, k, LaunchConfig(
                depth_ratio=depth_ratio,
                max_batch_insertions=max_batch_insertions,
                load_factor=self.load_factor,
            ))
            profile = KernelProfile(warp_size=self.warp_size)
            profile.walk_issue_width = (1 if self.lane_parallel_walks
                                        else self.warp_size)
            profile.contigs = len(contigs)
            right: list[tuple[str, WalkState]] = (
                [("", WalkState.MISSING)] * len(contigs))
            left: list[tuple[str, WalkState]] = (
                [("", WalkState.MISSING)] * len(contigs))
            self.last_trace = []
            self.last_replay = []
            bus, traffic, tracer, replayer, sanitizer = self._build_bus(
                profile, parallel_scale)
            defer = self.overflow_policy is not OverflowPolicy.RAISE
            construct = self.construct_cls(self.protocol, self.warp_size,
                                           defer_overflow=defer)
            walker = self.walk_cls(self.policy, self.max_walk_len, self.seed,
                                   defer_overflow=defer)
            ops = hash_intops(k)
            injector = self.fault_injector
            degraded: set[int] = set()
            retried: set[int] = set()
            for plan in plans:
                ordinal = (injector.begin_launch()
                           if injector is not None else -1)
                batch = self.preparer.prepare(contigs, plan.bin, plan.end, k,
                                              cache=prep_cache)
                if injector is not None:
                    injector.shape_batch(batch, ordinal)
                sub = batch
                attempt = 0
                while True:
                    tables = OracleWarpHashTables(sub.capacities, k)
                    bus.emit(LaunchStarted(
                        k=k, hash_ops=ops, n_warps=sub.n_warps,
                        mean_table_bytes=(float(np.mean(sub.capacities))
                                          * SLOT_BYTES),
                        mean_read_bytes=float(
                            np.mean(sub.read_bytes_per_warp)),
                        cold_footprint_bytes=(tables.total_bytes
                                              + 2 * sub.codes.size),
                        total_slots=tables.total_slots,
                        contig_ids=(tuple(int(ci) for ci in sub.contig_ids)
                                    if sanitizer is not None else ()),
                    ))
                    cres = construct.run(sub, tables, bus)
                    wres = walker.run(sub, tables, bus)
                    bus.emit(LaunchDone(
                        waves=cres.waves,
                        construct_iterations=cres.iterations,
                        walk_steps=wres.steps,
                        walk_iterations=wres.iterations,
                    ))
                    self._last_access_latency = traffic.last_access_latency
                    failed = sorted(set(cres.overflowed)
                                    | set(wres.overflowed))
                    failed_set = set(failed)
                    for w, ci in enumerate(sub.contig_ids):
                        if w in failed_set:
                            continue
                        if plan.end is End.RIGHT:
                            right[ci] = (wres.bases[w], wres.states[w])
                        else:
                            rc = reverse_complement(wres.bases[w])
                            assert isinstance(rc, str)
                            left[ci] = (rc, wres.states[w])
                    if not failed:
                        break
                    if (self.overflow_policy is OverflowPolicy.GROW_RETRY
                            and attempt < self.max_grow_attempts):
                        attempt += 1
                        grown = np.maximum(
                            sub.capacities[failed] + 1,
                            np.ceil(sub.capacities[failed]
                                    * self.grow_factor).astype(np.int64))
                        for w, cap in zip(failed, grown):
                            bus.emit(ContigRetried(
                                contig_id=sub.contig_ids[w], k=k,
                                attempt=attempt, capacity=int(cap)))
                            retried.add(sub.contig_ids[w])
                        sub = subset_batch(sub, failed, grown)
                        continue
                    end_name = "right" if plan.end is End.RIGHT else "left"
                    for w in failed:
                        ci = sub.contig_ids[w]
                        bus.emit(ContigDropped(
                            contig_id=ci, k=k, end=end_name,
                            capacity=int(sub.capacities[w])))
                        degraded.add(ci)
                        if plan.end is End.RIGHT:
                            right[ci] = ("", WalkState.MISSING)
                        else:
                            left[ci] = ("", WalkState.MISSING)
                    break
            if tracer is not None:
                self.last_trace = tracer.traces
            if replayer is not None:
                self.last_replay = replayer.launches
                self.last_replay_subscriber = replayer
            if sanitizer is not None:
                self.last_sanitizer_report = sanitizer.report
            result = KernelRunResult(device=self.device, k=k, profile=profile,
                                     right=right, left=left,
                                     degraded=sorted(degraded),
                                     retried=sorted(retried))
            if injector is not None:
                injector.degrade_result(result)
            return result

        def run_schedule(self, contigs: list[Contig],
                         k_schedule: tuple[int, ...] = (21, 33, 55, 77),
                         parallel_scale: float = 1.0) -> KernelRunResult:
            cache = PrepareCache()
            self.last_prep_cache = cache
            schedule_replay: list = []
            schedule_reports: list = []
            degraded: set[int] = set()
            retried: set[int] = set()

            def _run_one(k: int) -> KernelRunResult:
                res = self.run(contigs, k, parallel_scale=parallel_scale,
                               prep_cache=cache)
                schedule_replay.extend(self.last_replay)
                if self.last_sanitizer_report is not None:
                    schedule_reports.append(self.last_sanitizer_report)
                degraded.update(res.degraded)
                retried.update(res.retried)
                return res

            last_k, merged, right, left = iterate_k_schedule_scalar(
                _run_one, len(contigs), k_schedule,
            )
            merged.prep_cache_hits = cache.hits
            merged.prep_cache_misses = cache.misses
            merged.prep_cache_evictions = cache.evictions
            if self.memory_model == "trace":
                self.last_replay = schedule_replay
            if self.sanitize_checks and schedule_reports:
                from repro.sanitize.report import SanitizerReport
                combined = SanitizerReport(
                    max_findings=schedule_reports[0].max_findings)
                for rep in schedule_reports:
                    combined.extend(rep)
                self.last_sanitizer_report = combined
            return KernelRunResult(device=self.device, k=last_k,
                                   profile=merged, right=right, left=left,
                                   degraded=sorted(degraded),
                                   retried=sorted(retried))

    OracleKernel.__name__ = f"Oracle{kernel_cls.__name__}"
    OracleKernel.__qualname__ = OracleKernel.__name__
    return OracleKernel


__all__ = [
    "OracleBatchPreparer",
    "OracleWarpHashTables",
    "ScalarOracleWalkPhase",
    "ScalarOracleConstructPhase",
    "iterate_k_schedule_scalar",
    "oracle_kernel_cls",
]
