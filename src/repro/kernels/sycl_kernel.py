"""SYCL port of the local assembly kernel (SYCLomatic + manual rewrite).

The Appendix-A SYCL ``ht_get_atomic`` uses
``dpct::atomic_compare_exchange_strong`` plus a sub-group barrier
(``sg.barrier()``) each probe iteration; like the HIP port, colliding
lanes retry on the next iteration. SYCL sub-groups are variable-width —
the paper swept sizes and found 16 the most consistent, so 16 is the
default here and the sweep is reproduced by
``benchmarks/bench_ablation_subgroup_size.py``.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernels.engine import LocalAssemblyKernel, ProtocolCosts
from repro.simt.device import DeviceSpec

#: Sub-group size the paper found optimal on the Max 1550.
DEFAULT_SUB_GROUP_SIZE = 16

#: Sub-group sizes Intel hardware supports (the ablation sweep domain).
SUPPORTED_SUB_GROUP_SIZES = (8, 16, 32)


class SyclLocalAssemblyKernel(LocalAssemblyKernel):
    """The SYCL kernel with sub-group barriers and configurable width."""

    protocol = ProtocolCosts(
        name="SYCL",
        # generic-space atomic wrapper + barrier bookkeeping
        iteration_intops=11,
        # sg.barrier() once per iteration
        iteration_syncs=1,
        merges_in_iteration=False,
    )

    def __init__(self, device: DeviceSpec, warp_size: int | None = None,
                 sub_group_size: int | None = None, **kwargs):
        size = sub_group_size or warp_size or DEFAULT_SUB_GROUP_SIZE
        if size not in SUPPORTED_SUB_GROUP_SIZES:
            raise KernelError(
                f"sub-group size {size} unsupported; pick one of "
                f"{SUPPORTED_SUB_GROUP_SIZES}"
            )
        super().__init__(device, warp_size=size, **kwargs)

    @property
    def sub_group_size(self) -> int:
        return self.warp_size
