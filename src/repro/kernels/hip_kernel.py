"""HIP port of the local assembly kernel (hipify + manual fixes).

HIP on AMD GPUs has no ``__match_any_sync``, so the Appendix-A HIP
``ht_get_atomic`` gives every lane a ``done`` flag and loops until
``__all(done)``: lanes that lose an ``atomicCAS`` re-read the slot on the
*next* iteration instead of merging immediately, and every iteration pays
two ``__all`` wavefront votes plus the flag bookkeeping — the extra cost
the protocol constants encode. Wavefronts are 64 wide (the manual fix the
paper calls out: the CUDA code's implicit 32 assumption had to be
removed).
"""

from __future__ import annotations

from repro.kernels.engine import LocalAssemblyKernel, ProtocolCosts
from repro.simt.device import DeviceSpec

#: AMD wavefront width (CDNA2).
AMD_WAVEFRONT_SIZE = 64


class HipLocalAssemblyKernel(LocalAssemblyKernel):
    """The hipified kernel with the done-flag insert loop."""

    protocol = ProtocolCosts(
        name="HIP",
        # done-flag reads/writes + two __all ballots' operand setup per trip
        iteration_intops=14,
        # __all(done) at loop head and after the insert attempt
        iteration_syncs=2,
        merges_in_iteration=False,
    )

    def __init__(self, device: DeviceSpec, warp_size: int | None = None, **kwargs):
        super().__init__(device, warp_size=warp_size or AMD_WAVEFRONT_SIZE, **kwargs)
