"""The local-assembly SIMT kernel: shared machinery for all three ports.

Execution model (Figure 4 of the paper): one contig per warp. The launch
proceeds in two phases per kernel call:

1. **Construction** — lanes of each warp take consecutive k-mers of the
   contig's reads, in *waves* of ``warp_size`` insertions; within a wave,
   lanes probe their tables concurrently until every lane has inserted.
   Hash collisions linear-probe; thread collisions (two lanes, same slot)
   are resolved by an ``atomicCAS`` winner, with losers retrying per the
   protocol (:class:`ProtocolCosts`) — within the same iteration for the
   CUDA ``__match_any_sync`` port, on the next iteration for HIP/SYCL.
2. **Walk** — one lane per warp mer-walks from the contig-end seed k-mer
   while the other lanes are predicated off; the terminal state is
   broadcast with a shuffle.

Everything is vectorized across warps: the Python-level loops are over
probe iterations and walk steps, never over lanes or warps. Counters
(:class:`repro.simt.counters.KernelProfile`) are updated from measured
quantities; HBM traffic comes from the analytic cache model per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.binning import Bin, bin_contigs
from repro.core.construct import (
    DEFAULT_LOAD_FACTOR,
    estimate_table_slots,
    estimate_table_slots_upper_bound,
    insertions_for,
)
from repro.core.extension import (
    DEFAULT_POLICY,
    STATE_CODES,
    WalkPolicy,
    WalkState,
    resolve_extension_batch,
)
from repro.core.merwalk import DEFAULT_MAX_WALK_LEN
from repro.errors import KernelError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import decode, reverse_complement
from repro.genomics.kmer import fingerprint_matrix
from repro.genomics.reads import DEFAULT_QUAL_THRESHOLD
from repro.hashing.murmur import murmur2_batch
from repro.hashing.opcount import hash_intops
from repro.kernels.vectortable import (
    SLOT_BYTES,
    SLOT_TAG_BYTES,
    SLOT_VALUE_BYTES,
    WarpHashTables,
)
from repro.simt.counters import KernelProfile
from repro.simt.device import DeviceSpec
from repro.simt.memory import AccessCategory, AnalyticCacheModel

#: Warp instructions charged per probe iteration (loop bookkeeping).
ITERATION_BASE_INSTRS = 10

#: Thread-level integer ops per walk step outside the hash (state updates).
WALK_STEP_INTOPS = 24

#: Chunk size for the vectorized pre-hashing of insertion streams.
_HASH_CHUNK = 1 << 18


@dataclass(frozen=True)
class ProtocolCosts:
    """Where the three ports differ (paper Appendix A).

    Attributes:
        name: "CUDA" / "HIP" / "SYCL".
        iteration_intops: extra integer ops per pending lane per probe
            iteration (flag handling, mask computation, ...).
        iteration_syncs: warp/sub-group synchronizations per active warp
            per probe iteration (``__syncwarp(mask)``, ``__all``,
            ``sg.barrier()``).
        merges_in_iteration: True for the CUDA port, whose
            ``__match_any_sync`` lets lanes that lost an ``atomicCAS`` to
            a same-key winner merge their vote in the *same* iteration;
            the HIP/SYCL ports make them retry on the next iteration.
    """

    name: str
    iteration_intops: int
    iteration_syncs: int
    merges_in_iteration: bool


@dataclass
class _Batch:
    """One bin's contigs prepared for one launch direction."""

    contig_ids: list[int]
    codes: np.ndarray
    quals: np.ndarray
    ins_warp: np.ndarray        # warp id per insertion, non-decreasing
    ins_home: np.ndarray        # murmur digest per insertion
    ins_fp: np.ndarray          # key fingerprint per insertion
    ins_ext: np.ndarray         # extension base code per insertion
    ins_hi: np.ndarray          # high-quality vote flag per insertion
    seeds: np.ndarray           # (n_warps, k) seed k-mers
    seed_valid: np.ndarray      # warps whose contig admits a seed
    capacities: np.ndarray      # table slots per warp
    read_bytes_per_warp: np.ndarray

    @property
    def n_warps(self) -> int:
        return len(self.contig_ids)


@dataclass
class KernelRunResult:
    """Functional + profiling output of :meth:`LocalAssemblyKernel.run`."""

    device: DeviceSpec
    k: int
    profile: KernelProfile
    right: list[tuple[str, WalkState]] = field(default_factory=list)
    left: list[tuple[str, WalkState]] = field(default_factory=list)

    def extension_of(self, i: int, end: End) -> tuple[str, WalkState]:
        return self.right[i] if end is End.RIGHT else self.left[i]


_CODE_TO_STATE = {v: k for k, v in STATE_CODES.items()}


def _segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated, vectorized."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - starts


class LocalAssemblyKernel:
    """Base class; subclasses set :attr:`protocol` and default warp size.

    Args:
        device: simulated GPU to run on.
        warp_size: lane width; defaults to the device's native width
            (the SYCL port exposes this as the sub-group size).
        policy: walk vote-resolution thresholds.
        max_walk_len: extension length cap.
        qual_threshold: phred cut separating hi/low-quality votes.
        seed: Murmur seed.
        load_factor: hash-table occupancy target for size estimation.
        table_sizing: "upper_bound" (default) reserves per-contig capacity
            from the k-independent read-volume bound, as the GPU
            pre-processing must (Figure 3: tables are sized once, before
            the k iterations run); "exact" sizes from the actual insertion
            count (the ablation comparison).
        l2_churn: cache-model churn constant (see
            :class:`repro.simt.memory.AnalyticCacheModel`).
    """

    protocol: ProtocolCosts  # set by subclasses

    def __init__(
        self,
        device: DeviceSpec,
        warp_size: int | None = None,
        policy: WalkPolicy = DEFAULT_POLICY,
        max_walk_len: int = DEFAULT_MAX_WALK_LEN,
        qual_threshold: int = DEFAULT_QUAL_THRESHOLD,
        seed: int = 0,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        table_sizing: str = "upper_bound",
        l2_churn: float = 4.0,
        lane_parallel_walks: bool = False,
    ) -> None:
        if not hasattr(self, "protocol"):
            raise KernelError("use a concrete kernel subclass, not the base")
        if table_sizing not in ("upper_bound", "exact"):
            raise KernelError(f"unknown table_sizing {table_sizing!r}")
        self.device = device
        self.warp_size = int(warp_size or device.warp_size)
        if self.warp_size <= 0:
            raise KernelError(f"warp_size must be positive, got {self.warp_size}")
        self.policy = policy
        self.max_walk_len = max_walk_len
        self.qual_threshold = qual_threshold
        self.seed = seed
        self.load_factor = load_factor
        self.table_sizing = table_sizing
        self.l2_churn = l2_churn
        #: Future-work mode (paper Section VI): with independent thread
        #: scheduling, every lane of a warp can run its own mer-walk, so
        #: walk instructions stop wasting warp_size-1 issue lanes.
        self.lane_parallel_walks = lane_parallel_walks
        #: When True, every table-slot access's byte address is recorded
        #: into :attr:`last_trace` (one array per launch) so the analytic
        #: cache model can be validated against the exact trace simulator.
        self.record_trace = False
        self.last_trace: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # batch preparation
    # ------------------------------------------------------------------

    def _prepare(self, contigs: list[Contig], bin_: Bin, end: End, k: int) -> _Batch:
        """Flatten one bin's contigs + reads into launch arrays."""
        contig_ids = bin_.contig_indices
        code_parts: list[np.ndarray] = []
        qual_parts: list[np.ndarray] = []
        read_warps: list[int] = []
        read_lens: list[int] = []
        seeds = np.zeros((len(contig_ids), k), dtype=np.uint8)
        seed_valid = np.zeros(len(contig_ids), dtype=bool)
        capacities = np.empty(len(contig_ids), dtype=np.int64)
        read_bytes = np.zeros(len(contig_ids), dtype=np.int64)
        for w, ci in enumerate(contig_ids):
            contig = contigs[ci]
            end_reads = contig.reads_for_end(end)
            n_ins = 0
            for r in end_reads:
                codes = r.codes if end is End.RIGHT else reverse_complement(r.codes)
                quals = r.quals if end is End.RIGHT else r.quals[::-1]
                code_parts.append(codes)
                qual_parts.append(np.ascontiguousarray(quals))
                read_warps.append(w)
                read_lens.append(len(codes))
                n_ins += max(0, len(codes) - k)
            if self.table_sizing == "upper_bound":
                capacities[w] = estimate_table_slots_upper_bound(
                    end_reads, self.load_factor
                )
            else:
                capacities[w] = estimate_table_slots(n_ins, self.load_factor)
            read_bytes[w] = 2 * end_reads.total_bases
            if len(contig) >= k:
                seed_valid[w] = True
                seeds[w] = (
                    contig.end_kmer(k, End.RIGHT)
                    if end is End.RIGHT
                    else reverse_complement(contig.end_kmer(k, End.LEFT))
                )
        codes = np.concatenate(code_parts) if code_parts else np.empty(0, np.uint8)
        quals = np.concatenate(qual_parts) if qual_parts else np.empty(0, np.uint8)
        lens = np.asarray(read_lens, dtype=np.int64)
        offsets = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        n_ins_per_read = np.maximum(lens - k, 0)
        starts = np.repeat(offsets[:-1], n_ins_per_read) + _segmented_arange(
            n_ins_per_read
        )
        ins_warp = np.repeat(np.asarray(read_warps, dtype=np.int64), n_ins_per_read)

        n = starts.size
        ins_home = np.empty(n, dtype=np.uint32)
        ins_fp = np.empty(n, dtype=np.uint64)
        ins_ext = np.empty(n, dtype=np.uint8)
        ins_hi = np.empty(n, dtype=bool)
        col = np.arange(k, dtype=np.int64)
        for lo in range(0, n, _HASH_CHUNK):
            hi = min(lo + _HASH_CHUNK, n)
            win = codes[starts[lo:hi, None] + col]
            ins_home[lo:hi] = murmur2_batch(win, self.seed)
            ins_fp[lo:hi] = fingerprint_matrix(win)
            ext_pos = starts[lo:hi] + k
            ins_ext[lo:hi] = codes[ext_pos]
            ins_hi[lo:hi] = quals[ext_pos] >= self.qual_threshold
        return _Batch(
            contig_ids=list(contig_ids), codes=codes, quals=quals,
            ins_warp=ins_warp, ins_home=ins_home, ins_fp=ins_fp,
            ins_ext=ins_ext, ins_hi=ins_hi, seeds=seeds, seed_valid=seed_valid,
            capacities=capacities, read_bytes_per_warp=read_bytes,
        )

    # ------------------------------------------------------------------
    # construction phase
    # ------------------------------------------------------------------

    def _construct(self, batch: _Batch, tables: WarpHashTables, k: int,
                   profile: KernelProfile, mem: dict) -> tuple[int, int]:
        """Run all construction waves; returns the launch's serial chain as
        ``(lockstep waves, lockstep probe iterations)``."""
        W = self.warp_size
        n_warps = batch.n_warps
        ins_off = np.searchsorted(batch.ins_warp, np.arange(n_warps + 1))
        n_ins_w = np.diff(ins_off)
        max_waves = int(np.ceil(n_ins_w.max() / W)) if n_ins_w.size and n_ins_w.max() else 0
        hash_ops = hash_intops(k)
        chain = 0
        waves_run = 0
        for t in range(max_waves):
            lo = ins_off[:-1] + t * W
            hi = np.minimum(lo + W, ins_off[1:])
            take = np.maximum(hi - lo, 0)
            idx = np.repeat(lo, take) + _segmented_arange(take)
            if idx.size == 0:
                break
            wave_warps = int(np.count_nonzero(take))
            # every lane hashes its k-mer; the warp runs the hash code once
            profile.intops += idx.size * hash_ops
            profile.construct_intops += idx.size * hash_ops
            profile.warp_instructions += wave_warps * hash_ops
            profile.lane_instructions += idx.size * hash_ops
            profile.inserts += idx.size
            mem["read_stream"] += idx.size
            waves_run += 1
            chain += self._insert_wave(batch, tables, idx, profile, mem)
        return waves_run, chain

    def _insert_wave(self, batch: _Batch, tables: WarpHashTables,
                     idx: np.ndarray, profile: KernelProfile, mem: dict) -> int:
        """Probe until every lane of the wave has inserted; returns iterations."""
        proto = self.protocol
        warps = batch.ins_warp[idx]
        homes = batch.ins_home[idx]
        fps = batch.ins_fp[idx]
        exts = batch.ins_ext[idx]
        his = batch.ins_hi[idx]
        n = idx.size
        probe = np.zeros(n, dtype=np.int64)
        pending = np.ones(n, dtype=bool)
        iterations = 0
        while pending.any():
            iterations += 1
            p = np.nonzero(pending)[0]
            active_warps = int(np.unique(warps[p]).size)
            per_lane_ops = ITERATION_BASE_INSTRS + proto.iteration_intops
            profile.intops += p.size * per_lane_ops
            profile.construct_intops += p.size * per_lane_ops
            profile.warp_instructions += active_warps * per_lane_ops
            profile.lane_instructions += p.size * per_lane_ops
            profile.sync_ops += active_warps * proto.iteration_syncs
            profile.insert_probe_iterations += p.size
            profile.serial_depth += 1

            slots = tables.slot_of(warps[p], homes[p], probe[p])
            if self.record_trace:
                self._trace_chunks.append(slots * SLOT_BYTES)
            occupied, slot_fp = tables.inspect(slots)
            mem["table_probe"] += p.size
            mem["key_compare"] += int(np.count_nonzero(occupied))

            done = np.zeros(p.size, dtype=bool)
            match = occupied & (slot_fp == fps[p])
            if match.any():
                tables.vote(slots[match], exts[p[match]], his[p[match]])
                profile.atomics += int(match.sum())
                mem["table_vote"] += int(match.sum())
                done |= match

            empty = ~occupied
            if empty.any():
                e = np.nonzero(empty)[0]
                winners_local = tables.claim(slots[e], fps[p[e]])
                profile.atomics += e.size  # every empty observer issues a CAS
                win = e[winners_local]
                tables.vote(slots[win], exts[p[win]], his[p[win]])
                mem["table_vote"] += win.size
                done_claim = np.zeros(p.size, dtype=bool)
                done_claim[win] = True
                done |= done_claim
                losers = e[~winners_local]
                if proto.merges_in_iteration and losers.size:
                    # __match_any_sync: losers whose key equals the fresh
                    # winner's key merge their vote in this same iteration.
                    now_fp = tables.fp[slots[losers]]
                    same = now_fp == fps[p[losers]]
                    m = losers[same]
                    if m.size:
                        tables.vote(slots[m], exts[p[m]], his[p[m]])
                        profile.atomics += m.size
                        mem["table_vote"] += m.size
                        d = np.zeros(p.size, dtype=bool)
                        d[m] = True
                        done |= d
                # HIP/SYCL losers retry next iteration at the same probe.

            mismatch = occupied & ~match
            probe[p[mismatch]] += 1
            pending[p[done]] = False
        return iterations

    # ------------------------------------------------------------------
    # walk phase
    # ------------------------------------------------------------------

    def _walk(self, batch: _Batch, tables: WarpHashTables, k: int,
              profile: KernelProfile, mem: dict,
              ) -> tuple[list[str], list[WalkState], int, int]:
        """Mer-walk every warp's seed.

        Returns ``(bases, states, lockstep steps, lockstep probe
        iterations)`` — the last two measure the launch's serial walk
        chain (all warps walk concurrently; the wall-clock floor is the
        longest chain, which lockstep execution measures directly)."""
        n_warps = batch.n_warps
        hash_ops = hash_intops(k)
        cur = batch.seeds.copy()
        alive = batch.seed_valid.copy()
        bases: list[list[str]] = [[] for _ in range(n_warps)]
        states = [WalkState.MISSING] * n_warps
        visited: list[set] = [set() for _ in range(n_warps)]
        first_step = np.ones(n_warps, dtype=bool)
        for w in np.nonzero(alive)[0]:
            visited[w].add(int(fingerprint_matrix(cur[w][None, :])[0]))
        chain = 0
        steps_run = 0
        for _step in range(self.max_walk_len + 1):
            if not alive.any():
                break
            steps_run += 1
            a = np.nonzero(alive)[0]
            if _step == self.max_walk_len:
                for w in a:
                    states[w] = WalkState.MAX_LEN
                break
            homes = murmur2_batch(cur[a], self.seed)
            fps = fingerprint_matrix(cur[a])
            walk_ops = hash_ops + WALK_STEP_INTOPS
            profile.intops += a.size * walk_ops
            profile.walk_intops += a.size * walk_ops
            if self.lane_parallel_walks:
                # independent thread scheduling: one walk per lane, so
                # ceil(walks / warp_size) warps execute each instruction
                warps_walking = -(-a.size // self.warp_size)
                profile.warp_instructions += warps_walking * walk_ops
                profile.lane_instructions += a.size * walk_ops
            else:
                # one lane walks; the warp still issues every instruction
                profile.warp_instructions += a.size * walk_ops
                profile.lane_instructions += a.size * walk_ops // self.warp_size
            profile.lookups += a.size
            profile.sync_ops += a.size  # terminal-state shuffle broadcast

            # probe for the key (or an empty slot = not present)
            found_slot = np.full(a.size, -1, dtype=np.int64)
            missing = np.zeros(a.size, dtype=bool)
            probe = np.zeros(a.size, dtype=np.int64)
            unresolved = np.ones(a.size, dtype=bool)
            while unresolved.any():
                chain += 1
                profile.serial_depth += 1
                u = np.nonzero(unresolved)[0]
                profile.lookup_probe_iterations += u.size
                profile.intops += u.size * ITERATION_BASE_INSTRS
                profile.walk_intops += u.size * ITERATION_BASE_INSTRS
                profile.warp_instructions += u.size * ITERATION_BASE_INSTRS
                profile.lane_instructions += u.size * ITERATION_BASE_INSTRS // self.warp_size
                slots = tables.slot_of(a[u], homes[u], probe[u])
                if self.record_trace:
                    self._trace_chunks.append(slots * SLOT_BYTES)
                occupied, slot_fp = tables.inspect(slots)
                mem["table_probe"] += u.size
                mem["key_compare"] += int(np.count_nonzero(occupied))
                hit = occupied & (slot_fp == fps[u])
                found_slot[u[hit]] = slots[hit]
                miss = ~occupied
                missing[u[miss]] = True
                probe[u[occupied & ~hit]] += 1
                unresolved[u[hit | miss]] = False

            # resolve extensions for found keys
            res_states = np.full(a.size, -2, dtype=np.int8)
            res_bases = np.full(a.size, -1, dtype=np.int8)
            f = found_slot >= 0
            if f.any():
                hi_rows, lo_rows = tables.votes_at(found_slot[f])
                mem["table_vote_read"] += int(f.sum())
                s, b = resolve_extension_batch(hi_rows, lo_rows, self.policy)
                res_states[f] = s
                res_bases[f] = b

            next_alive = alive.copy()
            for j, w in enumerate(a):
                if missing[j]:
                    states[w] = WalkState.MISSING if first_step[w] else WalkState.END
                    next_alive[w] = False
                    continue
                st = _CODE_TO_STATE[int(res_states[j])]
                if st is not WalkState.EXTEND:
                    states[w] = st
                    next_alive[w] = False
                    continue
                base = int(res_bases[j])
                cur[w, :-1] = cur[w, 1:]
                cur[w, -1] = base
                fp_next = int(fingerprint_matrix(cur[w][None, :])[0])
                if fp_next in visited[w]:
                    states[w] = WalkState.LOOP
                    next_alive[w] = False
                    continue
                visited[w].add(fp_next)
                bases[w].append("ACGT"[base])
                profile.walk_steps += 1
            first_step[a] = False
            alive = next_alive
        out = ["".join(b) for b in bases]
        profile.extension_bases += sum(len(b) for b in out)
        return out, states, steps_run, chain

    # ------------------------------------------------------------------
    # memory model + launch orchestration
    # ------------------------------------------------------------------

    def _apply_memory_model(self, batch: _Batch, tables: WarpHashTables,
                            k: int, mem: dict, profile: KernelProfile,
                            parallel_scale: float) -> None:
        mean_table_bytes = float(np.mean(batch.capacities)) * SLOT_BYTES
        mean_read_bytes = float(np.mean(batch.read_bytes_per_warp))
        cats = [
            # probes are atomicCAS attempts and walk reads of CAS-owned
            # tags; votes are atomicAdds — all execute at the L2
            AccessCategory("table_probe", mem["table_probe"], SLOT_TAG_BYTES,
                           mean_table_bytes, "random", atomic=True),
            AccessCategory("table_vote", mem["table_vote"], SLOT_VALUE_BYTES,
                           mean_table_bytes, "random", writes=True, atomic=True),
            AccessCategory("table_vote_read", mem["table_vote_read"],
                           SLOT_VALUE_BYTES, mean_table_bytes, "random",
                           atomic=True),
            AccessCategory("key_compare", mem["key_compare"], float(k),
                           mean_read_bytes, "random"),
            AccessCategory("read_stream", mem["read_stream"], 2.0,
                           mean_read_bytes, "stream"),
        ]
        # At a reduced dataset scale the batch has proportionally fewer
        # warps; model the L2 pressure of the full-size batch so scaled
        # runs predict full-scale behaviour (the benches report the scale).
        effective_warps = max(1, round(batch.n_warps / parallel_scale))
        model = AnalyticCacheModel(self.device, effective_warps,
                                   l2_churn=self.l2_churn)
        cold = tables.total_bytes + 2 * batch.codes.size
        traffic = model.traffic(cats, cold_footprint_bytes=cold)
        profile.hbm_bytes += traffic.hbm_bytes
        profile.l1_hit_bytes += traffic.l1_bytes
        profile.l2_hit_bytes += traffic.l2_bytes
        # latency of one dependent table access, for the chain-cycle terms
        h1, h2 = model.hit_rates(cats[0])
        dev = self.device
        self._last_access_latency = (
            h1 * dev.l1.latency_cycles
            + (1 - h1) * (h2 * dev.l2.latency_cycles + (1 - h2) * dev.hbm_latency_cycles)
        )

    def run(
        self,
        contigs: list[Contig],
        k: int,
        depth_ratio: float = 2.0,
        max_batch_insertions: int | None = None,
        parallel_scale: float = 1.0,
    ) -> KernelRunResult:
        """Execute the full local-assembly workflow (Figure 3) at one k.

        ``parallel_scale`` declares what fraction of the paper-size
        dataset ``contigs`` represents, so the cache model can apply
        full-size concurrency pressure to a scaled run.

        Returns functional extensions for both ends of every contig plus
        the merged :class:`KernelProfile` (time left at zero — the timing
        model in :mod:`repro.perfmodel.timing` fills it from the counters).
        """
        if parallel_scale <= 0 or parallel_scale > 1:
            raise KernelError(f"parallel_scale must be in (0, 1], got {parallel_scale}")
        if max_batch_insertions is None:
            # reserve at most ~25% of HBM for tables in one launch
            max_batch_insertions = int(
                self.device.hbm_bytes * 0.25 * self.load_factor / SLOT_BYTES
            )
        bins = bin_contigs(contigs, k, depth_ratio, max_batch_insertions,
                           self.load_factor)
        profile = KernelProfile(warp_size=self.warp_size)
        profile.walk_issue_width = 1 if self.lane_parallel_walks else self.warp_size
        profile.contigs = len(contigs)
        right: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * len(contigs)
        left: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * len(contigs)
        self.last_trace = []
        for bin_ in bins:
            for end in (End.RIGHT, End.LEFT):
                self._trace_chunks: list[np.ndarray] = []
                batch = self._prepare(contigs, bin_, end, k)
                tables = WarpHashTables(batch.capacities, k)
                mem = {"table_probe": 0, "table_vote": 0, "table_vote_read": 0,
                       "key_compare": 0, "read_stream": 0}
                waves, c_iters = self._construct(batch, tables, k, profile, mem)
                bases, states, w_steps, w_iters = self._walk(
                    batch, tables, k, profile, mem)
                self._apply_memory_model(batch, tables, k, mem, profile,
                                         parallel_scale)
                lat = self._last_access_latency
                cpi = self.device.dependent_cpi
                hash_ops = hash_intops(k)
                # serial chain of this launch: dependent instruction cycles
                # plus one cache-weighted access latency per probe iteration
                profile.construct_chain_cycles += (
                    waves * hash_ops * cpi + c_iters * lat
                )
                profile.walk_chain_cycles += (
                    w_steps * (hash_ops + WALK_STEP_INTOPS) * cpi + w_iters * lat
                )
                profile.kernels_launched += 1
                if self.record_trace and self._trace_chunks:
                    self.last_trace.append(np.concatenate(self._trace_chunks))
                for w, ci in enumerate(batch.contig_ids):
                    if end is End.RIGHT:
                        right[ci] = (bases[w], states[w])
                    else:
                        rc = reverse_complement(bases[w])
                        assert isinstance(rc, str)
                        left[ci] = (rc, states[w])
        return KernelRunResult(device=self.device, k=k, profile=profile,
                               right=right, left=left)

    def run_schedule(
        self,
        contigs: list[Contig],
        k_schedule: tuple[int, ...] = (21, 33, 55, 77),
        parallel_scale: float = 1.0,
    ) -> "KernelRunResult":
        """Iterate the k schedule on-device (Figures 2 and 4).

        Every k runs as its own launch sequence (tables must be rebuilt
        per k — the GPU cannot resize them); per contig end, the first
        *accepted* walk (anything but a fork) at the smallest k wins, and
        forked ends retry at the next k, keeping the longest extension if
        no k resolves the fork. Profiles of all launches merge; the
        result's ``k`` reports the last k executed.
        """
        if not k_schedule or list(k_schedule) != sorted(set(k_schedule)):
            raise KernelError(
                f"k_schedule must be strictly increasing, got {k_schedule}"
            )
        merged: KernelProfile | None = None
        right: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * len(contigs)
        left: list[tuple[str, WalkState]] = [("", WalkState.MISSING)] * len(contigs)
        settled_r = [False] * len(contigs)
        settled_l = [False] * len(contigs)
        last_k = k_schedule[0]
        for k in k_schedule:
            if all(settled_r) and all(settled_l):
                break
            last_k = k
            res = self.run(contigs, k, parallel_scale=parallel_scale)
            if merged is None:
                merged = res.profile
            else:
                merged.merge(res.profile)
            for i in range(len(contigs)):
                for side, settled, best in (
                    (res.right, settled_r, right),
                    (res.left, settled_l, left),
                ):
                    if settled[i]:
                        continue
                    bases, state = side[i]
                    if len(bases) >= len(best[i][0]) or state is not WalkState.FORK:
                        best[i] = (bases, state)
                    if state is not WalkState.FORK:
                        settled[i] = True
        assert merged is not None
        merged.contigs = len(contigs)
        return KernelRunResult(device=self.device, k=last_k, profile=merged,
                               right=right, left=left)
