"""Compatibility shim over :mod:`repro.kernels.engine`.

The kernel monolith that used to live here was split into the staged
execution engine:

* :mod:`repro.kernels.engine.prepare` — batch flattening + per-k hashing
* :mod:`repro.kernels.engine.construct` — insertion waves + probe protocol
* :mod:`repro.kernels.engine.walk` — the predicated mer-walk
* :mod:`repro.kernels.engine.schedule` — bins -> launch plans -> launches
* :mod:`repro.kernels.engine.events` — the instrumentation-hook layer
* :mod:`repro.kernels.engine.backend` — the backend protocol + registry
* :mod:`repro.kernels.engine.simt` — the driver composing the stages

This module re-exports the public names (and the historically-private
ones tests and tools reached for) so existing imports keep working.
Import from :mod:`repro.kernels.engine` in new code.
"""

from repro.kernels.engine.backend import KernelRunResult, ProtocolCosts
from repro.kernels.engine.events import ITERATION_BASE_INSTRS, WALK_STEP_INTOPS
from repro.kernels.engine.prepare import (  # noqa: F401
    _HASH_CHUNK,
    Batch,
    segmented_arange,
)
from repro.kernels.engine.simt import LocalAssemblyKernel

# Historical aliases (pre-engine private names).
_Batch = Batch
_segmented_arange = segmented_arange

__all__ = [
    "ITERATION_BASE_INSTRS",
    "WALK_STEP_INTOPS",
    "KernelRunResult",
    "LocalAssemblyKernel",
    "ProtocolCosts",
    "Batch",
    "segmented_arange",
]
