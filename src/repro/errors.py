"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SequenceError(ReproError):
    """Raised for malformed DNA sequences or invalid bases."""


class KmerError(ReproError):
    """Raised for invalid k-mer parameters (e.g. k longer than sequence)."""


class HashTableFullError(ReproError):
    """Raised when an open-addressing hash table runs out of free slots.

    Mirrors the ``*hashtable full*`` condition printed by the GPU kernel
    (Appendix A of the paper); the Python implementations raise instead of
    printing so callers can size tables correctly.
    """


class DatasetError(ReproError):
    """Raised for malformed or inconsistent dataset files / descriptors."""


class DeviceError(ReproError):
    """Raised for invalid simulated-device configurations."""


class KernelError(ReproError):
    """Raised when a simulated kernel is mis-launched or fails invariants."""


class ModelError(ReproError):
    """Raised for invalid performance-model inputs (e.g. zero runtimes)."""
