"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the failing subsystem.

Errors further split into *fatal* conditions and :class:`TransientError`
subclasses. Transient errors model conditions that a retry can clear —
an injected launch failure, a backend that lost its device for one call —
and are the only branch the resilience layer's bounded
retry-with-backoff (:func:`repro.resilience.retry.retry_transient`)
re-attempts; everything else propagates immediately.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SequenceError(ReproError):
    """Raised for malformed DNA sequences or invalid bases."""


class KmerError(ReproError):
    """Raised for invalid k-mer parameters (e.g. k longer than sequence)."""


class HashTableFullError(ReproError):
    """Raised when an open-addressing hash table runs out of free slots.

    Mirrors the ``*hashtable full*`` condition printed by the GPU kernel
    (Appendix A of the paper). The Python implementations raise instead
    of printing so callers can size tables correctly — or opt into the
    paper's drop-and-continue semantics via
    :class:`repro.resilience.OverflowPolicy`.

    Carries enough context to attribute the overflow to a specific
    contig: ``contig_id`` (index in the run's contig list), ``k``,
    ``capacity`` (slots of the overflowed table) and ``probes`` (probe
    offset reached when the table wrapped). Any field may be ``None``
    when the raising layer does not know it (e.g. the raw table
    structure knows its capacity but not which contig owns it).
    """

    def __init__(self, message: str = "hash table full", *,
                 contig_id: int | None = None, k: int | None = None,
                 capacity: int | None = None,
                 probes: int | None = None) -> None:
        self.contig_id = contig_id
        self.k = k
        self.capacity = capacity
        self.probes = probes
        parts = [message]
        context = ", ".join(
            f"{name}={value}"
            for name, value in (("contig", contig_id), ("k", k),
                                ("capacity", capacity), ("probes", probes))
            if value is not None
        )
        if context:
            parts.append(f"({context})")
        super().__init__(" ".join(parts))


class DatasetError(ReproError):
    """Raised for malformed or inconsistent dataset files / descriptors."""


class DeviceError(ReproError):
    """Raised for invalid simulated-device configurations."""


class KernelError(ReproError):
    """Raised when a simulated kernel is mis-launched or fails invariants."""


class ModelError(ReproError):
    """Raised for invalid performance-model inputs (e.g. zero runtimes)."""


class CheckpointError(ReproError):
    """Raised for unreadable or mismatched experiment checkpoints."""


class TransientError(ReproError):
    """A failure a bounded retry may clear (the retryable branch).

    The resilience layer re-attempts operations that raise a
    ``TransientError`` subclass; all other :class:`ReproError` branches
    are treated as fatal and propagate on first occurrence.
    """


class BackendLaunchError(TransientError):
    """A kernel launch failed transiently (e.g. an injected launch fault)."""
