"""The MetaHipMer pipeline around the local-assembly kernel (Figure 2).

The paper studies one phase of MetaHipMer; this subpackage implements the
rest of the (single-node form of the) pipeline so that local assembly can
be exercised in its real context, end-to-end from raw reads:

* :mod:`repro.metahipmer.kmer_analysis` — k-mer counting with a Bloom
  prefilter and the "drop k-mers that occur once" error filter.
* :mod:`repro.metahipmer.global_graph` — the global de Bruijn graph and
  unitig-style contig generation.
* :mod:`repro.metahipmer.alignment` — seed-and-extend read-to-contig
  alignment and the assignment of reads to contig *ends* that the local
  assembly module consumes.
* :mod:`repro.metahipmer.stages` — the named pipeline stages (``kmers``,
  ``contigs``, ``align``, ``extend``, ``merge``) in the :data:`STAGES`
  registry, each with a JSON checkpoint codec.
* :mod:`repro.metahipmer.pipeline` — the iterative de novo assembler:
  the staged rounds over the k = 21, 33, 55, 77 schedule, with per-round
  feed-forward of merged contigs and per-stage checkpoint/resume
  (``repro assemble --checkpoint-dir D --resume``).
"""

from repro.metahipmer.kmer_analysis import BloomFilter, KmerSpectrum, count_kmers_filtered
from repro.metahipmer.global_graph import GlobalDeBruijnGraph, generate_contigs
from repro.metahipmer.alignment import AlignmentHit, ReadAligner, assign_reads_to_ends
from repro.metahipmer.stages import STAGE_ORDER, STAGES, RoundState, carry_forward_reads
from repro.metahipmer.pipeline import (
    AssemblyStats,
    DeNovoAssembler,
    DeNovoResult,
    PipelineCheckpoint,
    n50,
    reads_fingerprint,
)
from repro.metahipmer.smith_waterman import (
    BandedAligner,
    LocalAlignment,
    smith_waterman,
)

__all__ = [
    "BandedAligner",
    "LocalAlignment",
    "smith_waterman",
    "BloomFilter",
    "KmerSpectrum",
    "count_kmers_filtered",
    "GlobalDeBruijnGraph",
    "generate_contigs",
    "AlignmentHit",
    "ReadAligner",
    "assign_reads_to_ends",
    "AssemblyStats",
    "DeNovoAssembler",
    "DeNovoResult",
    "PipelineCheckpoint",
    "RoundState",
    "STAGES",
    "STAGE_ORDER",
    "carry_forward_reads",
    "n50",
    "reads_fingerprint",
]
