"""The end-to-end de novo assembler (Figure 2), single-node form.

``DeNovoAssembler`` drives the staged pipeline in
:mod:`repro.metahipmer.stages` over the production k-mer schedule:
k-mer analysis → global de Bruijn graph / contig generation → read
alignment → **local assembly** (the paper's kernel, either the CPU
pipeline or a simulated-GPU port) → per-round merge. Each round's merged
contigs (extensions folded into the sequence) feed the next round as
pseudo-reads, so later (larger-k) rounds resolve forks the earlier ones
could not — the paper's Figure 1 resolution mechanism at pipeline scale —
and bridge regions where raw-read coverage is too thin for the larger k.

With a :class:`PipelineCheckpoint` attached, every completed stage is
persisted through the CRC-validated
:class:`~repro.resilience.CheckpointStore`; a killed run re-invoked with
the same checkpoint directory restores each completed stage instead of
recomputing it and produces byte-identical final contigs and statistics
(the pipeline draws no randomness). The ``repro assemble`` CLI
subcommand exposes this as ``--checkpoint-dir`` / ``--resume``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.extension import PRODUCTION_POLICY, WalkPolicy
from repro.core.pipeline import LocalAssembler
from repro.errors import KmerError
from repro.genomics.contig import Contig
from repro.genomics.reads import ReadSet
from repro.kernels.engine import LocalAssemblyKernel
from repro.metahipmer.stages import (
    STAGE_ORDER,
    STAGES,
    AssemblyStats,
    RoundState,
    StageCallback,
    n50,
)
from repro.resilience.checkpoint import CheckpointStore

__all__ = [
    "AssemblyStats",
    "DeNovoAssembler",
    "DeNovoResult",
    "PipelineCheckpoint",
    "n50",
    "reads_fingerprint",
]


def reads_fingerprint(reads: ReadSet) -> str:
    """Order-sensitive digest of a read set (sequences + qualities).

    Stored in the checkpoint configuration fingerprint so a ``--resume``
    against different input data is rejected instead of silently mixing
    rounds from two datasets.
    """
    h = hashlib.sha256()
    for r in reads:
        h.update(r.name.encode())
        h.update(b"\x00")
        h.update(r.codes.tobytes())
        h.update(r.quals.tobytes())
    return h.hexdigest()


class PipelineCheckpoint:
    """Per-stage checkpointing for the assembler pipeline.

    A thin adapter over :class:`~repro.resilience.CheckpointStore`:
    stage payloads are saved under the name ``stage_<stage>`` keyed by the
    round's k, inheriting the store's atomic writes, CRC validation,
    quarantine-on-corruption and configuration-fingerprint checking.

    Args:
        directory: checkpoint directory (created if missing).
        meta: configuration fingerprint (scenario, seed, k schedule,
            thresholds, input-reads digest...); resuming against a
            checkpoint written under a different fingerprint raises
            :class:`~repro.errors.CheckpointError`.
    """

    def __init__(self, directory: str | Path, meta: dict | None = None) -> None:
        self.store = CheckpointStore(directory, meta={"pipeline": 1,
                                                      **(meta or {})})

    def load(self, k: int, stage: str) -> dict | None:
        return self.store.load_payload(f"stage_{stage}", k)

    def save(self, k: int, stage: str, payload: dict) -> None:
        self.store.save_payload(f"stage_{stage}", k, payload)

    def clear(self) -> None:
        self.store.clear()


@dataclass
class DeNovoResult:
    """Final contigs plus per-round provenance.

    Attributes:
        contigs: the final merged contigs (every accepted extension folded
            into the sequence; no dangling extension records).
        rounds: per-round statistics, in k-schedule order.
        round_contigs: the merged contigs each round produced (parallel to
            ``rounds``) — the provenance trail of the feed-forward loop,
            so intermediate assemblies remain inspectable instead of being
            overwritten round by round.
    """

    contigs: list[Contig]
    rounds: list[AssemblyStats] = field(default_factory=list)
    round_contigs: list[list[Contig]] = field(default_factory=list)

    @property
    def final_n50(self) -> int:
        """N50 over the final contigs' full (extension-folded) lengths.

        Uses ``extended_sequence()`` lengths so an unfolded extension
        record still counts once — never added on top of a sequence it
        was already merged into.
        """
        return n50([len(c.extended_sequence()) for c in self.contigs])

    def fingerprint(self) -> str:
        """Digest of the final contig names + sequences (golden outputs)."""
        h = hashlib.sha256()
        for c in self.contigs:
            h.update(c.name.encode())
            h.update(b"\x00")
            h.update(c.extended_sequence().encode())
            h.update(b"\n")
        return h.hexdigest()


class DeNovoAssembler:
    """Reads in, extended contigs out (the whole Figure 2 loop).

    Args:
        k_schedule: global-graph k per round (MetaHipMer: 21, 33, 55, 77).
        min_count: k-mer error-filter threshold (also the graph's edge
            support threshold and the carried-contig pseudo-read
            multiplicity).
        min_contig_len: discard unitigs shorter than this.
        policy: local-assembly walk thresholds.
        kernel: optional simulated-GPU kernel to run the local-assembly
            phase on (profiled); the CPU pipeline is used when omitted.
    """

    def __init__(
        self,
        k_schedule: tuple[int, ...] = (21, 33),
        min_count: int = 2,
        min_contig_len: int = 60,
        policy: WalkPolicy = PRODUCTION_POLICY,
        kernel: LocalAssemblyKernel | None = None,
    ) -> None:
        if not k_schedule or list(k_schedule) != sorted(set(k_schedule)):
            raise KmerError(f"k_schedule must be strictly increasing, got {k_schedule}")
        self.k_schedule = tuple(int(k) for k in k_schedule)
        self.min_count = min_count
        self.min_contig_len = min_contig_len
        self.policy = policy
        self.kernel = kernel

    def config_fingerprint(self) -> dict:
        """JSON-compatible configuration summary for checkpoint meta."""
        import dataclasses

        return {
            "k_schedule": list(self.k_schedule),
            "min_count": self.min_count,
            "min_contig_len": self.min_contig_len,
            "policy": dataclasses.asdict(self.policy),
            "kernel": type(self.kernel).__name__ if self.kernel else None,
            "device": (self.kernel.device.name
                       if self.kernel is not None
                       and getattr(self.kernel, "device", None) is not None
                       else None),
        }

    def _local_assembly(self, contigs: list[Contig], k: int) -> int:
        """Run the paper's kernel over the aligned contigs; returns bases added."""
        if self.kernel is not None:
            result = self.kernel.run(contigs, k)
            total = 0
            from repro.genomics.contig import ContigExtension, End

            for i, c in enumerate(contigs):
                rb, rs = result.right[i]
                lb, ls = result.left[i]
                c.right_extension = ContigExtension(End.RIGHT, rb, rs.value, k)
                c.left_extension = ContigExtension(End.LEFT, lb, ls.value, k)
                total += len(rb) + len(lb)
            return total
        assembler = LocalAssembler(k_schedule=(k,), policy=self.policy)
        assembler.assemble(contigs)
        return sum(c.total_extension_length() for c in contigs)

    def assemble(
        self,
        reads: ReadSet,
        checkpoint: PipelineCheckpoint | None = None,
        on_stage: StageCallback | None = None,
    ) -> DeNovoResult:
        """Run every pipeline round; returns final contigs + statistics.

        Args:
            reads: input sequencing reads.
            checkpoint: persist each completed stage and restore existing
                stage checkpoints instead of recomputing (resume).
            on_stage: called after each stage as ``(k, stage, resumed)``
                — progress reporting for the CLI.
        """
        result = DeNovoResult(contigs=[])
        carried: list[Contig] = []
        for k in self.k_schedule:
            state = RoundState(k=k, reads=reads, carried=carried)
            for name in STAGE_ORDER:
                stage = STAGES[name]
                payload = checkpoint.load(k, name) if checkpoint else None
                resumed = payload is not None
                if resumed:
                    stage.restore(self, state, payload)
                else:
                    payload = stage.run(self, state)
                    if checkpoint is not None:
                        checkpoint.save(k, name, payload)
                if on_stage is not None:
                    on_stage(k, name, resumed)
                if name == "contigs" and not state.contigs:
                    break  # nothing to align/extend; carry forward as-is
            if state.stats is not None:
                result.rounds.append(state.stats)
                result.round_contigs.append(state.merged)
                carried = state.merged
        result.contigs = carried
        return result
