"""The end-to-end de novo assembler (Figure 2), single-node form.

``DeNovoAssembler`` chains every stage the paper's pipeline diagram
shows: k-mer analysis → global de Bruijn graph → contig generation →
read alignment → **local assembly** (the paper's kernel, either the CPU
pipeline or a simulated-GPU port), iterating over the production k-mer
schedule. Each round assembles at one k and feeds its extended contigs
forward, so later (larger-k) rounds resolve forks the earlier ones could
not — the paper's Figure 1 resolution mechanism at pipeline scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extension import PRODUCTION_POLICY, WalkPolicy
from repro.core.pipeline import LocalAssembler
from repro.errors import KmerError
from repro.genomics.contig import Contig
from repro.genomics.reads import ReadSet
from repro.kernels.engine import LocalAssemblyKernel
from repro.metahipmer.alignment import assign_reads_to_ends
from repro.metahipmer.global_graph import GlobalDeBruijnGraph, generate_contigs
from repro.metahipmer.kmer_analysis import count_kmers_filtered


def n50(lengths: list[int]) -> int:
    """The standard assembly contiguity metric: the length L such that
    half of all assembled bases lie in contigs of length >= L."""
    if not lengths:
        return 0
    ordered = sorted(lengths, reverse=True)
    half = sum(ordered) / 2
    acc = 0
    for length in ordered:
        acc += length
        if acc >= half:
            return length
    return ordered[-1]


@dataclass
class AssemblyStats:
    """Per-round summary of the pipeline's output."""

    k: int
    solid_kmers: int
    contigs: int
    total_bases: int
    n50: int
    reads_assigned: int
    extension_bases: int

    @property
    def mean_contig_length(self) -> float:
        return self.total_bases / self.contigs if self.contigs else 0.0


@dataclass
class DeNovoResult:
    """Final contigs plus per-round statistics."""

    contigs: list[Contig]
    rounds: list[AssemblyStats] = field(default_factory=list)

    @property
    def final_n50(self) -> int:
        return n50([len(c) + c.total_extension_length() for c in self.contigs])


class DeNovoAssembler:
    """Reads in, extended contigs out (the whole Figure 2 loop).

    Args:
        k_schedule: global-graph k per round (MetaHipMer: 21, 33, 55, 77).
        min_count: k-mer error-filter threshold.
        min_contig_len: discard unitigs shorter than this.
        policy: local-assembly walk thresholds.
        kernel: optional simulated-GPU kernel to run the local-assembly
            phase on (profiled); the CPU pipeline is used when omitted.
    """

    def __init__(
        self,
        k_schedule: tuple[int, ...] = (21, 33),
        min_count: int = 2,
        min_contig_len: int = 60,
        policy: WalkPolicy = PRODUCTION_POLICY,
        kernel: LocalAssemblyKernel | None = None,
    ) -> None:
        if not k_schedule or list(k_schedule) != sorted(set(k_schedule)):
            raise KmerError(f"k_schedule must be strictly increasing, got {k_schedule}")
        self.k_schedule = k_schedule
        self.min_count = min_count
        self.min_contig_len = min_contig_len
        self.policy = policy
        self.kernel = kernel

    def _local_assembly(self, contigs: list[Contig], k: int) -> int:
        """Run the paper's kernel over the aligned contigs; returns bases added."""
        if self.kernel is not None:
            result = self.kernel.run(contigs, k)
            total = 0
            from repro.genomics.contig import ContigExtension, End

            for i, c in enumerate(contigs):
                rb, rs = result.right[i]
                lb, ls = result.left[i]
                c.right_extension = ContigExtension(End.RIGHT, rb, rs.value, k)
                c.left_extension = ContigExtension(End.LEFT, lb, ls.value, k)
                total += len(rb) + len(lb)
            return total
        assembler = LocalAssembler(k_schedule=(k,), policy=self.policy)
        assembler.assemble(contigs)
        return sum(c.total_extension_length() for c in contigs)

    def assemble(self, reads: ReadSet) -> DeNovoResult:
        """Run every pipeline round; returns final contigs + statistics."""
        result = DeNovoResult(contigs=[])
        for k in self.k_schedule:
            spectrum = count_kmers_filtered(reads, k, min_count=self.min_count)
            graph = GlobalDeBruijnGraph(k, spectrum,
                                        min_edge_count=self.min_count)
            graph.add_reads(reads)
            seqs = generate_contigs(graph, min_length=max(self.min_contig_len,
                                                          k + 2))
            contigs = [Contig.from_string(f"k{k}_contig{i}", s)
                       for i, s in enumerate(seqs)]
            if not contigs:
                continue
            stats_align = assign_reads_to_ends(contigs, reads)
            ext = self._local_assembly(contigs, k)
            result.contigs = contigs
            result.rounds.append(AssemblyStats(
                k=k,
                solid_kmers=len(spectrum),
                contigs=len(contigs),
                total_bases=sum(len(c) for c in contigs),
                n50=n50([len(c) for c in contigs]),
                reads_assigned=stats_align["assigned"],
                extension_bases=ext,
            ))
        return result
