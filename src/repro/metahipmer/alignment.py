"""Read-to-contig alignment and read-to-end assignment (Figure 2, stage 4).

After contig generation, MetaHipMer aligns the reads back to the contigs;
reads that align to (or overhang) a contig *end* are handed to local
assembly. This module implements the single-node equivalent:

* a seed index over contig k-mers,
* gapless seed-and-extend alignment (substitutions only — matching the
  Illumina-style error model used throughout),
* end classification with overhang detection, producing exactly the
  ``(contig.reads, contig.read_end_hints)`` structure the local-assembly
  kernels consume.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import reverse_complement
from repro.genomics.reads import Read, ReadSet

#: Seed length for the contig k-mer index.
DEFAULT_SEED_LEN = 17

#: Maximum mismatch fraction for an accepted alignment.
DEFAULT_MAX_MISMATCH_FRAC = 0.1

#: Reads whose alignment starts/ends within this many bases of a contig
#: boundary (or overhangs it) are assigned to that end.
DEFAULT_END_WINDOW = 100


@dataclass(frozen=True)
class AlignmentHit:
    """One read-to-contig alignment.

    Attributes:
        contig_index: which contig.
        position: contig coordinate of the read's first base (may be
            negative: the read overhangs the left end).
        reverse: read aligned as its reverse complement.
        mismatches: substitutions in the overlapping region.
        overlap: aligned bases (read ∩ contig).
    """

    contig_index: int
    position: int
    reverse: bool
    mismatches: int
    overlap: int

    @property
    def identity(self) -> float:
        return 1.0 - self.mismatches / self.overlap if self.overlap else 0.0


class ReadAligner:
    """Seed-and-extend aligner over a fixed contig set.

    Args:
        contigs: target contigs (indexed once, at construction).
        seed_len: exact-match seed length.
        max_mismatch_frac: acceptance threshold on the extended alignment.
    """

    def __init__(
        self,
        contigs: list[Contig],
        seed_len: int = DEFAULT_SEED_LEN,
        max_mismatch_frac: float = DEFAULT_MAX_MISMATCH_FRAC,
    ) -> None:
        if seed_len <= 0:
            raise SequenceError(f"seed_len must be positive, got {seed_len}")
        self.contigs = contigs
        self.seed_len = seed_len
        self.max_mismatch_frac = max_mismatch_frac
        self._index: dict[bytes, list[tuple[int, int]]] = defaultdict(list)
        for ci, contig in enumerate(contigs):
            codes = contig.codes
            for i in range(0, max(0, len(codes) - seed_len + 1)):
                self._index[codes[i : i + seed_len].tobytes()].append((ci, i))

    def _extend(self, read_codes: np.ndarray, ci: int, pos: int,
                reverse: bool) -> AlignmentHit | None:
        contig_codes = self.contigs[ci].codes
        lo = max(0, pos)
        hi = min(len(contig_codes), pos + len(read_codes))
        overlap = hi - lo
        if overlap < self.seed_len:
            return None
        mism = int(np.count_nonzero(
            read_codes[lo - pos : hi - pos] != contig_codes[lo:hi]
        ))
        if mism > self.max_mismatch_frac * overlap:
            return None
        return AlignmentHit(contig_index=ci, position=pos, reverse=reverse,
                            mismatches=mism, overlap=overlap)

    def align(self, read: Read, max_seeds: int = 8) -> AlignmentHit | None:
        """Best alignment of ``read`` (either strand) or None.

        Seeds are sampled across the read; candidates are deduplicated by
        (contig, diagonal) and the highest-overlap, fewest-mismatch hit
        wins.
        """
        best: AlignmentHit | None = None
        for reverse in (False, True):
            codes = read.codes if not reverse else reverse_complement(read.codes)
            n_seeds = max(1, min(max_seeds,
                                 (len(codes) - self.seed_len + 1) // self.seed_len + 1))
            if len(codes) < self.seed_len:
                continue
            offsets = np.unique(np.linspace(
                0, len(codes) - self.seed_len, n_seeds, dtype=np.int64))
            tried: set[tuple[int, int]] = set()
            for off in offsets:
                seed = codes[off : off + self.seed_len].tobytes()
                for ci, cpos in self._index.get(seed, ()):
                    key = (ci, int(cpos) - int(off))
                    if key in tried:
                        continue
                    tried.add(key)
                    hit = self._extend(codes, ci, cpos - int(off), reverse)
                    if hit and (best is None
                                or (hit.overlap - 3 * hit.mismatches)
                                > (best.overlap - 3 * best.mismatches)):
                        best = hit
        return best

    def classify_end(self, hit: AlignmentHit, read_len: int,
                     end_window: int = DEFAULT_END_WINDOW) -> End | None:
        """Which contig end (if any) the aligned read belongs to.

        A read belongs to the LEFT end if it overhangs or starts within
        ``end_window`` of position 0; to the RIGHT end symmetrically. Ties
        (short contigs) go to the nearer end.
        """
        contig_len = len(self.contigs[hit.contig_index])
        start = hit.position
        end_pos = hit.position + read_len
        near_left = start < end_window
        near_right = end_pos > contig_len - end_window
        if near_left and near_right:
            return End.LEFT if start + (end_pos - contig_len) < 0 else End.RIGHT
        if near_left:
            return End.LEFT
        if near_right:
            return End.RIGHT
        return None


def assign_reads_to_ends(
    contigs: list[Contig],
    reads: ReadSet,
    seed_len: int = DEFAULT_SEED_LEN,
    end_window: int = DEFAULT_END_WINDOW,
) -> dict[str, int]:
    """Align every read and attach end-assigned reads to their contigs.

    Populates each contig's ``reads`` / ``read_end_hints`` in place
    (replacing any previous assignment). Reads are stored in their
    contig-forward orientation so the local-assembly kernels never see
    strand. Returns assignment statistics.
    """
    aligner = ReadAligner(contigs, seed_len=seed_len)
    for c in contigs:
        c.reads = ReadSet()
        c.read_end_hints = []
    stats = {"aligned": 0, "unaligned": 0, "interior": 0, "assigned": 0}
    for read in reads:
        hit = aligner.align(read)
        if hit is None:
            stats["unaligned"] += 1
            continue
        stats["aligned"] += 1
        end = aligner.classify_end(hit, len(read), end_window)
        if end is None:
            stats["interior"] += 1
            continue
        contig = contigs[hit.contig_index]
        if hit.reverse:
            read = Read(name=read.name + "/rc",
                        codes=reverse_complement(read.codes),
                        quals=read.quals[::-1].copy())
        contig.reads.append(read)
        contig.read_end_hints.append(end)
        stats["assigned"] += 1
    return stats
