"""The global de Bruijn graph and contig generation (Figure 2, stage 2-3).

Nodes are the *solid* k-mers from k-mer analysis (both orientations are
materialized, so all walks read left-to-right); edges are (k+1)-mer
observations in the reads. Contigs are unitigs: maximal paths along which
every node has a unique successor whose predecessor is also unique —
the unambiguous regions of the graph. Sequencing error and inter-organism
homology create forks that end unitigs early; that is precisely what the
local-assembly phase later repairs with read-local graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KmerError
from repro.genomics.dna import BASES, complement, decode, reverse_complement
from repro.genomics.kmer import canonical_kmer, kmer_fingerprints, kmer_matrix
from repro.genomics.reads import ReadSet
from repro.metahipmer.kmer_analysis import KmerSpectrum

#: Minimum reads supporting an edge for the walk to traverse it.
DEFAULT_MIN_EDGE_COUNT = 2

#: Contigs shorter than this are discarded (k + a few extensions).
DEFAULT_MIN_CONTIG_LEN = 50


@dataclass
class _Node:
    """One k-mer node: counts of observed next bases (forward direction)."""

    exts: np.ndarray = field(default_factory=lambda: np.zeros(4, dtype=np.int64))
    count: int = 0


class GlobalDeBruijnGraph:
    """The whole-dataset de Bruijn graph over solid k-mers.

    Args:
        k: k-mer size.
        spectrum: output of k-mer analysis; only k-mers whose canonical
            fingerprint is solid become nodes (error filtering).
        min_edge_count: reads required to support a traversable edge.
    """

    def __init__(self, k: int, spectrum: KmerSpectrum | None = None,
                 min_edge_count: int = DEFAULT_MIN_EDGE_COUNT) -> None:
        if k <= 0:
            raise KmerError(f"k must be positive, got {k}")
        if spectrum is not None and spectrum.k != k:
            raise KmerError(f"spectrum is for k={spectrum.k}, graph wants k={k}")
        self.k = k
        self.spectrum = spectrum
        self.min_edge_count = min_edge_count
        self._nodes: dict[str, _Node] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, kmer: str) -> bool:
        return kmer in self._nodes

    def node(self, kmer: str) -> _Node | None:
        return self._nodes.get(kmer)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _solid_mask(self, codes: np.ndarray) -> np.ndarray:
        """Per-position solidity of every k-mer of ``codes``, vectorized.

        Canonical fingerprints for the whole sequence are computed in two
        rolling passes (same identity as k-mer analysis) instead of
        re-fingerprinting each window — the membership test is the only
        per-position Python work left.
        """
        n = len(codes) - self.k + 1
        if self.spectrum is None:
            return np.ones(n, dtype=bool)
        fwd = kmer_fingerprints(codes, self.k)
        rc = complement(codes)[::-1]
        rcf = kmer_fingerprints(np.ascontiguousarray(rc), self.k)[::-1]
        canon = np.minimum(fwd, rcf)
        counts = self.spectrum.counts
        return np.fromiter((int(f) in counts for f in canon),
                           dtype=bool, count=n)

    def add_reads(self, reads: ReadSet) -> None:
        """Insert every (solid) k-mer of every read, in both orientations."""
        for r in reads:
            for codes in (r.codes, reverse_complement(r.codes)):
                if len(codes) < self.k:
                    continue
                mat = kmer_matrix(codes, self.k)
                solid = self._solid_mask(codes)
                for i in np.nonzero(solid)[0]:
                    kmer = decode(mat[i])
                    node = self._nodes.setdefault(kmer, _Node())
                    node.count += 1
                    if i + self.k < len(codes):
                        node.exts[int(codes[i + self.k])] += 1

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    def successors(self, kmer: str) -> list[str]:
        """Bases extending ``kmer`` with enough read support."""
        node = self._nodes.get(kmer)
        if node is None:
            return []
        return [BASES[i] for i in range(4)
                if node.exts[i] >= self.min_edge_count
                and (kmer[1:] + BASES[i]) in self._nodes]

    def predecessors(self, kmer: str) -> list[str]:
        """Bases preceding ``kmer`` (via the reverse-complement node)."""
        rc = reverse_complement(kmer)
        assert isinstance(rc, str)
        succ = self.successors(rc)
        return [reverse_complement(b) for b in succ]

    def unique_successor(self, kmer: str) -> str | None:
        """The unitig-extension base: a sole successor whose own sole
        predecessor is ``kmer`` (the standard unambiguous-path rule)."""
        succ = self.successors(kmer)
        if len(succ) != 1:
            return None
        nxt = kmer[1:] + succ[0]
        preds = self.predecessors(nxt)
        if len(preds) != 1 or (preds[0] + nxt[:-1]) != kmer:
            return None
        return succ[0]

    def walk_unitig(self, start: str, max_len: int = 1_000_000) -> str:
        """Maximal unambiguous extension of ``start`` to the right."""
        out: list[str] = []
        cur = start
        seen = {cur}
        while len(out) < max_len:
            base = self.unique_successor(cur)
            if base is None:
                break
            cur = cur[1:] + base
            if cur in seen:
                break
            seen.add(cur)
            out.append(base)
        return "".join(out)


def generate_contigs(
    graph: GlobalDeBruijnGraph,
    min_length: int = DEFAULT_MIN_CONTIG_LEN,
) -> list[str]:
    """Emit every unitig of the graph once (strand-deduplicated).

    For each unvisited node, extend maximally right and (via the reverse
    complement) left; mark all covered k-mers, canonical-side, visited.
    """
    visited: set[str] = set()
    contigs: list[str] = []
    for kmer in list(graph._nodes):
        if canonical_kmer(kmer) in visited:
            continue
        right = graph.walk_unitig(kmer)
        rc = reverse_complement(kmer)
        assert isinstance(rc, str)
        left_rc = graph.walk_unitig(rc)
        left = reverse_complement(left_rc)
        assert isinstance(left, str)
        seq = left + kmer + right
        for i in range(len(seq) - graph.k + 1):
            visited.add(canonical_kmer(seq[i : i + graph.k]))
        if len(seq) >= min_length:
            contigs.append(seq)
    return contigs
