"""The named stages of the de novo assembler pipeline (Figure 2).

Each round of :class:`~repro.metahipmer.pipeline.DeNovoAssembler` runs the
same five stages in order::

    kmers   -> k-mer analysis over reads + carried-forward contigs
    contigs -> global de Bruijn graph and unitig generation
    align   -> read-to-contig alignment, read-to-end assignment
    extend  -> local assembly (the paper's kernel) on every contig end
    merge   -> fold accepted extensions into the contig sequence; these
               merged contigs seed the next (larger-k) round

Every stage is an object in the :data:`STAGES` registry with two duties:
``run`` computes the stage from the current :class:`RoundState` and
returns a JSON-serializable checkpoint payload; ``restore`` rebuilds the
state from such a payload without recomputing. The pipeline driver
checkpoints after each stage and restores on ``--resume``, so a killed
run resumes byte-identically (the pipeline is deterministic: no stage
draws randomness).

The *feed-forward* contract (the paper's Figure 1 fork-resolution
mechanism at pipeline scale) lives in the ``kmers``/``contigs`` stages:
each merged contig from round k re-enters round k+1 as a high-quality
pseudo-read, repeated ``min_count`` times so its k-mers are solid and its
edges traversable. Larger k then walks through forks the smaller k could
not resolve, with the carried sequence bridging regions where raw-read
coverage alone is too thin for the larger k.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.genomics.contig import Contig, ContigExtension, End
from repro.genomics.reads import MAX_PHRED, Read, ReadSet
from repro.metahipmer.alignment import assign_reads_to_ends
from repro.metahipmer.global_graph import GlobalDeBruijnGraph, generate_contigs
from repro.metahipmer.kmer_analysis import KmerSpectrum, count_kmers_filtered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.metahipmer.pipeline import DeNovoAssembler


def n50(lengths: list[int]) -> int:
    """The standard assembly contiguity metric: the length L such that
    half of all assembled bases lie in contigs of length >= L."""
    if not lengths:
        return 0
    ordered = sorted(lengths, reverse=True)
    half = sum(ordered) / 2
    acc = 0
    for length in ordered:
        acc += length
        if acc >= half:
            return length
    return ordered[-1]


@dataclass
class AssemblyStats:
    """Per-round summary of the pipeline's output.

    Attributes:
        k: this round's global-graph k-mer size.
        solid_kmers: solid k-mers after error filtering (carried
            pseudo-reads included).
        contigs: unitigs generated this round.
        total_bases / n50: contig size metrics *before* local assembly.
        reads_assigned: reads assigned to a contig end by alignment.
        extension_bases: bases added by local assembly (both ends).
        carried_in: merged contigs fed forward from the previous round.
        merged_bases / merged_n50: size metrics *after* the round's
            extensions are folded in — what the next round will see.
    """

    k: int
    solid_kmers: int
    contigs: int
    total_bases: int
    n50: int
    reads_assigned: int
    extension_bases: int
    carried_in: int = 0
    merged_bases: int = 0
    merged_n50: int = 0

    @property
    def mean_contig_length(self) -> float:
        return self.total_bases / self.contigs if self.contigs else 0.0


@dataclass
class RoundState:
    """Everything one pipeline round accumulates as its stages run."""

    k: int
    reads: ReadSet
    carried: list[Contig] = field(default_factory=list)
    spectrum: KmerSpectrum | None = None
    contigs: list[Contig] = field(default_factory=list)
    align_stats: dict[str, int] = field(default_factory=dict)
    extension_bases: int = 0
    merged: list[Contig] = field(default_factory=list)
    stats: AssemblyStats | None = None
    _augmented: ReadSet | None = None


def carry_forward_reads(reads: ReadSet, carried: list[Contig],
                        copies: int) -> ReadSet:
    """Reads plus each carried contig as a repeated pseudo-read.

    Merged contigs from the previous round re-enter k-mer analysis and
    graph construction as maximum-quality pseudo-reads, duplicated
    ``copies`` times so they clear both the spectrum's ``min_count`` and
    the graph's ``min_edge_count`` — assembled consensus should not be
    re-litigated by the error filter. Alignment and local assembly still
    see only the raw reads.
    """
    if not carried:
        return reads
    out = ReadSet(list(reads.reads))
    for contig in carried:
        quals = np.full(len(contig.codes), MAX_PHRED, dtype=np.uint8)
        for j in range(max(1, copies)):
            out.append(Read(name=f"__carry/{contig.name}/{j}",
                            codes=contig.codes.copy(), quals=quals.copy()))
    return out


def _augmented(asm: "DeNovoAssembler", state: RoundState) -> ReadSet:
    """The round's graph-input reads (raw + carried), computed once."""
    if state._augmented is None:
        state._augmented = carry_forward_reads(state.reads, state.carried,
                                               asm.min_count)
    return state._augmented


# ----------------------------------------------------------------------
# checkpoint payload codecs
# ----------------------------------------------------------------------


def _spectrum_to_payload(spectrum: KmerSpectrum) -> dict:
    return {
        "k": spectrum.k,
        "fingerprints": list(spectrum.counts.keys()),
        "counts": list(spectrum.counts.values()),
        "total_kmers": spectrum.total_kmers,
        "singletons_dropped": spectrum.singletons_dropped,
        "threshold_rejected": spectrum.threshold_rejected,
    }


def _spectrum_from_payload(data: dict) -> KmerSpectrum:
    return KmerSpectrum(
        k=int(data["k"]),
        counts=dict(zip((int(f) for f in data["fingerprints"]),
                        (int(c) for c in data["counts"]))),
        total_kmers=int(data["total_kmers"]),
        singletons_dropped=int(data["singletons_dropped"]),
        threshold_rejected=int(data.get("threshold_rejected", 0)),
    )


def _contigs_to_payload(contigs: list[Contig]) -> list[dict]:
    return [{"name": c.name, "seq": c.sequence} for c in contigs]


def _contigs_from_payload(data: list) -> list[Contig]:
    return [Contig.from_string(d["name"], d["seq"]) for d in data]


def _ext_to_payload(ext: ContigExtension | None) -> dict | None:
    if ext is None:
        return None
    return {"end": ext.end.value, "bases": ext.bases, "state": ext.walk_state,
            "k": ext.kmer_size, "steps": ext.steps}


def _ext_from_payload(data: dict | None) -> ContigExtension | None:
    if data is None:
        return None
    return ContigExtension(end=End(data["end"]), bases=data["bases"],
                           walk_state=data["state"], kmer_size=int(data["k"]),
                           steps=int(data["steps"]))


# ----------------------------------------------------------------------
# the stage registry
# ----------------------------------------------------------------------

#: name -> stage singleton, in no particular order (see STAGE_ORDER).
STAGES: dict[str, "PipelineStage"] = {}

#: Execution order of one pipeline round.
STAGE_ORDER: tuple[str, ...] = ()


def register_stage(cls: type) -> type:
    """Class decorator: instantiate and append to the registry."""
    global STAGE_ORDER
    stage = cls()
    STAGES[stage.name] = stage
    STAGE_ORDER = STAGE_ORDER + (stage.name,)
    return cls


class PipelineStage:
    """One named pipeline stage: compute-or-restore with a JSON payload."""

    name: str = ""

    def run(self, asm: "DeNovoAssembler", state: RoundState) -> dict:
        raise NotImplementedError

    def restore(self, asm: "DeNovoAssembler", state: RoundState,
                payload: dict) -> None:
        raise NotImplementedError


@register_stage
class KmerAnalysisStage(PipelineStage):
    """Error-filtered canonical k-mer counting over reads + carried contigs."""

    name = "kmers"

    def run(self, asm, state):
        state.spectrum = count_kmers_filtered(_augmented(asm, state), state.k,
                                              min_count=asm.min_count)
        return {"spectrum": _spectrum_to_payload(state.spectrum)}

    def restore(self, asm, state, payload):
        state.spectrum = _spectrum_from_payload(payload["spectrum"])


@register_stage
class ContigGenerationStage(PipelineStage):
    """Global de Bruijn graph construction and unitig emission."""

    name = "contigs"

    def run(self, asm, state):
        graph = GlobalDeBruijnGraph(state.k, state.spectrum,
                                    min_edge_count=asm.min_count)
        graph.add_reads(_augmented(asm, state))
        seqs = generate_contigs(graph, min_length=max(asm.min_contig_len,
                                                      state.k + 2))
        state.contigs = [Contig.from_string(f"k{state.k}_contig{i}", s)
                         for i, s in enumerate(seqs)]
        return {"contigs": _contigs_to_payload(state.contigs)}

    def restore(self, asm, state, payload):
        state.contigs = _contigs_from_payload(payload["contigs"])


@register_stage
class AlignmentStage(PipelineStage):
    """Read-to-contig alignment; assigns raw reads to contig ends."""

    name = "align"

    def run(self, asm, state):
        state.align_stats = assign_reads_to_ends(state.contigs, state.reads)
        per_contig = []
        for c in state.contigs:
            per_contig.append({
                "reads": [[r.name, r.sequence, r.quality_string]
                          for r in c.reads],
                "hints": [e.value for e in (c.read_end_hints or [])],
            })
        return {"stats": dict(state.align_stats), "per_contig": per_contig}

    def restore(self, asm, state, payload):
        state.align_stats = {k: int(v) for k, v in payload["stats"].items()}
        for c, entry in zip(state.contigs, payload["per_contig"]):
            c.reads = ReadSet([Read.from_strings(name, seq, quals)
                               for name, seq, quals in entry["reads"]])
            c.read_end_hints = [End(e) for e in entry["hints"]]


@register_stage
class LocalAssemblyStage(PipelineStage):
    """The paper's kernel: mer-walk both ends of every contig."""

    name = "extend"

    def run(self, asm, state):
        state.extension_bases = asm._local_assembly(state.contigs, state.k)
        return {
            "extension_bases": state.extension_bases,
            "extensions": [{"left": _ext_to_payload(c.left_extension),
                            "right": _ext_to_payload(c.right_extension)}
                           for c in state.contigs],
        }

    def restore(self, asm, state, payload):
        state.extension_bases = int(payload["extension_bases"])
        for c, entry in zip(state.contigs, payload["extensions"]):
            c.left_extension = _ext_from_payload(entry["left"])
            c.right_extension = _ext_from_payload(entry["right"])


@register_stage
class MergeStage(PipelineStage):
    """Fold accepted extensions into the sequence; record round stats.

    Extensions are folded *before* the next round re-aligns reads, so the
    larger k sees (and can walk through) the bases the smaller k already
    recovered — this is what makes the multi-k schedule resolve forks.
    """

    name = "merge"

    def run(self, asm, state):
        state.merged = [Contig.from_string(c.name, c.extended_sequence())
                        for c in state.contigs]
        merged_lengths = [len(c) for c in state.merged]
        state.stats = AssemblyStats(
            k=state.k,
            solid_kmers=len(state.spectrum) if state.spectrum else 0,
            contigs=len(state.contigs),
            total_bases=sum(len(c) for c in state.contigs),
            n50=n50([len(c) for c in state.contigs]),
            reads_assigned=int(state.align_stats.get("assigned", 0)),
            extension_bases=state.extension_bases,
            carried_in=len(state.carried),
            merged_bases=sum(merged_lengths),
            merged_n50=n50(merged_lengths),
        )
        return {"merged": _contigs_to_payload(state.merged),
                "stats": asdict(state.stats)}

    def restore(self, asm, state, payload):
        state.merged = _contigs_from_payload(payload["merged"])
        state.stats = AssemblyStats(**payload["stats"])


#: Signature of the per-stage progress callback accepted by
#: :meth:`DeNovoAssembler.assemble`: ``(k, stage_name, resumed)``.
StageCallback = Callable[[int, str, bool], None]
