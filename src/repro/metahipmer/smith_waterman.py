"""Banded Smith-Waterman local alignment (the ADEPT kernel's algorithm).

The paper positions local assembly against the *other* core
bioinformatics GPU kernel: dynamic-programming sequence alignment
(ADEPT [15], studied on the same three vendors in [5]). MetaHipMer's
alignment phase uses it to place reads on contigs with indel tolerance.
This module implements it twice:

* :func:`smith_waterman` — the full O(nm) reference, loop-based and
  obviously correct (used in tests and for short pairs).
* :class:`BandedAligner` — the production form: anti-diagonal *wavefront*
  vectorization inside a band around the expected diagonal. The wavefront
  is exactly the parallelization the GPU kernel uses (cells of one
  anti-diagonal are independent), so the NumPy inner loop mirrors the
  real kernel's structure: k iterations over vectors, no per-cell Python.

Scoring is affine-gap-free (linear gaps), matching ADEPT's DNA defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError
from repro.genomics.dna import encode

#: ADEPT's DNA scoring defaults.
MATCH_SCORE = 1
MISMATCH_SCORE = -3
GAP_SCORE = -3


@dataclass(frozen=True)
class LocalAlignment:
    """Result of a Smith-Waterman alignment.

    Attributes:
        score: best local alignment score.
        query_end / target_end: 0-based inclusive end coordinates of the
            best-scoring cell (ADEPT reports ends; starts need traceback).
        query_start / target_start: start coordinates (from traceback).
    """

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start + 1

    @property
    def target_span(self) -> int:
        return self.target_end - self.target_start + 1


def smith_waterman(
    query: str | np.ndarray,
    target: str | np.ndarray,
    match: int = MATCH_SCORE,
    mismatch: int = MISMATCH_SCORE,
    gap: int = GAP_SCORE,
) -> LocalAlignment:
    """Full-matrix Smith-Waterman with traceback (reference implementation)."""
    q = encode(query)
    t = encode(target)
    if q.size == 0 or t.size == 0:
        raise SequenceError("cannot align empty sequences")
    n, m = q.size, t.size
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            diag = H[i - 1, j - 1] + (match if q[i - 1] == t[j - 1] else mismatch)
            H[i, j] = max(0, diag, H[i - 1, j] + gap, H[i, j - 1] + gap)
    end = np.unravel_index(int(np.argmax(H)), H.shape)
    score = int(H[end])
    # traceback to the first zero cell
    i, j = int(end[0]), int(end[1])
    qi, tj = i, j
    while i > 0 and j > 0 and H[i, j] > 0:
        qi, tj = i, j
        sub = match if q[i - 1] == t[j - 1] else mismatch
        if H[i, j] == H[i - 1, j - 1] + sub:
            i, j = i - 1, j - 1
        elif H[i, j] == H[i - 1, j] + gap:
            i -= 1
        else:
            j -= 1
    return LocalAlignment(score=score, query_start=qi - 1, query_end=int(end[0]) - 1,
                          target_start=tj - 1, target_end=int(end[1]) - 1)


class BandedAligner:
    """Wavefront-vectorized banded Smith-Waterman (scores + end positions).

    The DP matrix is evaluated one anti-diagonal at a time; all cells of a
    diagonal are computed with one NumPy expression (the GPU wavefront).
    Restricting to ``|i - j - diag_offset| <= band`` bounds work to
    O(band * (n + m)).

    Args:
        match / mismatch / gap: scoring.
        band: half-width of the evaluated band.
    """

    def __init__(self, match: int = MATCH_SCORE, mismatch: int = MISMATCH_SCORE,
                 gap: int = GAP_SCORE, band: int = 16) -> None:
        if band <= 0:
            raise SequenceError(f"band must be positive, got {band}")
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.band = band

    def align(self, query: str | np.ndarray, target: str | np.ndarray,
              diag_offset: int = 0) -> LocalAlignment:
        """Best local alignment within the band around ``diag_offset``.

        ``diag_offset`` is the expected ``target_pos - query_pos`` (from a
        seed hit); 0 aligns around the main diagonal. Scores equal the
        full Smith-Waterman whenever the optimal path stays in-band (a
        property the tests check against :func:`smith_waterman`).
        """
        q = encode(query)
        t = encode(target)
        if q.size == 0 or t.size == 0:
            raise SequenceError("cannot align empty sequences")
        n, m = q.size, t.size
        width = 2 * self.band + 1
        NEG = np.int64(-(1 << 40))
        # rows: query index i (1..n); row i holds H[i, j] for
        # j = i + diag_offset - band .. i + diag_offset + band
        prev = np.zeros(width + 2, dtype=np.int64)  # padded H[i-1, *]
        best_score = 0
        best_i = best_j = 0
        offs = np.arange(width) - self.band  # j - (i + diag_offset)
        for i in range(1, n + 1):
            j = i + diag_offset + offs  # target columns of this row
            valid = (j >= 1) & (j <= m)
            tj = np.clip(j - 1, 0, m - 1)
            sub = np.where(t[tj] == q[i - 1], self.match, self.mismatch)
            # band is diagonal-aligned: H[i-1, j-1] sits at the same band
            # slot; H[i-1, j] one slot right; H[i, j-1] one slot left.
            diag = prev[1:-1] + sub
            up = prev[2:] + self.gap
            cur = np.maximum(diag, up)
            cur = np.where(valid, np.maximum(cur, 0), NEG)
            # left-neighbour dependency within the row: resolve the whole
            # gap chain with one max-plus prefix scan (g = -gap > 0):
            # H[i,j] >= max_{j'<j} H[i,j'] - g*(j - j')
            g = np.int64(-self.gap)
            slots = np.arange(width, dtype=np.int64)
            run = np.maximum.accumulate(cur + slots * g)
            cur = np.maximum(cur, run - slots * g)
            cur = np.where(valid, np.maximum(cur, 0), NEG)
            row_best = int(cur.max())
            if row_best > best_score:
                s = int(cur.argmax())
                best_score = row_best
                best_i, best_j = i, int(j[s])
            prev[1:-1] = np.where(valid, cur, 0)
            prev[0] = prev[-1] = 0
        return LocalAlignment(score=best_score,
                              query_start=-1, query_end=best_i - 1,
                              target_start=-1, target_end=best_j - 1)
