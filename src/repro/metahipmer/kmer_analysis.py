"""K-mer analysis: counting, Bloom prefiltering, error filtering.

The first stage of the MetaHipMer pipeline (Figure 2): count the
(canonical) k-mers of all input reads and drop those that occur only
once — a read error produces up to k novel k-mers, each almost surely
unique, so singleton k-mers are overwhelmingly sequencing errors.

MetaHipMer does this at scale with a distributed Bloom-filter prepass so
that singleton k-mers (the majority!) never enter the count table. The
same two-pass structure is implemented here: pass 1 inserts every k-mer
into a Bloom filter and records those *already present* as candidates;
pass 2 counts only the candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KmerError
from repro.genomics.kmer import kmer_fingerprints
from repro.genomics.dna import complement
from repro.genomics.reads import ReadSet

#: Default minimum multiplicity for a k-mer to be considered error-free.
DEFAULT_MIN_COUNT = 2


class BloomFilter:
    """A vectorized Bloom filter over 64-bit k-mer fingerprints.

    Uses ``n_hashes`` derived probes per item (double hashing from the
    fingerprint's two halves, the standard Kirsch–Mitzenmacher scheme).

    Args:
        n_bits: filter size in bits (rounded up to a multiple of 64).
        n_hashes: probes per item.
    """

    def __init__(self, n_bits: int, n_hashes: int = 4) -> None:
        if n_bits <= 0 or n_hashes <= 0:
            raise KmerError("BloomFilter needs positive n_bits and n_hashes")
        self.n_bits = int(n_bits)
        self.n_hashes = int(n_hashes)
        self._words = np.zeros((self.n_bits + 63) // 64, dtype=np.uint64)

    def _bit_positions(self, fps: np.ndarray) -> np.ndarray:
        """(n, n_hashes) bit indices for each fingerprint."""
        fps = np.asarray(fps, dtype=np.uint64)
        h1 = fps & np.uint64(0xFFFFFFFF)
        h2 = (fps >> np.uint64(32)) | np.uint64(1)  # odd => full-period
        i = np.arange(self.n_hashes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            return (h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(self.n_bits)

    def add(self, fps: np.ndarray) -> np.ndarray:
        """Insert fingerprints; returns which were (probably) seen before.

        "Seen before" covers both items already in the filter *and*
        repeats within this batch (a non-first occurrence counts as seen —
        the whole batch is inserted as one vectorized operation, so the
        bit array alone cannot distinguish intra-batch repeats).
        """
        fps = np.asarray(fps, dtype=np.uint64)
        pos = self._bit_positions(fps)
        word, bit = pos >> np.uint64(6), pos & np.uint64(63)
        present = np.ones(pos.shape[0], dtype=bool)
        for j in range(self.n_hashes):
            w = word[:, j].astype(np.int64)
            mask = np.uint64(1) << bit[:, j]
            present &= (self._words[w] & mask) != 0
        # intra-batch repeats: every occurrence after the first
        order = np.argsort(fps, kind="stable")
        dup_sorted = np.zeros(fps.size, dtype=bool)
        dup_sorted[1:] = fps[order][1:] == fps[order][:-1]
        dup = np.empty(fps.size, dtype=bool)
        dup[order] = dup_sorted
        present |= dup
        for j in range(self.n_hashes):
            w = word[:, j].astype(np.int64)
            np.bitwise_or.at(self._words, w, np.uint64(1) << bit[:, j])
        return present

    def __contains__(self, fp: int) -> bool:
        pos = self._bit_positions(np.array([fp], dtype=np.uint64))
        word, bit = pos >> np.uint64(6), pos & np.uint64(63)
        for j in range(self.n_hashes):
            if not (self._words[int(word[0, j])] & (np.uint64(1) << bit[0, j])):
                return False
        return True

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits set (≫0.5 means the filter is overloaded)."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum()) / self.n_bits


def _canonical_fingerprints(reads: ReadSet, k: int) -> np.ndarray:
    """Canonical (strand-independent) fingerprints of every k-mer of every read.

    The canonical fingerprint is ``min(fp(kmer), fp(revcomp(kmer)))`` —
    cheaper than string comparison and equally strand-symmetric.
    """
    fwd_parts: list[np.ndarray] = []
    rc_parts: list[np.ndarray] = []
    for r in reads:
        if len(r) < k:
            continue
        fwd_parts.append(kmer_fingerprints(r.codes, k))
        rc = complement(r.codes)[::-1]
        rc_parts.append(kmer_fingerprints(np.ascontiguousarray(rc), k)[::-1])
    if not fwd_parts:
        return np.empty(0, dtype=np.uint64)
    fwd = np.concatenate(fwd_parts)
    rc = np.concatenate(rc_parts)
    return np.minimum(fwd, rc)


@dataclass
class KmerSpectrum:
    """The outcome of k-mer analysis.

    Attributes:
        k: k-mer size.
        counts: canonical fingerprint -> multiplicity (solid k-mers only).
        total_kmers: k-mers scanned (including dropped singletons).
        singletons_dropped: occurrences of *true* singletons (multiplicity
            exactly 1) excluded by the error filter — the sequencing-error
            signal. Zero when ``min_count <= 1`` (nothing is dropped).
        threshold_rejected: occurrences of repeated k-mers (multiplicity
            >= 2) that still fell below ``min_count``. Kept separate from
            the singletons so a stricter threshold does not masquerade as
            a higher error rate.
    """

    k: int
    counts: dict[int, int] = field(default_factory=dict)
    total_kmers: int = 0
    singletons_dropped: int = 0
    threshold_rejected: int = 0

    def __len__(self) -> int:
        return len(self.counts)

    def is_solid(self, canonical_fp: int) -> bool:
        return canonical_fp in self.counts

    @property
    def error_fraction(self) -> float:
        """Fraction of scanned k-mers attributed to sequencing errors.

        Only true singletons count as errors; repeated k-mers rejected by
        a ``min_count > 2`` threshold are tracked in
        :attr:`threshold_rejected` instead.
        """
        return self.singletons_dropped / self.total_kmers if self.total_kmers else 0.0


def count_kmers_filtered(
    reads: ReadSet,
    k: int,
    min_count: int = DEFAULT_MIN_COUNT,
    bloom_bits_per_kmer: int = 10,
) -> KmerSpectrum:
    """Two-pass Bloom-prefiltered canonical k-mer counting.

    Pass 1 streams every k-mer through a Bloom filter; only k-mers seen at
    least twice (i.e. already present at insert time) become count-table
    candidates — singletons never allocate memory, exactly the MetaHipMer
    trick. Pass 2 counts candidates exactly and applies ``min_count``.
    With ``min_count <= 1`` the prepass is bypassed (its whole point is
    withholding singletons, which the caller wants kept) and every k-mer
    is counted exactly.

    Args:
        reads: input reads.
        k: k-mer size.
        min_count: multiplicity threshold for a "solid" k-mer.
        bloom_bits_per_kmer: Bloom sizing (10 bits/k-mer ≈ 1 % FP rate).
    """
    if k <= 0:
        raise KmerError(f"k must be positive, got {k}")
    fps = _canonical_fingerprints(reads, k)
    spectrum = KmerSpectrum(k=k, total_kmers=int(fps.size))
    if fps.size == 0:
        return spectrum
    if min_count <= 1:
        # The prepass only promotes k-mers seen >= 2 times, so with
        # min_count == 1 it would silently drop every singleton the
        # caller asked to keep — count everything exactly instead.
        uniq, cnt = np.unique(fps, return_counts=True)
    else:
        bloom = BloomFilter(max(64, bloom_bits_per_kmer * fps.size))
        repeated = bloom.add(fps)
        candidates = fps[repeated]
        # Exact counts for candidates only (true multiplicity, not Bloom's
        # guess)
        cand_set = np.unique(candidates)
        mask = np.isin(fps, cand_set)
        uniq, cnt = np.unique(fps[mask], return_counts=True)
    solid = cnt >= min_count
    spectrum.counts = dict(zip(uniq[solid].tolist(), cnt[solid].tolist()))
    below = ~solid
    # Non-candidate occurrences never reached the count table; the Bloom
    # prepass only withholds k-mers seen once, so they are all singletons.
    # (A Bloom false positive makes a singleton a candidate — it then
    # shows up here with cnt == 1 and is classified identically.)
    uncounted = spectrum.total_kmers - int(cnt.sum())
    spectrum.singletons_dropped = uncounted + int(cnt[below & (cnt == 1)].sum())
    spectrum.threshold_rejected = int(cnt[below & (cnt >= 2)].sum())
    return spectrum
