"""Fault-injection smoke drill: every fault kind fires once, nothing dies.

CI runs this script (see ``.github/workflows/ci.yml``) as an end-to-end
check of the resilience subsystem against a tiny dataset:

* table pressure  -> grow-retry recovers the squeezed contigs,
* read corruption -> the run completes (votes differ, nothing crashes),
* launch failure  -> surfaces as a retryable ``BackendLaunchError``,
* degenerate profile -> the perf model refuses with ``ModelError``,
* suite crash + checkpoint -> a resumed suite completes the remainder.

Exit code 0 means every scenario behaved; any unexpected exception
propagates and fails the job.
"""

from __future__ import annotations

import sys
import tempfile

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.datasets.generate import generate_paper_dataset
from repro.errors import BackendLaunchError, ModelError
from repro.kernels import CudaLocalAssemblyKernel
from repro.perfmodel.timing import predict_time
from repro.resilience import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
)
from repro.simt.device import A100

SCALE = 0.004
SEED = 7
K = 21


def main() -> int:
    contigs = generate_paper_dataset(K, scale=SCALE, seed=SEED)
    clean = CudaLocalAssemblyKernel(A100).run(contigs, K)

    # 1. table pressure, recovered by grow-retry -> identical output
    inj = FaultInjector(FaultPlan(faults=(
        FaultSpec(FaultKind.TABLE_PRESSURE, launch=0, warps=(0, 1),
                  capacity=32),
    )))
    kern = CudaLocalAssemblyKernel(A100, overflow_policy="grow-retry",
                                   fault_injector=inj, max_grow_attempts=10)
    res = kern.run(contigs, K)
    assert res.right == clean.right and res.left == clean.left
    assert res.retried and not res.degraded
    print(f"table pressure: {len(res.retried)} contig(s) recovered by "
          f"{res.profile.overflow_retries} grow-retries")

    # 2. read corruption: the run completes, the fault demonstrably fired
    inj = FaultInjector(FaultPlan(faults=(
        FaultSpec(FaultKind.READ_CORRUPTION, launch=0, fraction=0.2),
    ), seed=11))
    CudaLocalAssemblyKernel(A100, fault_injector=inj).run(contigs, K)
    assert inj.counts().get("read-corruption") == 1
    print("read corruption: run completed with corrupted votes")

    # 3. transient launch failure
    inj = FaultInjector(FaultPlan(faults=(
        FaultSpec(FaultKind.LAUNCH_FAILURE, launch=0),
    )))
    try:
        CudaLocalAssemblyKernel(A100, fault_injector=inj).run(contigs, K)
        raise AssertionError("launch failure did not surface")
    except BackendLaunchError:
        print("launch failure: surfaced as a retryable BackendLaunchError")

    # 4. degenerate perf-model input -> ModelError, not garbage numbers
    inj = FaultInjector(FaultPlan(faults=(
        FaultSpec(FaultKind.DEGENERATE_PROFILE, mode="nan-bytes"),
    )))
    res = CudaLocalAssemblyKernel(A100, fault_injector=inj).run(contigs, K)
    try:
        predict_time(res.profile, A100)
        raise AssertionError("degenerate profile was not rejected")
    except ModelError:
        print("degenerate profile: perf model refused NaN HBM bytes")

    # 5. suite crash mid-run, then checkpoint resume
    cfg = dict(scale=SCALE, seed=SEED, k_values=(K,))
    with tempfile.TemporaryDirectory() as ckpt:
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.SUITE_CRASH, run=1),
        )))
        crashed = ExperimentSuite(ExperimentConfig(
            **cfg, checkpoint_dir=ckpt, fault_injector=inj))
        try:
            crashed.run_all()
            raise AssertionError("suite crash did not fire")
        except InjectedCrashError:
            pass
        done = crashed.checkpoint_store().completed()
        resumed = ExperimentSuite(ExperimentConfig(**cfg, checkpoint_dir=ckpt))
        resumed.run_all()
        summary = resumed.resilience_summary()
        n_resumed = sum(r["from_checkpoint"] for r in summary)
        assert n_resumed == len(done) >= 1
        print(f"suite crash: {len(done)} checkpoint(s) survived, "
              f"{n_resumed} run(s) resumed, "
              f"{len(summary) - n_resumed} executed fresh")

    print("all fault-injection scenarios behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
