#!/usr/bin/env python
"""Quickstart: extend contigs with the local-assembly pipeline.

Simulates a handful of contigs with reads aligned to their ends (and a
known ground truth), runs the iterative local assembly (k = 21, 33), and
checks the recovered extensions against the hidden true flanks.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LocalAssembler, ScenarioSpec, simulate_batch

rng = np.random.default_rng(42)

# 1. Simulate 5 contigs, each with ~8x read coverage over its ends and
#    120 bases of hidden true sequence beyond each end.
spec = ScenarioSpec(contig_length=300, flank_length=120, read_length=100,
                    depth=8, seed_window=60)
scenarios = simulate_batch(5, spec, rng)

# 2. Run local assembly: per contig, build a de Bruijn hash table from its
#    reads and mer-walk both ends, retrying forks with the next k.
assembler = LocalAssembler(k_schedule=(21, 33))
results = assembler.assemble([s.contig for s in scenarios])

# 3. Compare against the simulator's ground truth.
print(f"{'contig':<10} {'left':>5} {'right':>6}  correct?")
for scenario, result in zip(scenarios, results):
    contig = result.contig
    left = contig.left_extension
    right = contig.right_extension
    left_ok = scenario.true_left_flank.endswith(left.bases)
    right_ok = scenario.true_right_flank.startswith(right.bases)
    print(f"{contig.name:<10} {len(left):>4}bp {len(right):>5}bp  "
          f"left={'yes' if left_ok else 'NO'} right={'yes' if right_ok else 'NO'} "
          f"(states: {left.walk_state}/{right.walk_state})")

total = sum(r.extension_length for r in results)
print(f"\nextended {len(results)} contigs by {total} bases total")
