#!/usr/bin/env python
"""Complete de novo metagenome assembly (the whole Figure 2 pipeline).

Simulates a small metagenome (three organisms at different abundances,
as the paper's co-assembly discussion motivates), sequences noisy reads,
and runs every pipeline stage: k-mer analysis with error filtering →
global de Bruijn graph → contig generation → read-to-end alignment →
the local-assembly kernel (on the simulated A100) — then validates the
assembly against the hidden ground truth.

Run:  python examples/full_denovo_assembly.py
"""

import numpy as np

from repro import A100, PRODUCTION_POLICY
from repro.analysis.report import render_table
from repro.genomics.dna import decode, reverse_complement
from repro.genomics.reads import ReadSet
from repro.genomics.simulate import ErrorProfile, sequence_read, simulate_genome
from repro.kernels import kernel_for_device
from repro.metahipmer import DeNovoAssembler, n50

rng = np.random.default_rng(7)

# --- the metagenomic sample: three organisms, uneven abundance ---------
ORGANISMS = [("bug_A", 1600, 10), ("bug_B", 1100, 7), ("bug_C", 700, 5)]
READ_LEN = 100
profile = ErrorProfile(error_rate=0.002)

genomes = {}
reads = ReadSet()
i = 0
for name, length, depth in ORGANISMS:
    genome = simulate_genome(length, rng)
    genomes[name] = decode(genome)
    for _ in range(int(length * depth / READ_LEN)):
        start = int(rng.integers(0, length - READ_LEN + 1))
        reads.append(sequence_read(genome, start, READ_LEN, rng, profile,
                                   name=f"{name}/r{i}"))
        i += 1
print(f"sample: {len(ORGANISMS)} organisms, {len(reads)} reads "
      f"({reads.total_bases} bases)")

# --- assemble, with local assembly running on the simulated A100 -------
kernel = kernel_for_device(A100, policy=PRODUCTION_POLICY)
assembler = DeNovoAssembler(k_schedule=(21, 33), kernel=kernel)
result = assembler.assemble(reads)

print("\nper-round statistics:")
rows = [[r.k, r.solid_kmers, r.contigs, r.total_bases, r.n50,
         r.reads_assigned, r.extension_bases] for r in result.rounds]
print(render_table(["k", "solid k-mers", "contigs", "bases", "N50",
                    "reads->ends", "ext bases"], rows))

# --- validate against ground truth --------------------------------------
matched, mismatched = 0, 0
per_org = {name: 0 for name in genomes}
for c in result.contigs:
    seq = c.extended_sequence()
    rc = reverse_complement(seq)
    hit = None
    for name, g in genomes.items():
        if seq in g or rc in g:
            hit = name
            break
    if hit:
        matched += 1
        per_org[hit] += len(seq)
    else:
        mismatched += 1

print(f"\ncontigs matching an organism exactly: {matched}/{matched + mismatched}")
print("recovered bases per organism:")
for name, length, _ in ORGANISMS:
    frac = per_org[name] / length
    print(f"  {name}: {per_org[name]}/{length} ({100 * frac:.0f}%)")
print(f"assembly N50 (after extension): {result.final_n50}")
