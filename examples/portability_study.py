#!/usr/bin/env python
"""Cross-vendor portability study (the paper's headline experiment).

Runs the CUDA, HIP, and SYCL ports of the local-assembly kernel on their
simulated devices (A100 / MI250X / Max 1550) over the four production
k-mer datasets, then prints the Figure 5 time comparison, the per-device
predication statistics, and the Pennycook portability metrics.

Run:  python examples/portability_study.py
"""

from repro import PLATFORMS, PRODUCTION_POLICY
from repro.analysis.report import render_table
from repro.datasets import generate_paper_dataset
from repro.kernels import kernel_for_device
from repro.perfmodel.efficiency import algorithm_efficiency, architectural_efficiency
from repro.perfmodel.portability import pennycook
from repro.perfmodel.timing import extrapolate_profile

SCALE = 0.02
K_VALUES = (21, 33, 55, 77)

datasets = {k: generate_paper_dataset(k, scale=SCALE) for k in K_VALUES}
profiles = {}
for device in PLATFORMS:
    kernel = kernel_for_device(device, policy=PRODUCTION_POLICY)
    for k in K_VALUES:
        print(f"  {device.programming_model:5s} port on {device.name} k={k} ...")
        result = kernel.run(datasets[k], k, parallel_scale=SCALE)
        profiles[device.name, k] = extrapolate_profile(
            result.profile, device, SCALE
        )

print("\nKernel time (ms) — Figure 5")
rows = [[k] + [round(profiles[d.name, k].seconds * 1e3, 1) for d in PLATFORMS]
        for k in K_VALUES]
print(render_table(["k"] + [d.name for d in PLATFORMS], rows))

print("\nPredication: mean active-lane fraction (warp width in parens)")
rows = [[k] + [f"{profiles[d.name, k].active_lane_fraction:.3f} ({d.warp_size})"
               for d in PLATFORMS] for k in K_VALUES]
print(render_table(["k"] + [d.name for d in PLATFORMS], rows))

print("\nPennycook performance portability")
for label, eff in (
    ("architectural", lambda p, d, k: architectural_efficiency(p, d)),
    ("algorithm", lambda p, d, k: algorithm_efficiency(p, k)),
):
    per_k = {
        k: [eff(profiles[d.name, k], d, k) for d in PLATFORMS] for k in K_VALUES
    }
    rows = [[k] + [f"{100 * e:.1f}%" for e in effs] + [f"{100 * pennycook(effs):.1f}%"]
            for k, effs in per_k.items()]
    print(render_table(["k"] + [d.name for d in PLATFORMS] + ["P"], rows,
                       title=f"{label} efficiency"))
    overall = pennycook([e for effs in per_k.values() for e in effs])
    print(f"average P_{label[:4]}: {100 * overall:.1f}%\n")
