#!/usr/bin/env python
"""Instruction (INTOP) roofline analysis (paper Figures 6 and 9).

Places each (device, k) kernel run on its device's INTOP roofline,
classifies memory- vs compute-bound, and prints the potential speed-up
coordinates of Figure 9.

Run:  python examples/roofline_analysis.py
"""

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.analysis.report import render_table
from repro.perfmodel.speedup import iso_curve_levels

suite = ExperimentSuite(ExperimentConfig(scale=0.02))
print("running all (device, k) combinations ...")
suite.run_all()

print("\nINTOP roofline (Figure 6)")
fig6 = suite.figure6()
for name, entry in fig6.items():
    print(f"\n{name}: peak {entry['peak_gintops']} GINTOPS, "
          f"{entry['hbm_gbps']} GB/s, machine balance {entry['machine_balance']}")
    rows = [[p["k"], p["II"], p["gintops_per_s"], p["bound"],
             f"{p['pct_of_ceiling']}%"] for p in entry["points"]]
    print(render_table(["k", "II (INTOP/B)", "GINTOP/s", "bound", "% ceiling"],
                       rows))

print("\nPotential speed-up plot (Figure 9)")
rows = [
    [p.device, p.k,
     f"{100 * p.algorithm_efficiency:.1f}%",
     f"{100 * p.architectural_efficiency:.1f}%",
     f"{p.speedup_by_improving_ai:.1f}x",
     f"{p.speedup_by_improving_performance:.1f}x"]
    for p in suite.figure9()
]
print(render_table(
    ["device", "k", "% theoretical II", "% roofline",
     "speed-up via AI", "speed-up via perf"], rows))
print(f"\niso-curve levels drawn in the paper's figure: "
      f"{', '.join(f'{v}x' for v in iso_curve_levels())}")
