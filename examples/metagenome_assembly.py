#!/usr/bin/env python
"""Metagenome local-assembly workflow (paper Figures 2 and 3).

Generates a scaled copy of the paper's k=21 dataset (Table II shapes),
runs the full GPU workflow on the simulated A100 — contig binning, hash
table size estimation, batched right/left extension kernels — and writes
the extended contigs to FASTA alongside a workload report.

Run:  python examples/metagenome_assembly.py
"""

from collections import Counter

from repro import PRODUCTION_POLICY, A100
from repro.core.binning import bin_contigs, binning_imbalance
from repro.datasets import generate_paper_dataset, measure_characteristics
from repro.genomics.io import write_fasta
from repro.kernels import kernel_for_device

K = 21
SCALE = 0.02  # 2% of the paper's dataset; all per-contig shapes preserved

print(f"generating k={K} dataset at scale {SCALE} ...")
contigs = generate_paper_dataset(K, scale=SCALE)
m = measure_characteristics(contigs, K)
print(f"  {m.total_contigs} contigs, {m.total_reads} reads "
      f"(avg {m.average_read_length:.0f} bp), "
      f"{m.total_hash_insertions} hash insertions")

# The Figure 3 pre-processing: bin contigs by read count so each kernel
# launch gets warps with similar work.
bins = bin_contigs(contigs, K)
print(f"  binned into {len(bins)} launches "
      f"(work imbalance {binning_imbalance(contigs, bins, K):.2f}x; "
      f"unbinned would be "
      f"{binning_imbalance(contigs, [type(bins[0])(contig_indices=list(range(len(contigs))))], K):.2f}x)")

print(f"running the CUDA port on the simulated {A100.name} ...")
kernel = kernel_for_device(A100, policy=PRODUCTION_POLICY)
result = kernel.run(contigs, K, parallel_scale=SCALE)

states = Counter(s.value for _, s in result.right)
states.update(s.value for _, s in result.left)
ext_bases = result.profile.extension_bases
print(f"  {result.profile.kernels_launched} kernel launches, "
      f"{result.profile.inserts} insertions, "
      f"{result.profile.mean_insert_probes:.2f} probes/insert")
print(f"  walk outcomes: {dict(states)}")
print(f"  extended contigs by {ext_bases} bases "
      f"({ext_bases / len(contigs):.1f} per contig; paper Table II: 48.2)")

records = []
for i, c in enumerate(contigs):
    right, _ = result.right[i]
    left, _ = result.left[i]
    records.append((c.name, left + c.sequence + right))
write_fasta(records, "extended_contigs.fa")
print("wrote extended_contigs.fa")
