#!/usr/bin/env python
"""de Bruijn graph walkthrough (paper Figure 1).

Reproduces the figure's example — the sequence ``AGCCCTCCCG`` segmented
into k-mers, the hash-table representation, and how a larger k resolves
the fork — using the library's real hash table and mer-walk.

Run:  python examples/debruijn_overview.py
"""

from repro.core.construct import build_table
from repro.core.extension import WalkPolicy, describe_votes
from repro.core.merwalk import mer_walk
from repro.genomics.dna import encode
from repro.genomics.kmer import kmers_of
from repro.genomics.reads import Read, ReadSet

SEQ = "AGCCCTCCCG"
POLICY = WalkPolicy(min_depth=1, hi_q_min_depth=1)

print(f"input sequence: {SEQ}\n")

for k in (3, 4, 6):
    print(f"--- k = {k} ---")
    print(f"k-mers: {' '.join(kmers_of(SEQ, k))}")
    reads = ReadSet([Read.from_strings("a", SEQ), Read.from_strings("b", SEQ)])
    table = build_table(reads, k)
    print("hash table (key -> extension votes):")
    for slot in sorted(table.slots(), key=lambda s: s.kmer):
        print(f"  {slot.kmer} -> {describe_votes(slot.votes)}")
    walk = mer_walk(table, encode(SEQ[:k]), policy=POLICY)
    reconstructed = SEQ[:k] + walk.bases
    print(f"walk from {SEQ[:k]}: +{walk.bases!r} -> {reconstructed} "
          f"({walk.state.value})")
    if walk.state.value == "fork":
        print("  ^ the fork the figure shows: at this k the graph is ambiguous")
    elif reconstructed == SEQ:
        print("  ^ larger k resolves the fork: the walk recovers the sequence")
    print()
