"""Tests for k-mer analysis: Bloom filter + error-filtered counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KmerError
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import PERFECT_READS, sequence_read, simulate_genome
from repro.metahipmer.kmer_analysis import (
    BloomFilter,
    count_kmers_filtered,
)


class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = np.random.default_rng(0)
        fps = rng.integers(0, 2**63, size=500, dtype=np.uint64)
        bloom = BloomFilter(n_bits=500 * 12)
        bloom.add(fps)
        for fp in fps[:100]:
            assert int(fp) in bloom

    def test_low_false_positive_rate(self):
        rng = np.random.default_rng(1)
        inserted = rng.integers(0, 2**62, size=1000, dtype=np.uint64)
        probes = rng.integers(2**62, 2**63, size=1000, dtype=np.uint64)
        bloom = BloomFilter(n_bits=1000 * 12)
        bloom.add(inserted)
        fp_rate = sum(int(p) in bloom for p in probes) / len(probes)
        assert fp_rate < 0.05

    def test_detects_repeats_across_batches(self):
        bloom = BloomFilter(n_bits=4096)
        a = np.array([10, 20, 30], dtype=np.uint64)
        assert not bloom.add(a).any()
        assert bloom.add(a).all()

    def test_detects_repeats_within_batch(self):
        bloom = BloomFilter(n_bits=4096)
        fps = np.array([7, 8, 7, 7, 9], dtype=np.uint64)
        seen = bloom.add(fps)
        np.testing.assert_array_equal(seen, [False, False, True, True, False])

    def test_fill_fraction(self):
        bloom = BloomFilter(n_bits=64 * 8, n_hashes=2)
        assert bloom.fill_fraction == 0.0
        bloom.add(np.array([1, 2, 3], dtype=np.uint64))
        assert 0 < bloom.fill_fraction < 0.2

    def test_rejects_bad_args(self):
        with pytest.raises(KmerError):
            BloomFilter(0)
        with pytest.raises(KmerError):
            BloomFilter(64, n_hashes=0)

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 2**63), min_size=1, max_size=100))
    def test_property_membership_after_insert(self, values):
        bloom = BloomFilter(n_bits=max(256, len(values) * 16))
        bloom.add(np.array(values, dtype=np.uint64))
        assert all(v in bloom for v in values)


class TestCountKmersFiltered:
    def _reads(self, genome, n, length, rng, profile=PERFECT_READS):
        return ReadSet([
            sequence_read(genome, int(rng.integers(0, len(genome) - length + 1)),
                          length, rng, profile, name=f"r{i}")
            for i in range(n)
        ])

    def test_solid_kmers_cover_genome(self):
        rng = np.random.default_rng(0)
        genome = simulate_genome(600, rng)
        reads = self._reads(genome, 60, 90, rng)
        spectrum = count_kmers_filtered(reads, 21)
        # at 9x coverage nearly every genomic k-mer occurs >= 2 times
        assert len(spectrum) > 0.9 * (600 - 21 + 1)
        assert spectrum.error_fraction < 0.1

    def test_singletons_dropped(self):
        # two unrelated aperiodic reads: every canonical k-mer is a singleton
        reads = ReadSet([Read.from_strings("a", "ACGGATTACACTGAG"),
                         Read.from_strings("b", "TGCATCCAAGGTCTT")])
        spectrum = count_kmers_filtered(reads, 11)
        assert len(spectrum) == 0
        assert spectrum.singletons_dropped == spectrum.total_kmers > 0

    def test_repeated_read_is_solid(self):
        reads = ReadSet([Read.from_strings("a", "ACGGATTACACTGAG"),
                         Read.from_strings("b", "ACGGATTACACTGAG")])
        spectrum = count_kmers_filtered(reads, 11)
        assert len(spectrum) == 15 - 11 + 1  # aperiodic: all 11-mers distinct

    def test_canonical_merging(self):
        """A read and its reverse complement share every canonical k-mer."""
        fwd = "ACGGATTACAGGT"
        rc = "ACCTGTAATCCGT"
        reads = ReadSet([Read.from_strings("f", fwd), Read.from_strings("r", rc)])
        spectrum = count_kmers_filtered(reads, 9)
        # each genomic k-mer observed twice (once per strand) -> solid
        assert len(spectrum) == len(fwd) - 9 + 1

    def test_min_count_threshold(self):
        reads = ReadSet([Read.from_strings(f"r{i}", "ACGGATTACACT")
                         for i in range(2)])
        assert len(count_kmers_filtered(reads, 8, min_count=3)) == 0
        assert len(count_kmers_filtered(reads, 8, min_count=2)) == 5

    def test_error_kmers_filtered(self):
        """Sequencing errors produce singletons that the filter removes."""
        rng = np.random.default_rng(3)
        genome = simulate_genome(500, rng)
        from repro.genomics.simulate import ErrorProfile

        reads = self._reads(genome, 50, 80, rng,
                            ErrorProfile(error_rate=0.01))
        spectrum = count_kmers_filtered(reads, 21)
        assert spectrum.singletons_dropped > 0
        # solid count stays near the genomic k-mer count despite errors
        assert len(spectrum) < 1.2 * (500 - 21 + 1)

    def test_reads_shorter_than_k_ignored(self):
        reads = ReadSet([Read.from_strings("s", "ACGT")])
        spectrum = count_kmers_filtered(reads, 21)
        assert spectrum.total_kmers == 0

    def test_rejects_bad_k(self):
        with pytest.raises(KmerError):
            count_kmers_filtered(ReadSet(), 0)

    def test_min_count_one_keeps_singletons(self):
        """Regression: the Bloom prepass must not impose a floor of 2.

        With ``min_count=1`` every scanned k-mer — singletons included —
        must be counted; previously the prepass silently behaved like
        ``min_count=2``.
        """
        reads = ReadSet([Read.from_strings("a", "ACGGATTACACTGAG"),
                         Read.from_strings("b", "TGCATCCAAGGTCTT")])
        spectrum = count_kmers_filtered(reads, 11, min_count=1)
        assert len(spectrum) == spectrum.total_kmers == 2 * (15 - 11 + 1)
        assert all(c == 1 for c in spectrum.counts.values())
        assert spectrum.singletons_dropped == 0
        assert spectrum.threshold_rejected == 0
        assert spectrum.error_fraction == 0.0

    def test_min_count_one_matches_two_on_repeats(self):
        """min_count=1 must agree with min_count=2 on non-singletons."""
        reads = ReadSet([Read.from_strings(f"r{i}", "ACGGATTACACT")
                         for i in range(2)])
        s1 = count_kmers_filtered(reads, 8, min_count=1)
        s2 = count_kmers_filtered(reads, 8, min_count=2)
        assert s1.counts == s2.counts

    def test_threshold_rejected_tracked_separately(self):
        """Regression: a doubleton rejected by min_count=3 is not an
        'error' — it must land in threshold_rejected, not
        singletons_dropped, so error_fraction stays honest."""
        reads = ReadSet([Read.from_strings("a", "ACGGATTACACT"),
                         Read.from_strings("b", "ACGGATTACACT"),
                         Read.from_strings("c", "TGCATCCAAGGT")])
        spectrum = count_kmers_filtered(reads, 12, min_count=3)
        assert len(spectrum) == 0
        # a+b: one canonical 12-mer seen twice; c: one singleton
        assert spectrum.threshold_rejected == 2
        assert spectrum.singletons_dropped == 1
        assert spectrum.error_fraction == pytest.approx(1 / 3)

    def test_min_count_two_semantics_unchanged(self):
        """The default path still drops exactly the singletons."""
        reads = ReadSet([Read.from_strings("a", "ACGGATTACACT"),
                         Read.from_strings("b", "ACGGATTACACT"),
                         Read.from_strings("c", "TGCATCCAAGGT")])
        spectrum = count_kmers_filtered(reads, 12, min_count=2)
        assert len(spectrum) == 1
        assert spectrum.singletons_dropped == 1
        assert spectrum.threshold_rejected == 0
