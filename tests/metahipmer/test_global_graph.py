"""Tests for the global de Bruijn graph and unitig generation."""

import numpy as np
import pytest

from repro.errors import KmerError
from repro.genomics.dna import decode, reverse_complement
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import PERFECT_READS, sequence_read, simulate_genome
from repro.metahipmer.global_graph import GlobalDeBruijnGraph, generate_contigs
from repro.metahipmer.kmer_analysis import count_kmers_filtered

K = 15


def _coverage_reads(genome, rng, depth=8, length=60):
    n = int(len(genome) * depth / length)
    reads = ReadSet()
    for i in range(n):
        s = int(rng.integers(0, len(genome) - length + 1))
        reads.append(sequence_read(genome, s, length, rng, PERFECT_READS,
                                   name=f"r{i}"))
    return reads


@pytest.fixture
def genome_and_graph():
    rng = np.random.default_rng(5)
    genome = simulate_genome(700, rng)
    reads = _coverage_reads(genome, rng)
    spectrum = count_kmers_filtered(reads, K)
    graph = GlobalDeBruijnGraph(K, spectrum)
    graph.add_reads(reads)
    return genome, reads, graph


class TestGraph:
    def test_both_orientations_present(self, genome_and_graph):
        genome, _, graph = genome_and_graph
        kmer = decode(genome[100 : 100 + K])
        rc = reverse_complement(kmer)
        assert kmer in graph and rc in graph

    def test_successor_matches_genome(self, genome_and_graph):
        genome, _, graph = genome_and_graph
        kmer = decode(genome[100 : 100 + K])
        succ = graph.successors(kmer)
        assert decode(genome[100 + K : 101 + K]) in succ

    def test_predecessor_matches_genome(self, genome_and_graph):
        genome, _, graph = genome_and_graph
        kmer = decode(genome[100 : 100 + K])
        preds = graph.predecessors(kmer)
        assert decode(genome[99:100]) in preds

    def test_unique_successor_in_unique_region(self, genome_and_graph):
        genome, _, graph = genome_and_graph
        kmer = decode(genome[300 : 300 + K])
        assert graph.unique_successor(kmer) == decode(genome[300 + K : 301 + K])

    def test_walk_follows_genome(self, genome_and_graph):
        genome, _, graph = genome_and_graph
        start = decode(genome[200 : 200 + K])
        ext = graph.walk_unitig(start)
        recovered = start + ext
        assert recovered in decode(genome)

    def test_spectrum_k_mismatch_rejected(self):
        spec = count_kmers_filtered(ReadSet(), 21)
        with pytest.raises(KmerError):
            GlobalDeBruijnGraph(15, spec)

    def test_rejects_bad_k(self):
        with pytest.raises(KmerError):
            GlobalDeBruijnGraph(0)

    def test_fork_ends_unique_successor(self):
        """Two sequences sharing a k-mer but diverging after it -> no
        unique successor at the shared k-mer (the Figure 1 fork)."""
        shared = "ACGTACGTACGTACG"  # 15 bases
        a = "T" * 6 + shared + "AAAAAA"
        b = "G" * 6 + shared + "CCCCCC"
        reads = ReadSet([Read.from_strings(f"{s}{i}", s)
                         for s in (a, b) for i in range(2)])
        graph = GlobalDeBruijnGraph(K)
        graph.add_reads(reads)
        assert len(graph.successors(shared)) == 2
        assert graph.unique_successor(shared) is None


class TestContigGeneration:
    def test_single_genome_reconstructed(self, genome_and_graph):
        genome, _, graph = genome_and_graph
        contigs = generate_contigs(graph)
        gs = decode(genome)
        assert contigs, "expected at least one contig"
        longest = max(contigs, key=len)
        assert longest in gs or str(reverse_complement(longest)) in gs
        assert len(longest) > 0.8 * len(genome)

    def test_contigs_strand_deduplicated(self, genome_and_graph):
        _, _, graph = genome_and_graph
        contigs = generate_contigs(graph)
        canon = set()
        for c in contigs:
            rc = reverse_complement(c)
            key = min(c, rc)
            assert key not in canon, "same contig emitted on both strands"
            canon.add(key)

    def test_min_length_respected(self, genome_and_graph):
        _, _, graph = genome_and_graph
        for c in generate_contigs(graph, min_length=100):
            assert len(c) >= 100

    def test_two_genomes_two_contigs(self):
        rng = np.random.default_rng(8)
        g1, g2 = simulate_genome(400, rng), simulate_genome(400, rng)
        reads = _coverage_reads(g1, rng)
        for r in _coverage_reads(g2, rng):
            reads.append(r)
        spectrum = count_kmers_filtered(reads, K)
        graph = GlobalDeBruijnGraph(K, spectrum)
        graph.add_reads(reads)
        contigs = [c for c in generate_contigs(graph) if len(c) > 200]
        assert len(contigs) == 2
        sources = set()
        for c in contigs:
            for name, g in (("g1", g1), ("g2", g2)):
                gs = decode(g)
                if c in gs or str(reverse_complement(c)) in gs:
                    sources.add(name)
        assert sources == {"g1", "g2"}
