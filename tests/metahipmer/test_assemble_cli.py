"""The ``repro assemble`` CLI: real subprocesses, real kills.

The acceptance property of the resumable pipeline: a run killed after
any stage checkpoint, re-invoked with ``--resume``, produces final
contigs and per-round statistics byte-identical to an uninterrupted run.
The kill is a hard ``os._exit`` inside the process (via the
``REPRO_ASSEMBLE_CRASH_AFTER`` hook), not a polite exception.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")
SCENARIO = "fork_resolution"  # smallest preset: ~77 reads, 2 rounds


def run_cli(args, tmp, crash_after=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_ASSEMBLE_CRASH_AFTER", None)
    if crash_after is not None:
        env["REPRO_ASSEMBLE_CRASH_AFTER"] = crash_after
    return subprocess.run(
        [sys.executable, "-m", "repro", "assemble", *args],
        cwd=tmp, env=env, capture_output=True, text=True, timeout=120)


def assemble_args(tmp, tag, checkpoint=None, resume=False):
    args = ["--scenario", SCENARIO,
            "--output", f"{tag}.fa", "--stats", f"{tag}.json"]
    if checkpoint:
        args += ["--checkpoint-dir", checkpoint]
    if resume:
        args += ["--resume"]
    return args


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted run; its outputs are the reference bytes."""
    tmp = tmp_path_factory.mktemp("baseline")
    proc = run_cli(assemble_args(tmp, "ref"), tmp)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return ((tmp / "ref.fa").read_bytes(), (tmp / "ref.json").read_bytes(),
            proc.stdout)


class TestResumeEqualsUninterrupted:
    @pytest.mark.parametrize("crash_after", [
        "21:kmers",    # earliest possible interruption
        "21:merge",    # round boundary: carried contigs must survive
        "33:align",    # mid-round, after expensive stages
        "33:extend",   # one stage before the finish line
    ])
    def test_kill_then_resume_is_byte_identical(self, tmp_path, baseline,
                                                crash_after):
        ref_fa, ref_json, _ = baseline
        crashed = run_cli(assemble_args(tmp_path, "out", checkpoint="ck"),
                          tmp_path, crash_after=crash_after)
        assert crashed.returncode == 137, crashed.stdout + crashed.stderr
        assert "injected crash" in crashed.stderr
        assert not (tmp_path / "out.fa").exists()  # died before output

        resumed = run_cli(
            assemble_args(tmp_path, "out", checkpoint="ck", resume=True),
            tmp_path)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        k, stage = crash_after.split(":")
        assert f"[assemble] k={k} {stage}: resumed" in resumed.stdout
        assert (tmp_path / "out.fa").read_bytes() == ref_fa
        assert (tmp_path / "out.json").read_bytes() == ref_json

    def test_resume_skips_all_completed_stages(self, tmp_path, baseline):
        ref_fa, _, ref_stdout = baseline
        first = run_cli(assemble_args(tmp_path, "a", checkpoint="ck"),
                        tmp_path)
        assert first.returncode == 0
        again = run_cli(assemble_args(tmp_path, "b", checkpoint="ck",
                                      resume=True), tmp_path)
        assert again.returncode == 0
        assert again.stdout.count(": resumed") == ref_stdout.count(": done")
        assert (tmp_path / "b.fa").read_bytes() == ref_fa


class TestMetagenomeAcceptance:
    def test_metagenome_kill_resume_byte_identical(self, tmp_path):
        """The issue's acceptance run, verbatim: the metagenome preset,
        killed mid-run, resumed, compared byte-for-byte."""
        args = ["--scenario", "metagenome", "--output", "out.fa",
                "--stats", "out.json"]
        ref = run_cli(args, tmp_path)
        assert ref.returncode == 0, ref.stdout + ref.stderr
        ref_fa = (tmp_path / "out.fa").read_bytes()
        ref_json = (tmp_path / "out.json").read_bytes()

        ck_args = args + ["--checkpoint-dir", "ck"]
        crashed = run_cli(ck_args, tmp_path, crash_after="33:contigs")
        assert crashed.returncode == 137
        resumed = run_cli(ck_args + ["--resume"], tmp_path)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "[assemble] k=33 contigs: resumed" in resumed.stdout
        assert (tmp_path / "out.fa").read_bytes() == ref_fa
        assert (tmp_path / "out.json").read_bytes() == ref_json


class TestCliContract:
    def test_resume_requires_checkpoint_dir(self, tmp_path):
        proc = run_cli(["--scenario", SCENARIO, "--resume"], tmp_path)
        assert proc.returncode == 2
        assert "--checkpoint-dir" in proc.stderr

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path, baseline):
        """Without --resume an existing checkpoint dir is cleared, not
        silently reused."""
        ref_fa, _, _ = baseline
        run_cli(assemble_args(tmp_path, "a", checkpoint="ck"), tmp_path)
        fresh = run_cli(assemble_args(tmp_path, "b", checkpoint="ck"),
                        tmp_path)
        assert fresh.returncode == 0
        assert ": resumed" not in fresh.stdout
        assert (tmp_path / "b.fa").read_bytes() == ref_fa

    def test_missing_fastq_is_a_one_line_error(self, tmp_path):
        proc = run_cli(["--reads", "missing.fastq"], tmp_path)
        assert proc.returncode == 1
        assert "cannot read missing.fastq" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_fastq_input_roundtrip(self, tmp_path):
        """--reads consumes a FASTQ written from the same scenario and
        reaches the same assembly."""
        sys.path.insert(0, SRC)
        try:
            from repro.datasets.scenarios import get_scenario
            from repro.genomics.io import write_fastq
        finally:
            sys.path.pop(0)
        sc = get_scenario(SCENARIO)
        write_fastq(sc.build().reads, tmp_path / "in.fastq")
        proc = run_cli(["--reads", "in.fastq", "--min-count", "1",
                        "--output", "out.fa", "--stats", "out.json"],
                       tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "-> 1 contigs" in proc.stdout
