"""Tests for the Smith-Waterman aligners (reference + banded wavefront)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.genomics.dna import decode, random_sequence
from repro.metahipmer.smith_waterman import (
    BandedAligner,
    LocalAlignment,
    smith_waterman,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestReference:
    def test_identical_sequences(self):
        a = smith_waterman("GATTACA", "GATTACA")
        assert a.score == 7
        assert (a.query_start, a.query_end) == (0, 6)
        assert (a.target_start, a.target_end) == (0, 6)

    def test_exact_substring(self):
        a = smith_waterman("TACA", "GATTACAGG")
        assert a.score == 4
        assert (a.target_start, a.target_end) == (3, 6)
        assert a.query_span == a.target_span == 4

    def test_mismatch_scoring(self):
        # ACGT vs ACTT: best local is AC (2) or ...T? match2+mismatch-3+match1=0
        a = smith_waterman("ACGT", "ACTT")
        assert a.score == 2

    def test_gap_scoring(self):
        # deletion of one base: AACCTT vs AACTT
        a = smith_waterman("AACCTT", "AACTT")
        # alignment AAC-TT: 5 matches + 1 gap = 5 - 3 = 2... or local AAC (3)
        # plus TT (2) separated: best single local = max(3, 2, 5-3)
        assert a.score == 3

    def test_no_similarity(self):
        a = smith_waterman("AAAA", "CCCC")
        assert a.score == 0

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            smith_waterman("", "ACGT")

    @given(dna)
    def test_self_alignment_is_length(self, s):
        assert smith_waterman(s, s).score == len(s)

    @given(dna, dna)
    def test_symmetry_of_score(self, a, b):
        assert smith_waterman(a, b).score == smith_waterman(b, a).score

    @given(dna, dna)
    def test_score_bounded_by_shorter(self, a, b):
        assert 0 <= smith_waterman(a, b).score <= min(len(a), len(b))

    def test_spans_property(self):
        a = LocalAlignment(5, 2, 6, 10, 14)
        assert a.query_span == 5 and a.target_span == 5


class TestBanded:
    def test_matches_reference_identical(self):
        out = BandedAligner().align("GATTACAGATTACA", "GATTACAGATTACA")
        assert out.score == 14
        assert out.query_end == 13 and out.target_end == 13

    def test_matches_reference_with_errors(self):
        rng = np.random.default_rng(0)
        t = decode(random_sequence(80, rng))
        q = list(t[10:60])
        q[20] = "A" if q[20] != "A" else "C"  # one substitution
        q = "".join(q)
        ref = smith_waterman(q, t)
        banded = BandedAligner(band=16).align(q, t, diag_offset=10)
        assert banded.score == ref.score
        assert banded.target_end == ref.target_end

    def test_handles_indel_within_band(self):
        rng = np.random.default_rng(1)
        t = decode(random_sequence(60, rng))
        q = t[5:25] + t[26:50]  # one deletion
        ref = smith_waterman(q, t)
        banded = BandedAligner(band=8).align(q, t, diag_offset=5)
        assert banded.score == ref.score

    def test_diag_offset_required_for_shifted_match(self):
        rng = np.random.default_rng(2)
        t = decode(random_sequence(100, rng))
        q = t[60:90]
        centered = BandedAligner(band=4).align(q, t, diag_offset=60)
        off = BandedAligner(band=4).align(q, t, diag_offset=0)
        assert centered.score == 30
        assert off.score < 30  # match lies outside the unshifted band

    def test_rejects_bad_band(self):
        with pytest.raises(SequenceError):
            BandedAligner(band=0)

    def test_rejects_empty(self):
        with pytest.raises(SequenceError):
            BandedAligner().align("", "ACGT")

    @settings(max_examples=40, deadline=None)
    @given(dna, dna)
    def test_wide_band_equals_reference(self, q, t):
        """Property: with a band covering the whole matrix, the wavefront
        implementation computes exactly the reference score."""
        band = len(q) + len(t) + 1
        ref = smith_waterman(q, t)
        got = BandedAligner(band=band).align(q, t)
        assert got.score == ref.score

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_read_to_contig_use_case(self, seed):
        """Seeded banded alignment recovers noisy read placements."""
        rng = np.random.default_rng(seed)
        t = decode(random_sequence(200, rng))
        start = int(rng.integers(0, 100))
        q = t[start : start + 80]
        got = BandedAligner(band=8).align(q, t, diag_offset=start)
        assert got.score == 80
        assert got.target_end == start + 79
