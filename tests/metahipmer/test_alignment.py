"""Tests for the read-to-contig aligner and end assignment."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.genomics.contig import Contig, End
from repro.genomics.dna import decode, reverse_complement
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import PERFECT_READS, sequence_read, simulate_genome
from repro.metahipmer.alignment import ReadAligner, assign_reads_to_ends


@pytest.fixture
def contig_and_genome():
    rng = np.random.default_rng(2)
    genome = simulate_genome(800, rng)
    contig = Contig(name="c0", codes=genome[100:700].copy())
    return genome, contig, rng


class TestAligner:
    def test_exact_interior_alignment(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        read = sequence_read(genome, 300, 100, rng, PERFECT_READS)
        hit = ReadAligner([contig]).align(read)
        assert hit is not None
        assert hit.position == 200  # genome 300 - contig offset 100
        assert not hit.reverse
        assert hit.mismatches == 0
        assert hit.identity == 1.0

    def test_reverse_strand_alignment(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        fwd = sequence_read(genome, 300, 100, rng, PERFECT_READS)
        rc_read = Read(name="rc", codes=reverse_complement(fwd.codes),
                       quals=fwd.quals[::-1].copy())
        hit = ReadAligner([contig]).align(rc_read)
        assert hit is not None and hit.reverse
        assert hit.position == 200

    def test_overhanging_read_negative_position(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        read = sequence_read(genome, 60, 100, rng, PERFECT_READS)
        hit = ReadAligner([contig]).align(read)
        assert hit is not None
        assert hit.position == -40
        assert hit.overlap == 60

    def test_mismatches_tolerated(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        read = sequence_read(genome, 300, 100, rng, PERFECT_READS)
        read.codes[50] = (read.codes[50] + 1) % 4
        hit = ReadAligner([contig]).align(read)
        assert hit is not None and hit.mismatches == 1

    def test_unrelated_read_unaligned(self, contig_and_genome):
        _, contig, rng = contig_and_genome
        noise = Read(name="x", codes=simulate_genome(100, np.random.default_rng(99)),
                     quals=np.full(100, 40, dtype=np.uint8))
        assert ReadAligner([contig]).align(noise) is None

    def test_multi_contig_picks_right_target(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        other = Contig(name="c1", codes=simulate_genome(400, np.random.default_rng(7)))
        read = sequence_read(genome, 300, 100, rng, PERFECT_READS)
        hit = ReadAligner([other, contig]).align(read)
        assert hit.contig_index == 1

    def test_rejects_bad_seed_len(self, contig_and_genome):
        _, contig, _ = contig_and_genome
        with pytest.raises(SequenceError):
            ReadAligner([contig], seed_len=0)


class TestEndClassification:
    def test_left_overhang(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        aligner = ReadAligner([contig])
        read = sequence_read(genome, 60, 100, rng, PERFECT_READS)
        hit = aligner.align(read)
        assert aligner.classify_end(hit, 100) is End.LEFT

    def test_right_overhang(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        aligner = ReadAligner([contig])
        read = sequence_read(genome, 650, 100, rng, PERFECT_READS)
        hit = aligner.align(read)
        assert aligner.classify_end(hit, 100) is End.RIGHT

    def test_interior_is_none(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        aligner = ReadAligner([contig])
        read = sequence_read(genome, 350, 100, rng, PERFECT_READS)
        hit = aligner.align(read)
        assert aligner.classify_end(hit, 100) is None


class TestAssignment:
    def test_assignment_populates_hints(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        reads = ReadSet()
        for i, start in enumerate((40, 80, 350, 640, 680)):
            reads.append(sequence_read(genome, start, 100, rng, PERFECT_READS,
                                       name=f"r{i}"))
        stats = assign_reads_to_ends([contig], reads)
        assert stats["aligned"] == 5
        assert stats["interior"] == 1
        assert stats["assigned"] == 4
        assert len(contig.reads) == 4
        assert contig.read_end_hints.count(End.LEFT) == 2
        assert contig.read_end_hints.count(End.RIGHT) == 2

    def test_reverse_reads_stored_forward(self, contig_and_genome):
        genome, contig, rng = contig_and_genome
        fwd = sequence_read(genome, 40, 100, rng, PERFECT_READS, name="f")
        rc = Read(name="rc", codes=reverse_complement(fwd.codes),
                  quals=fwd.quals[::-1].copy())
        assign_reads_to_ends([contig], ReadSet([rc]))
        assert len(contig.reads) == 1
        # stored read matches the contig orientation
        np.testing.assert_array_equal(contig.reads[0].codes, fwd.codes)

    def test_assignment_feeds_local_assembly(self, contig_and_genome):
        """End-assigned reads let the kernel extend the contig correctly."""
        genome, contig, rng = contig_and_genome
        reads = ReadSet()
        for i in range(30):
            start = int(rng.integers(0, len(genome) - 100))
            reads.append(sequence_read(genome, start, 100, rng, PERFECT_READS,
                                       name=f"r{i}"))
        assign_reads_to_ends([contig], reads)
        from repro.core.extension import PRODUCTION_POLICY
        from repro.kernels import CudaLocalAssemblyKernel
        from repro.simt.device import A100

        res = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY).run(
            [contig], 21)
        right, _ = res.right[0]
        left, _ = res.left[0]
        truth = decode(genome)
        assert (left + contig.sequence + right) in truth
