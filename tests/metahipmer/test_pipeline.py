"""End-to-end tests for the de novo assembly pipeline."""

import numpy as np
import pytest

from repro.errors import KmerError
from repro.genomics.dna import decode, reverse_complement
from repro.genomics.reads import ReadSet
from repro.genomics.simulate import ErrorProfile, PERFECT_READS, sequence_read, simulate_genome
from repro.metahipmer.pipeline import DeNovoAssembler, n50


class TestN50:
    def test_single(self):
        assert n50([100]) == 100

    def test_empty(self):
        assert n50([]) == 0

    def test_standard_example(self):
        # total 100; half = 50; cumulative 40, 70 -> N50 = 30
        assert n50([40, 30, 20, 10]) == 30

    def test_order_independent(self):
        assert n50([10, 40, 20, 30]) == n50([40, 30, 20, 10])


def _metagenome_reads(rng, genome_lens=(1200, 800), depth=8, read_len=100,
                      profile=PERFECT_READS):
    genomes = [simulate_genome(n, rng) for n in genome_lens]
    reads = ReadSet()
    i = 0
    for g in genomes:
        for _ in range(int(len(g) * depth / read_len)):
            s = int(rng.integers(0, len(g) - read_len + 1))
            reads.append(sequence_read(g, s, read_len, rng, profile,
                                       name=f"r{i}"))
            i += 1
    return genomes, reads


class TestDeNovoAssembler:
    def test_rejects_bad_schedule(self):
        with pytest.raises(KmerError):
            DeNovoAssembler(k_schedule=())
        with pytest.raises(KmerError):
            DeNovoAssembler(k_schedule=(33, 21))

    def test_perfect_reads_reconstruct_genomes(self):
        rng = np.random.default_rng(1)
        genomes, reads = _metagenome_reads(rng)
        result = DeNovoAssembler(k_schedule=(21,)).assemble(reads)
        assert result.rounds
        truth = [decode(g) for g in genomes]
        for c in result.contigs:
            seq = c.extended_sequence()
            rc = reverse_complement(seq)
            assert any(seq in t or rc in t for t in truth)
        # most of each genome recovered
        assert sum(len(c) for c in result.contigs) > 0.8 * sum(map(len, genomes))

    def test_local_assembly_extends_contigs(self):
        rng = np.random.default_rng(2)
        _, reads = _metagenome_reads(rng)
        result = DeNovoAssembler(k_schedule=(21,)).assemble(reads)
        assert result.rounds[-1].extension_bases > 0
        assert result.final_n50 >= result.rounds[-1].n50

    def test_noisy_reads_still_assemble(self):
        rng = np.random.default_rng(3)
        genomes, reads = _metagenome_reads(
            rng, profile=ErrorProfile(error_rate=0.003))
        result = DeNovoAssembler(k_schedule=(21,)).assemble(reads)
        assert result.contigs
        truth = [decode(g) for g in genomes]

        # Final contigs fold local-assembly extensions in, and with noisy
        # reads an extension can carry an error base — so require that the
        # bulk of each contig is an exact match to some genome rather than
        # the whole merged sequence.
        from difflib import SequenceMatcher

        def match_fraction(seq):
            best = 0
            for cand in (seq, str(reverse_complement(seq))):
                for t in truth:
                    m = SequenceMatcher(None, cand, t, autojunk=False)
                    best = max(best, m.find_longest_match().size)
            return best / len(seq)

        matching = sum(1 for c in result.contigs
                       if match_fraction(c.sequence) >= 0.9)
        assert matching >= 0.7 * len(result.contigs)

    def test_iterative_schedule_records_rounds(self):
        rng = np.random.default_rng(4)
        _, reads = _metagenome_reads(rng, genome_lens=(600,))
        result = DeNovoAssembler(k_schedule=(21, 33)).assemble(reads)
        assert [r.k for r in result.rounds] == [21, 33]
        for r in result.rounds:
            assert r.solid_kmers > 0
            assert r.mean_contig_length > 0

    def test_gpu_kernel_backend(self):
        """The pipeline can run its local-assembly phase on a simulated GPU."""
        from repro.core.extension import PRODUCTION_POLICY
        from repro.kernels import HipLocalAssemblyKernel
        from repro.simt.device import MI250X

        rng = np.random.default_rng(5)
        genomes, reads = _metagenome_reads(rng, genome_lens=(700,))
        kern = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY)
        result = DeNovoAssembler(k_schedule=(21,), kernel=kern).assemble(reads)
        assert result.contigs
        truth = decode(genomes[0])
        for c in result.contigs:
            seq = c.extended_sequence()
            assert seq in truth or str(reverse_complement(seq)) in truth
