"""The stage registry: payload round-trips, feed-forward mechanics,
kernel/CPU local-assembly parity, and n50 properties."""

import copy

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.reads import MAX_PHRED, ReadSet
from repro.genomics.simulate import PERFECT_READS, sequence_read, simulate_genome
from repro.metahipmer.pipeline import DeNovoAssembler
from repro.metahipmer.stages import (
    STAGE_ORDER,
    STAGES,
    RoundState,
    carry_forward_reads,
    n50,
)


def _reads(rng, genome, read_len=70, step=12):
    out = ReadSet()
    starts = list(range(0, len(genome) - read_len + 1, step))
    starts.append(len(genome) - read_len)
    for i, s in enumerate(sorted(set(starts))):
        out.append(sequence_read(genome, s, read_len, rng, PERFECT_READS,
                                 name=f"r{i}"))
    return out


@pytest.fixture(scope="module")
def small_input():
    rng = np.random.default_rng(42)
    genome = simulate_genome(600, rng)
    return genome, _reads(rng, genome)


class TestRegistry:
    def test_order_and_names(self):
        assert STAGE_ORDER == ("kmers", "contigs", "align", "extend", "merge")
        assert set(STAGES) == set(STAGE_ORDER)
        for name, stage in STAGES.items():
            assert stage.name == name


class TestCarryForward:
    def test_empty_carried_is_identity(self, small_input):
        _, reads = small_input
        assert carry_forward_reads(reads, [], 2) is reads

    def test_multiplicity_and_quality(self, small_input):
        from repro.genomics.contig import Contig

        _, reads = small_input
        carried = [Contig.from_string("c0", "ACGTACGTACGTACGTACGTA")]
        out = carry_forward_reads(reads, carried, 3)
        pseudo = [r for r in out if r.name.startswith("__carry/")]
        assert len(pseudo) == 3
        assert len(out) == len(reads) + 3
        for r in pseudo:
            assert r.sequence == "ACGTACGTACGTACGTACGTA"
            assert (r.quals == MAX_PHRED).all()
        # the input set is never mutated
        assert not any(r.name.startswith("__carry/") for r in reads)

    def test_copies_floor_is_one(self, small_input):
        from repro.genomics.contig import Contig

        _, reads = small_input
        out = carry_forward_reads(reads, [Contig.from_string("c", "ACGT")], 0)
        assert sum(r.name.startswith("__carry/") for r in out) == 1


class TestPayloadRoundTrips:
    """run() on one state, restore() into a fresh one: equal results.

    Payloads also survive JSON (what CheckpointStore actually persists).
    """

    def _run_until(self, asm, state, last):
        import json

        payloads = {}
        for name in STAGE_ORDER:
            payloads[name] = json.loads(json.dumps(
                STAGES[name].run(asm, state)))
            if name == last:
                break
        return payloads

    def test_every_stage_restores(self, small_input):
        _, reads = small_input
        asm = DeNovoAssembler(k_schedule=(21,))
        computed = RoundState(k=21, reads=reads)
        payloads = self._run_until(asm, computed, "merge")

        restored = RoundState(k=21, reads=reads)
        for name in STAGE_ORDER:
            STAGES[name].restore(asm, restored, payloads[name])

        assert restored.spectrum.counts == computed.spectrum.counts
        assert restored.spectrum.singletons_dropped == \
            computed.spectrum.singletons_dropped
        assert [c.sequence for c in restored.contigs] == \
            [c.sequence for c in computed.contigs]
        assert restored.align_stats == computed.align_stats
        for a, b in zip(restored.contigs, computed.contigs):
            assert [r.sequence for r in a.reads] == \
                [r.sequence for r in b.reads]
            assert a.read_end_hints == b.read_end_hints
            assert a.extended_sequence() == b.extended_sequence()
        assert restored.extension_bases == computed.extension_bases
        assert [c.sequence for c in restored.merged] == \
            [c.sequence for c in computed.merged]
        assert restored.stats == computed.stats


class TestKernelParity:
    def test_kernel_and_cpu_agree_on_extension_bases(self, small_input):
        """The simulated-GPU kernel and the CPU pipeline must walk the
        same extensions when driven through ``_local_assembly``."""
        from repro.kernels import HipLocalAssemblyKernel
        from repro.simt.device import MI250X

        _, reads = small_input
        cpu_asm = DeNovoAssembler(k_schedule=(21,))
        state = RoundState(k=21, reads=reads)
        for name in ("kmers", "contigs", "align"):
            STAGES[name].run(cpu_asm, state)
        assert state.contigs

        gpu_contigs = copy.deepcopy(state.contigs)
        cpu_total = cpu_asm._local_assembly(state.contigs, 21)

        kern = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY)
        gpu_asm = DeNovoAssembler(k_schedule=(21,), kernel=kern)
        gpu_total = gpu_asm._local_assembly(gpu_contigs, 21)

        assert cpu_total == gpu_total
        for c_cpu, c_gpu in zip(state.contigs, gpu_contigs):
            assert c_cpu.left_extension.bases == c_gpu.left_extension.bases
            assert c_cpu.right_extension.bases == c_gpu.right_extension.bases
            assert c_cpu.extended_sequence() == c_gpu.extended_sequence()


class TestN50Properties:
    def test_empty(self):
        assert n50([]) == 0

    def test_single(self):
        assert n50([7]) == 7

    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=1, max_value=50))
    def test_all_equal(self, length, count):
        assert n50([length] * count) == length

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1))
    def test_result_is_a_member(self, lengths):
        assert n50(lengths) in lengths

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1),
           st.randoms())
    def test_permutation_invariant(self, lengths, rnd):
        shuffled = list(lengths)
        rnd.shuffle(shuffled)
        assert n50(lengths) == n50(shuffled)

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1))
    def test_at_least_half_mass_above(self, lengths):
        value = n50(lengths)
        above = sum(x for x in lengths if x >= value)
        assert above >= sum(lengths) / 2
