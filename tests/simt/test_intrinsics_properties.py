"""Property tests: every vectorized intrinsic vs a scalar per-warp loop.

Each warp intrinsic is emulated with one NumPy call over flat lane
arrays. These tests re-derive the same answer with the obvious scalar
loop — iterate the warps, iterate the lanes — and require bit-identical
results under hypothesis-generated lane layouts, plus the pinned corner
cases the vectorized paths are most likely to get wrong: empty input, a
single lane, all-equal values, and multi-warp interleavings.
"""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.simt.intrinsics import (
    all_sync,
    any_sync,
    ballot_count_sync,
    elect_one_per_slot,
    match_any_sync,
    shfl_sync,
)

N_WARPS = 4

#: (warp_id, value, predicate) per lane — warps interleave freely.
lanes_st = st.lists(
    st.tuples(st.integers(0, N_WARPS - 1), st.integers(0, 5), st.booleans()),
    min_size=0, max_size=48,
)

#: Pinned corner cases: empty, single lane, all-equal values, multi-warp.
EXAMPLES = [
    [],
    [(0, 3, True)],
    [(1, 2, False)],
    [(0, 4, True), (0, 4, True), (0, 4, False), (0, 4, True)],
    [(w, 1, True) for w in range(N_WARPS) for _ in range(3)],
    [(0, 0, True), (3, 0, True), (0, 0, False), (3, 5, True), (1, 0, True)],
]


def _split(lanes):
    warps = np.array([t[0] for t in lanes], dtype=np.int64)
    vals = np.array([t[1] for t in lanes], dtype=np.int64)
    preds = np.array([t[2] for t in lanes], dtype=bool)
    return warps, vals, preds


def _examples(fn):
    for ex in EXAMPLES:
        fn = example(ex)(fn)
    return fn


class TestMatchAnyProperty:
    @settings(max_examples=60)
    @_examples
    @given(lanes_st)
    def test_matches_scalar_reference(self, lanes):
        warps, vals, _ = _split(lanes)
        got = match_any_sync(warps, vals)
        want = np.empty(len(lanes), dtype=np.int64)
        for i, (w, v, _p) in enumerate(lanes):
            want[i] = next(j for j, (wj, vj, _pj) in enumerate(lanes)
                           if wj == w and vj == v)
        np.testing.assert_array_equal(got, want)


class TestBallotCountProperty:
    @settings(max_examples=60)
    @_examples
    @given(lanes_st)
    def test_matches_scalar_reference(self, lanes):
        warps, _, preds = _split(lanes)
        got = ballot_count_sync(warps, preds, N_WARPS)
        want = np.zeros(N_WARPS, dtype=np.int64)
        for w, _v, p in lanes:
            want[w] += bool(p)
        np.testing.assert_array_equal(got, want)


class TestAllAnyProperty:
    @settings(max_examples=60)
    @_examples
    @given(lanes_st)
    def test_all_sync_matches_scalar_reference(self, lanes):
        warps, _, preds = _split(lanes)
        got = all_sync(warps, preds, N_WARPS)
        want = np.array([all(p for w, _v, p in lanes if w == warp)
                         for warp in range(N_WARPS)])
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=60)
    @_examples
    @given(lanes_st)
    def test_any_sync_matches_scalar_reference(self, lanes):
        warps, _, preds = _split(lanes)
        got = any_sync(warps, preds, N_WARPS)
        want = np.array([any(p for w, _v, p in lanes if w == warp)
                         for warp in range(N_WARPS)])
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=60)
    @_examples
    @given(lanes_st)
    def test_all_and_any_are_de_morgan_duals(self, lanes):
        warps, _, preds = _split(lanes)
        # warps with no lanes are vacuous on both sides: True/False
        np.testing.assert_array_equal(
            ~all_sync(warps, ~preds, N_WARPS),
            any_sync(warps, preds, N_WARPS),
        )


class TestShuffleProperty:
    @settings(max_examples=60)
    @_examples
    @given(lanes_st)
    def test_matches_scalar_reference(self, lanes):
        warps, _, _ = _split(lanes)
        warp_values = np.arange(100, 100 + N_WARPS)
        got = shfl_sync(warp_values, None, warps)
        want = np.array([100 + w for w, _v, _p in lanes], dtype=np.int64)
        np.testing.assert_array_equal(got, want)


class TestElectProperty:
    @settings(max_examples=60)
    @_examples
    @given(lanes_st)
    def test_matches_scalar_reference(self, lanes):
        # reuse the (warp, value) pair as a globally unique slot id
        slots = np.array([w * 1000 + v for w, v, _p in lanes], dtype=np.int64)
        got = elect_one_per_slot(slots)
        seen = set()
        want = np.zeros(len(lanes), dtype=bool)
        for i, s in enumerate(slots):
            if int(s) not in seen:
                seen.add(int(s))
                want[i] = True
        np.testing.assert_array_equal(got, want)
