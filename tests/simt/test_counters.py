"""Tests for KernelProfile counters and derived metrics."""

import pytest

from repro.errors import ModelError
from repro.simt.counters import KernelProfile


def _profile(**kw):
    p = KernelProfile()
    for k, v in kw.items():
        setattr(p, k, v)
    return p


class TestDerived:
    def test_gintops(self):
        assert _profile(intops=2_500_000_000).gintops == 2.5

    def test_intensity(self):
        p = _profile(intops=1000, hbm_bytes=500.0)
        assert p.intop_intensity == 2.0

    def test_intensity_requires_bytes(self):
        with pytest.raises(ModelError):
            _ = _profile(intops=10).intop_intensity

    def test_gintops_per_second(self):
        p = _profile(intops=2_000_000_000, seconds=0.5)
        assert p.gintops_per_second == 4.0

    def test_gintops_per_second_requires_time(self):
        with pytest.raises(ModelError):
            _ = _profile(intops=10).gintops_per_second

    def test_active_lane_fraction(self):
        p = _profile(warp_instructions=100, lane_instructions=1600, warp_size=32)
        assert p.active_lane_fraction == 0.5

    def test_active_lane_fraction_empty(self):
        assert KernelProfile().active_lane_fraction == 0.0

    def test_mean_insert_probes(self):
        p = _profile(inserts=10, insert_probe_iterations=15)
        assert p.mean_insert_probes == 1.5

    def test_cache_hit_fraction(self):
        p = _profile(l1_hit_bytes=60.0, l2_hit_bytes=20.0, hbm_bytes=20.0)
        assert p.cache_hit_fraction == pytest.approx(0.8)


class TestMerge:
    def test_merge_accumulates(self):
        a = _profile(intops=10, inserts=2, hbm_bytes=5.0, walk_chain_cycles=1.0)
        b = _profile(intops=20, inserts=3, hbm_bytes=7.0, walk_chain_cycles=2.0)
        a.merge(b)
        assert a.intops == 30
        assert a.inserts == 5
        assert a.hbm_bytes == 12.0
        assert a.walk_chain_cycles == 3.0

    def test_merge_rejects_mixed_warp_sizes(self):
        a = _profile(warp_instructions=5, warp_size=32)
        b = _profile(warp_instructions=5, warp_size=64)
        with pytest.raises(ModelError):
            a.merge(b)

    def test_merge_adopts_warp_size_when_fresh(self):
        a = KernelProfile(warp_size=32)
        b = _profile(warp_instructions=5, warp_size=64)
        a.merge(b)
        assert a.warp_size == 64
