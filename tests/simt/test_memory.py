"""Tests for the analytic cache model and the trace-driven cache sim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.simt.device import A100, MI250X, CacheSpec
from repro.simt.memory import (
    STREAM_L1_HIT,
    AccessCategory,
    AnalyticCacheModel,
    CacheSim,
)


def _cat(**kw):
    defaults = dict(name="t", accesses=1000, bytes_per_access=16.0,
                    working_set_per_warp=1024.0, pattern="random")
    defaults.update(kw)
    return AccessCategory(**defaults)


class TestAccessCategory:
    def test_rejects_bad_pattern(self):
        with pytest.raises(ModelError):
            _cat(pattern="zigzag")

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            _cat(accesses=-1)


class TestAnalyticModel:
    def test_small_working_set_hits_l1(self):
        model = AnalyticCacheModel(A100, warps_in_flight=1)
        l1, _ = model.hit_rates(_cat(working_set_per_warp=1024.0))
        assert l1 == 1.0

    def test_large_working_set_misses(self):
        model = AnalyticCacheModel(A100, warps_in_flight=A100.total_resident_warps)
        l1, l2 = model.hit_rates(_cat(working_set_per_warp=1_000_000.0))
        assert l1 < 0.01
        assert l2 < 0.1

    def test_atomics_bypass_l1(self):
        model = AnalyticCacheModel(A100, warps_in_flight=1)
        l1, l2 = model.hit_rates(_cat(atomic=True, working_set_per_warp=64.0))
        assert l1 == 0.0
        assert l2 == 1.0  # tiny working set lives in L2

    def test_stream_hits(self):
        model = AnalyticCacheModel(A100, warps_in_flight=1000)
        l1, _ = model.hit_rates(_cat(pattern="stream",
                                     working_set_per_warp=1e9))
        assert l1 == STREAM_L1_HIT

    def test_bigger_l2_hits_more(self):
        """The paper's core cache story: Intel-sized L2 beats AMD-sized L2."""
        cat = _cat(working_set_per_warp=40_000.0, atomic=True)
        amd = AnalyticCacheModel(MI250X, warps_in_flight=2000)
        intel_like = AnalyticCacheModel(
            MI250X.with_(l2=CacheSpec(204 * 1024 * 1024, 64, 220)),
            warps_in_flight=2000,
        )
        assert intel_like.hit_rates(cat)[1] > amd.hit_rates(cat)[1]

    def test_traffic_accumulates_per_category(self):
        model = AnalyticCacheModel(A100, warps_in_flight=100)
        traffic = model.traffic([_cat(name="a"), _cat(name="b")])
        assert set(traffic.by_category) == {"a", "b"}
        assert traffic.total_accessed_bytes > 0

    def test_compulsory_floor(self):
        model = AnalyticCacheModel(A100, warps_in_flight=1)
        # everything hits caches, but the cold footprint must still move
        traffic = model.traffic([_cat(working_set_per_warp=64.0)],
                                cold_footprint_bytes=1e6)
        assert traffic.hbm_bytes == 1e6
        assert traffic.by_category["compulsory"] > 0

    def test_writes_double_hbm_cost(self):
        model = AnalyticCacheModel(A100, warps_in_flight=A100.total_resident_warps)
        big = 10_000_000.0
        r = model.traffic([_cat(working_set_per_warp=big)])
        w = model.traffic([_cat(working_set_per_warp=big, writes=True)])
        assert w.hbm_bytes == pytest.approx(2 * r.hbm_bytes)

    def test_l2_churn_reduces_hits(self):
        cat = _cat(working_set_per_warp=30_000.0)
        base = AnalyticCacheModel(A100, warps_in_flight=2000, l2_churn=1.0)
        churned = AnalyticCacheModel(A100, warps_in_flight=2000, l2_churn=8.0)
        assert churned.hit_rates(cat)[1] < base.hit_rates(cat)[1]

    def test_rejects_bad_args(self):
        with pytest.raises(ModelError):
            AnalyticCacheModel(A100, warps_in_flight=0)
        with pytest.raises(ModelError):
            AnalyticCacheModel(A100, warps_in_flight=1, l2_churn=0.5)

    def test_transactions_round_to_lines(self):
        """A 1-byte miss still moves a whole line/sector."""
        model = AnalyticCacheModel(A100, warps_in_flight=A100.total_resident_warps)
        tiny = model.traffic([_cat(bytes_per_access=1.0,
                                   working_set_per_warp=1e9, accesses=100)])
        assert tiny.hbm_bytes >= 100 * A100.l2.line_bytes * 0.9


class TestCacheSim:
    def _spec(self, size=1024, line=64):
        return CacheSpec(size_bytes=size, line_bytes=line, latency_cycles=10)

    def test_cold_miss_then_hit(self):
        sim = CacheSim(self._spec())
        assert sim.access(0) is False
        assert sim.access(0) is True
        assert sim.access(63) is True  # same line
        assert sim.access(64) is False  # next line

    def test_capacity_eviction(self):
        sim = CacheSim(self._spec(size=256, line=64), ways=4)  # 4 lines, 1 set
        for a in range(0, 5 * 64, 64):
            sim.access(a)
        assert sim.access(0) is False  # LRU-evicted

    def test_lru_order(self):
        sim = CacheSim(self._spec(size=256, line=64), ways=4)
        for a in (0, 64, 128, 192):
            sim.access(a)
        sim.access(0)        # refresh line 0
        sim.access(256)      # evicts line 64 (LRU), not line 0
        assert sim.access(0) is True
        assert sim.access(64) is False

    def test_hit_rate_and_reset(self):
        sim = CacheSim(self._spec())
        sim.access_trace(np.array([0, 0, 0, 64]))
        assert sim.hit_rate == pytest.approx(0.5)
        sim.reset_stats()
        assert sim.hits == sim.misses == 0

    def test_rejects_tiny_cache(self):
        with pytest.raises(ModelError):
            CacheSim(self._spec(size=64, line=64), ways=8)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    def test_repeat_trace_all_hits(self, addrs):
        """Property: replaying a trace that fits in cache hits 100%."""
        unique_lines = {a // 64 for a in addrs}
        if len(unique_lines) > 8:
            return
        sim = CacheSim(self._spec(size=64 * 64), ways=64)
        sim.access_trace(np.array(addrs))
        sim.reset_stats()
        hits = sim.access_trace(np.array(addrs))
        assert hits.all()

    def test_validates_analytic_model_direction(self):
        """Trace sim and analytic model agree on which working set misses more."""
        rng = np.random.default_rng(0)
        spec = self._spec(size=8 * 1024, line=64)
        small_ws = rng.integers(0, 4 * 1024, size=4000)
        large_ws = rng.integers(0, 256 * 1024, size=4000)
        sim_small = CacheSim(spec)
        sim_small.access_trace(small_ws)
        sim_large = CacheSim(spec)
        sim_large.access_trace(large_ws)
        assert sim_small.hit_rate > sim_large.hit_rate
        # analytic: min(1, C/W) predicts the same ordering
        assert min(1, 8192 / 4096) > min(1, 8192 / 262144)


class TestCacheHierarchy:
    def _hier(self):
        from repro.simt.device import A100
        from repro.simt.memory import CacheHierarchy

        # shrink caches so eviction is testable
        dev = A100.with_(
            l1=CacheSpec(1024, 64, 10), l2=CacheSpec(8 * 1024, 64, 100)
        )
        return CacheHierarchy(dev)

    def test_levels_in_order(self):
        h = self._hier()
        assert h.access(0) == "hbm"     # cold
        assert h.access(0) == "l1"      # now resident
        h.reset_stats()
        assert h.access(0) == "l1"

    def test_atomic_bypasses_l1(self):
        h = self._hier()
        h.access(0)          # warms L1 and L2
        assert h.access(0, atomic=True) == "l2"

    def test_l2_catches_l1_evictions(self):
        h = self._hier()
        # touch more lines than L1 holds (16) but fewer than L2 (128)
        for a in range(0, 32 * 64, 64):
            h.access(a)
        level = h.access(0)
        assert level == "l2"

    def test_hbm_byte_accounting(self):
        h = self._hier()
        counts = h.access_trace(np.arange(0, 10 * 64, 64))
        assert counts["hbm"] == 10
        assert h.hbm_bytes == 10 * 64

    def test_reset(self):
        h = self._hier()
        h.access_trace(np.arange(0, 640, 64))
        h.reset_stats()
        assert h.hbm_transactions == 0
        assert h.l1.hits == h.l2.hits == 0
