"""Tests for simulated device specs (paper Tables I and III)."""

import pytest

from repro.errors import DeviceError
from repro.simt.device import (
    A100,
    MAX1550,
    MI250X,
    PLATFORMS,
    CacheSpec,
    device_by_name,
)


class TestPaperConstants:
    """The specs must carry the paper's published numbers verbatim."""

    def test_table1_platforms(self):
        assert [d.programming_model for d in PLATFORMS] == ["CUDA", "HIP", "SYCL"]
        assert [d.compiler for d in PLATFORMS] == [
            "CUDA 12.0", "ROCm 5.3.0", "Intel DPC++ 2023",
        ]

    def test_warp_sizes(self):
        assert A100.warp_size == 32
        assert MI250X.warp_size == 64
        assert MAX1550.warp_size == 16

    def test_table3_compute_units(self):
        assert A100.compute_units == 108  # SMs

    def test_table3_caches(self):
        assert A100.l1.size_bytes == 192 * 1024
        assert A100.l2.size_bytes == 40 * 1024 * 1024
        assert MI250X.l2.size_bytes == 8 * 1024 * 1024  # per die (Fig 6 caption)
        assert MAX1550.l2.size_bytes == 204 * 1024 * 1024  # per tile

    def test_figure6_peaks(self):
        assert A100.peak_gintops == 358.0
        assert MI250X.peak_gintops == 374.0
        assert MAX1550.peak_gintops == 105.0
        assert A100.hbm_bw_gbps == 1555.0
        assert MI250X.hbm_bw_gbps == 1600.0
        assert MAX1550.hbm_bw_gbps == pytest.approx(1176.21)

    def test_figure6_machine_balance(self):
        assert A100.machine_balance == pytest.approx(0.23, abs=0.01)
        assert MI250X.machine_balance == pytest.approx(0.23, abs=0.01)
        assert MAX1550.machine_balance == pytest.approx(0.09, abs=0.01)

    def test_nvidia_sector_vs_amd_line(self):
        assert A100.l2.line_bytes == 32
        assert MI250X.l2.line_bytes == 64


class TestApi:
    def test_lookup_by_name(self):
        assert device_by_name("a100") is A100
        assert device_by_name("MI250X") is MI250X

    def test_lookup_unknown(self):
        with pytest.raises(DeviceError, match="unknown device"):
            device_by_name("H100")

    def test_with_override(self):
        small = A100.with_(l2=CacheSpec(1024 * 1024, 32, 200))
        assert small.l2.size_bytes == 1024 * 1024
        assert A100.l2.size_bytes == 40 * 1024 * 1024  # original untouched
        assert small.name == "A100"

    def test_total_resident_warps(self):
        assert A100.total_resident_warps == 108 * 32

    def test_invalid_cache(self):
        with pytest.raises(DeviceError):
            CacheSpec(0, 32, 10)

    def test_invalid_efficiency(self):
        with pytest.raises(DeviceError):
            A100.with_(pipeline_efficiency=0.0)
        with pytest.raises(DeviceError):
            A100.with_(memory_efficiency=1.5)


class TestFullBoard:
    def test_doubles_multi_die_devices(self):
        from repro.simt.device import full_board

        fb = full_board(MI250X)
        assert fb.compute_units == 220
        assert fb.l2.size_bytes == 16 * 1024 * 1024
        assert fb.peak_gintops == 748.0
        assert fb.hbm_bw_gbps == 3200.0
        assert fb.name == "MI250X-full"

    def test_doubles_intel_timing_peak(self):
        from repro.simt.device import full_board

        fb = full_board(MAX1550)
        assert fb.timing_peak_gintops == 2 * MAX1550.timing_peak_gintops

    def test_a100_identity(self):
        from repro.simt.device import full_board

        assert full_board(A100) is A100
