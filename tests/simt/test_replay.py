"""Property tests: batched replay vs the seed scalar cache simulator.

The batched engine (:meth:`CacheSim.replay`, :meth:`CacheHierarchy.replay`)
must agree with the scalar reference path (:meth:`CacheSim.access` /
:meth:`CacheHierarchy.access`) on per-access hit vectors, hit/miss
totals, atomic L1-bypass semantics, and the internal cache state left
behind — across the associativities, set counts, and line sizes of all
three modeled devices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.simt.device import A100, MAX1550, MI250X, CacheSpec
from repro.simt.memory import (
    REPLAY_LEVELS,
    CacheHierarchy,
    CacheSim,
    implied_l2_churn,
)

#: (size, line, ways) grid spanning the three devices' line sizes (A100
#: moves 32 B sectors; MI250X and Max 1550 move 64 B lines), a range of
#: associativities, and set counts from 1 to hundreds.
SPECS = [
    (256, 32, 8),          # 1 set, A100-style sectors
    (1024, 32, 4),         # 8 sets
    (64 * 1024, 32, 8),    # 256 sets (A100 L1 shape, shrunk)
    (256, 64, 4),          # 1 set, AMD/Intel lines
    (4 * 1024, 64, 2),     # 32 sets, low associativity
    (64 * 1024, 64, 16),   # 64 sets (L2-like associativity)
]


def _scalar_hits(spec_args, ways, addrs):
    sim = CacheSim(CacheSpec(*spec_args), ways=ways)
    hits = sim.access_trace(addrs)
    return sim, hits


@pytest.mark.parametrize("size,line,ways", SPECS)
class TestReplayMatchesScalar:
    def _specs(self, size, line):
        return (size, line, 10)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_hit_vector_totals_and_state(self, size, line, ways, data):
        addrs = data.draw(st.lists(
            st.integers(0, 64 * size), min_size=0, max_size=400))
        addrs = np.asarray(addrs, dtype=np.int64)
        scalar, scalar_hits = _scalar_hits(self._specs(size, line), ways, addrs)
        batched = CacheSim(CacheSpec(*self._specs(size, line)), ways=ways)
        batched_hits = batched.replay(addrs)
        assert (scalar_hits == batched_hits).all()
        assert (scalar.hits, scalar.misses) == (batched.hits, batched.misses)
        assert (scalar._tags == batched._tags).all()
        assert (scalar._lru == batched._lru).all()
        assert scalar._clock == batched._clock

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_interleaving_scalar_and_batched(self, size, line, ways, data):
        """The two paths share state: prefix scalar + suffix batched ==
        all-scalar, access for access."""
        addrs = np.asarray(data.draw(st.lists(
            st.integers(0, 16 * size), min_size=2, max_size=200)),
            dtype=np.int64)
        cut = data.draw(st.integers(0, len(addrs)))
        scalar, scalar_hits = _scalar_hits(self._specs(size, line), ways, addrs)
        mixed = CacheSim(CacheSpec(*self._specs(size, line)), ways=ways)
        prefix = mixed.access_trace(addrs[:cut])
        suffix = mixed.replay(addrs[cut:])
        assert (np.concatenate([prefix, suffix]) == scalar_hits).all()
        assert (scalar._tags == mixed._tags).all()
        assert (scalar._lru == mixed._lru).all()


class TestReplayEdgeCases:
    def test_empty_trace(self):
        sim = CacheSim(CacheSpec(1024, 64, 10))
        assert sim.replay(np.array([], dtype=np.int64)).size == 0
        assert sim.hits == sim.misses == 0
        assert sim._clock == 0

    def test_single_access(self):
        sim = CacheSim(CacheSpec(1024, 64, 10))
        assert not sim.replay(np.array([128])).any()
        assert sim.replay(np.array([130])).all()  # same line

    def test_reset_cold_starts(self):
        sim = CacheSim(CacheSpec(1024, 64, 10))
        sim.replay(np.array([0, 0, 64]))
        sim.reset()
        assert sim.hits == sim.misses == 0
        assert not sim.replay(np.array([0])).any()  # cold again

    def test_repeated_fitting_trace_all_hits(self):
        """Second replay of a cache-fitting trace hits 100% (LRU sanity)."""
        rng = np.random.default_rng(0)
        sim = CacheSim(CacheSpec(64 * 1024, 64, 10), ways=16)
        addrs = rng.integers(0, 32 * 1024, size=5000)
        sim.replay(addrs)
        assert sim.replay(addrs).all()


def _device_grid():
    """Shrunken two-level shapes preserving each device's line sizes."""
    for dev in (A100, MI250X, MAX1550):
        yield dev.with_(
            l1=CacheSpec(32 * dev.l1.line_bytes, dev.l1.line_bytes, 10),
            l2=CacheSpec(256 * dev.l2.line_bytes, dev.l2.line_bytes, 100),
        )


@pytest.mark.parametrize("device", list(_device_grid()),
                         ids=lambda d: d.name)
@pytest.mark.parametrize("atomic", [False, True])
class TestHierarchyReplayMatchesScalar:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_counts_levels_and_state(self, device, atomic, data):
        addrs = np.asarray(data.draw(st.lists(
            st.integers(0, 64 * device.l2.size_bytes // 16),
            min_size=0, max_size=300)), dtype=np.int64)
        scalar = CacheHierarchy(device)
        scalar_levels = [scalar.access(int(a), atomic=atomic) for a in addrs]
        batched = CacheHierarchy(device)
        counts, levels = batched.replay(addrs, atomic=atomic,
                                        return_levels=True)
        assert [REPLAY_LEVELS[c] for c in levels] == scalar_levels
        for name in REPLAY_LEVELS:
            assert counts[name] == scalar_levels.count(name)
        assert scalar.hbm_transactions == batched.hbm_transactions
        assert scalar.hbm_bytes == batched.hbm_bytes
        assert (scalar.l1._tags == batched.l1._tags).all()
        assert (scalar.l2._tags == batched.l2._tags).all()
        if atomic:
            # atomics bypass the L1 entirely: untouched state, no hits
            assert counts["l1"] == 0
            assert (batched.l1._tags == -1).all()


class TestHierarchyReplayApi:
    def _hier(self):
        dev = A100.with_(l1=CacheSpec(1024, 64, 10),
                         l2=CacheSpec(8 * 1024, 64, 100))
        return CacheHierarchy(dev)

    def test_counts_dict_is_access_trace_compatible(self):
        h = self._hier()
        counts = h.replay(np.arange(0, 640, 64))
        assert set(counts) == {"l1", "l2", "hbm"}
        assert counts["hbm"] == 10

    def test_reset(self):
        h = self._hier()
        h.replay(np.arange(0, 640, 64))
        h.reset()
        assert h.hbm_transactions == 0
        assert h.replay(np.array([0]))["hbm"] == 1  # cold again


class TestImpliedL2Churn:
    def test_inverts_the_capacity_model(self):
        ws_per_warp, warps, churn = 40_000.0, 2000, 3.0
        predicted = min(1.0, A100.l2.size_bytes / (ws_per_warp * warps * churn))
        assert 0 < predicted < 1
        assert implied_l2_churn(A100, warps, ws_per_warp,
                                predicted) == pytest.approx(churn)

    def test_saturated_hit_rate_is_unconstrained(self):
        assert implied_l2_churn(A100, 10, 64.0, 1.0) == 1.0

    def test_clamps_to_model_domain(self):
        # a *lower* hit rate than even churn=1 predicts still returns >= 1
        assert implied_l2_churn(A100, 1, 1e12, 0.9999) == 1.0

    def test_rejects_zero_hit_rate(self):
        with pytest.raises(ModelError):
            implied_l2_churn(A100, 1, 1024.0, 0.0)
