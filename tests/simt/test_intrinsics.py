"""Tests for the vectorized warp-intrinsic emulations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt.intrinsics import (
    all_sync,
    any_sync,
    ballot_count_sync,
    ballot_sync,
    elect_one_per_slot,
    match_any_sync,
    shfl_sync,
)


class TestMatchAny:
    def test_groups_by_warp_and_value(self):
        warps = np.array([0, 0, 0, 1, 1])
        vals = np.array([7, 7, 8, 7, 7])
        leaders = match_any_sync(warps, vals)
        np.testing.assert_array_equal(leaders, [0, 0, 2, 3, 3])

    def test_same_value_different_warp_not_grouped(self):
        leaders = match_any_sync(np.array([0, 1]), np.array([5, 5]))
        np.testing.assert_array_equal(leaders, [0, 1])

    def test_leader_is_lowest_index(self):
        leaders = match_any_sync(np.array([0, 0, 0]), np.array([3, 9, 3]))
        assert leaders[2] == 0  # lane 2 groups with lane 0, not itself

    def test_empty(self):
        assert match_any_sync(np.array([]), np.array([])).size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            match_any_sync(np.array([0]), np.array([1, 2]))

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 4)),
                    min_size=1, max_size=40))
    def test_property_leader_consistency(self, pairs):
        warps = np.array([p[0] for p in pairs])
        vals = np.array([p[1] for p in pairs])
        leaders = match_any_sync(warps, vals)
        for i in range(len(pairs)):
            li = leaders[i]
            # leader shares warp and value, and is the first such lane
            assert warps[li] == warps[i] and vals[li] == vals[i]
            firsts = [j for j in range(len(pairs))
                      if warps[j] == warps[i] and vals[j] == vals[i]]
            assert li == firsts[0]


class TestBallotAll:
    def test_ballot_counts(self):
        counts = ballot_count_sync(np.array([0, 0, 1]),
                                   np.array([True, False, True]), 2)
        np.testing.assert_array_equal(counts, [1, 1])

    def test_ballot_sync_alias_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="ballot_count_sync"):
            counts = ballot_sync(np.array([0, 1, 1]),
                                 np.array([True, True, True]), 2)
        np.testing.assert_array_equal(counts, [1, 2])

    def test_all_sync(self):
        ok = all_sync(np.array([0, 0, 1]), np.array([True, True, False]), 2)
        np.testing.assert_array_equal(ok, [True, False])

    def test_all_sync_vacuous_true(self):
        """Warps with no listed lanes report True (hardware: inactive warp)."""
        ok = all_sync(np.array([0]), np.array([True]), 3)
        np.testing.assert_array_equal(ok, [True, True, True])

    def test_any_sync(self):
        hit = any_sync(np.array([0, 0, 1]), np.array([False, True, False]), 3)
        np.testing.assert_array_equal(hit, [True, False, False])

    @pytest.mark.parametrize("fn", [ballot_count_sync, all_sync, any_sync])
    def test_out_of_range_warp_id_names_the_lane(self, fn):
        with pytest.raises(ValueError, match=r"lane 1 names warp 7"):
            fn(np.array([0, 7]), np.array([True, True]), 2)

    @pytest.mark.parametrize("fn", [ballot_count_sync, all_sync, any_sync])
    def test_negative_warp_id_rejected(self, fn):
        with pytest.raises(ValueError, match=r"lane 0 names warp -1"):
            fn(np.array([-1]), np.array([True]), 2)


class TestShuffle:
    def test_broadcast(self):
        got = shfl_sync(np.array([10, 20]), None, np.array([0, 0, 1, 1, 1]))
        np.testing.assert_array_equal(got, [10, 10, 20, 20, 20])


class TestElect:
    def test_one_winner_per_slot(self):
        winners = elect_one_per_slot(np.array([5, 5, 5, 9]))
        assert winners.sum() == 2
        assert winners[0] and winners[3]
        assert not winners[1] and not winners[2]

    def test_all_distinct_all_win(self):
        assert elect_one_per_slot(np.array([1, 2, 3])).all()

    def test_empty(self):
        assert elect_one_per_slot(np.array([], dtype=int)).size == 0

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=60))
    def test_property_exactly_one_winner_per_distinct_slot(self, slots):
        arr = np.array(slots)
        winners = elect_one_per_slot(arr)
        assert winners.sum() == len(set(slots))
        for s in set(slots):
            idx = np.nonzero(arr == s)[0]
            assert winners[idx].sum() == 1
            assert winners[idx[0]]  # deterministic: first wins
