"""Dynamic sanitizer: clean production backends, caught demo bugs.

The two acceptance halves of a sanitizer:

* **soundness on good code** — every production SIMT port runs with all
  checkers enabled and reports *zero* findings (their protocols really
  are atomic / correctly masked / initialized-before-read);
* **power on bad code** — the ``buggy-demo`` backend seeds one bug per
  checker and each checker must catch exactly its own bug class
  (mutation-style self-test).
"""

import numpy as np
import pytest

from repro.datasets.generate import generate_paper_dataset
from repro.kernels import available_backends, create_backend
from repro.sanitize import (
    BUGS,
    CHECKS,
    BuggyDemoKernel,
    Sanitizer,
    SanitizerFinding,
    SanitizerReport,
    parse_checks,
)

SIMT_BACKENDS = ["cuda", "hip", "sycl"]

#: which checker must catch which seeded demo bug
BUG_TO_CHECKER = {"race": "racecheck", "sync": "synccheck",
                  "init": "initcheck"}


@pytest.fixture(scope="module")
def contigs():
    return generate_paper_dataset(21, scale=0.002, seed=7)


def test_buggy_demo_backend_is_registered():
    assert "buggy-demo" in available_backends()


@pytest.mark.parametrize("backend", SIMT_BACKENDS)
def test_production_backends_are_clean(backend, contigs):
    kernel = create_backend(backend, sanitize="all")
    kernel.run(contigs, 21)
    report = kernel.last_sanitizer_report
    assert report is not None
    assert report.ok, report.render()


def test_unsanitized_run_has_no_report(contigs):
    kernel = create_backend("cuda")
    kernel.run(contigs, 21)
    assert kernel.last_sanitizer_report is None


def test_buggy_demo_all_checkers_fire(contigs):
    kernel = create_backend("buggy-demo", sanitize="all")
    kernel.run(contigs, 21)
    report = kernel.last_sanitizer_report
    for checker in CHECKS:
        assert report.count(checker) > 0, f"{checker} missed its bug"


@pytest.mark.parametrize("bug", BUGS)
def test_each_bug_caught_only_by_its_checker(bug, contigs):
    kernel = create_backend("buggy-demo", sanitize="all", bugs=(bug,))
    kernel.run(contigs, 21)
    report = kernel.last_sanitizer_report
    expected = BUG_TO_CHECKER[bug]
    assert report.count(expected) > 0, \
        f"{expected} missed the seeded {bug!r} bug"
    for checker in CHECKS:
        if checker != expected:
            assert report.count(checker) == 0, \
                f"{checker} false-positived on the {bug!r} bug:\n" \
                + report.render()


@pytest.mark.parametrize("check", CHECKS)
def test_single_checker_selection_isolates(check, contigs):
    kernel = create_backend("buggy-demo", sanitize=check)
    kernel.run(contigs, 21)
    report = kernel.last_sanitizer_report
    assert report.count(check) > 0
    for other in CHECKS:
        if other != check:
            assert report.count(other) == 0


def test_findings_carry_provenance(contigs):
    kernel = create_backend("buggy-demo", sanitize="racecheck")
    kernel.run(contigs, 21)
    finding = kernel.last_sanitizer_report.findings[0]
    assert finding.checker == "racecheck"
    assert finding.phase == "construct"
    assert finding.launch >= 0
    assert finding.contig_id >= 0
    assert finding.warp >= 0
    assert finding.lane >= 0
    assert finding.slot >= 0
    text = finding.format()
    for token in ("racecheck", "warp", "lane", "slot", "contig"):
        assert token in text


def test_run_schedule_merges_reports(contigs):
    kernel = create_backend("buggy-demo", sanitize="all")
    kernel.run_schedule(contigs, [21, 33])
    report = kernel.last_sanitizer_report
    assert report is not None
    assert not report.ok
    for checker in CHECKS:
        assert report.count(checker) > 0


def test_sanitize_option_via_kernel_kwarg(contigs):
    # direct construction (not through the registry) also works
    from repro.simt.device import A100

    kernel = BuggyDemoKernel(A100, sanitize="all")
    kernel.run(contigs, 21)
    assert not kernel.last_sanitizer_report.ok


def test_unknown_check_rejected():
    with pytest.raises(ValueError, match="bogus"):
        create_backend("cuda", sanitize="bogus")


def test_unknown_bug_rejected():
    from repro.simt.device import A100

    with pytest.raises(ValueError, match="typo"):
        BuggyDemoKernel(A100, bugs=("typo",))


# ----------------------------------------------------------------------
# unit-level: parse_checks and report mechanics


def test_parse_checks_forms():
    assert parse_checks("all") == CHECKS
    assert parse_checks("racecheck") == ("racecheck",)
    assert parse_checks("initcheck,racecheck") == ("racecheck", "initcheck")
    assert parse_checks(["synccheck", "synccheck"]) == ("synccheck",)
    assert parse_checks(None) == ()


def test_report_cap_counts_suppressed():
    report = SanitizerReport(max_findings=2)
    for i in range(5):
        report.add(SanitizerFinding(checker="racecheck", phase="construct",
                                    message=f"f{i}"))
    assert len(report.findings) == 2
    assert report.suppressed == 3
    assert report.count() == 5
    assert not report.ok
    assert "suppressed" in report.summary()


def _launch(n_warps, total_slots, contig_ids):
    from repro.kernels.engine.events import LaunchStarted

    return LaunchStarted(k=21, hash_ops=100, n_warps=n_warps,
                         mean_table_bytes=0.0, mean_read_bytes=0.0,
                         cold_footprint_bytes=0.0, total_slots=total_slots,
                         contig_ids=contig_ids)


def test_racecheck_unit_duplicate_slots():
    from repro.kernels.engine.events import SlotWrite

    san = Sanitizer(checks="racecheck")
    san.handle(_launch(n_warps=2, total_slots=64, contig_ids=(10, 11)),
               bus=None)
    san.handle(SlotWrite(phase="construct", kind="vote",
                         slots=np.array([3, 7, 3]),
                         warps=np.array([0, 0, 1]),
                         lanes=np.array([0, 1, 2]), atomic=False),
               bus=None)
    findings = san.report.by_checker("racecheck")
    assert len(findings) == 1
    assert findings[0].slot == 3
    assert findings[0].contig_id == 11  # provenance of the losing lane
    # atomic batches with duplicates are fine (that is what atomics buy)
    san.handle(SlotWrite(phase="construct", kind="vote",
                         slots=np.array([5, 5]), warps=np.array([0, 0]),
                         lanes=np.array([0, 1]), atomic=True), bus=None)
    assert len(san.report.by_checker("racecheck")) == 1


def test_initcheck_unit_read_before_write():
    from repro.kernels.engine.events import SlotRead, SlotWrite

    san = Sanitizer(checks="initcheck")
    san.handle(_launch(n_warps=1, total_slots=16, contig_ids=(5,)),
               bus=None)
    san.handle(SlotWrite(phase="construct", kind="vote",
                         slots=np.array([2]), warps=np.array([0]),
                         lanes=np.array([0]), atomic=True), bus=None)
    san.handle(SlotRead(phase="walk", kind="vote_read",
                        slots=np.array([2, 9]), warps=np.array([0, 0])),
               bus=None)
    findings = san.report.by_checker("initcheck")
    assert len(findings) == 1
    assert findings[0].slot == 9


def test_synccheck_unit_mask_mismatch():
    from repro.kernels.engine.events import BarrierSync

    san = Sanitizer(checks="synccheck")
    san.handle(_launch(n_warps=2, total_slots=8, contig_ids=(1, 2)),
               bus=None)
    san.handle(BarrierSync(phase="construct", warps=np.array([0, 1]),
                           mask_lanes=np.array([32, 32]),
                           active_lanes=np.array([32, 7])), bus=None)
    findings = san.report.by_checker("synccheck")
    assert len(findings) == 1
    assert findings[0].warp == 1
