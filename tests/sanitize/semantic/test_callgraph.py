"""Call-graph mechanics: resolution and reachability on known shapes.

These tests build :class:`Project` instances straight from source
strings (no files) and probe the graph directly — the rule-level
behavior lives in test_semantic_rules.py.
"""

import ast
import textwrap

from repro.sanitize.semantic import Project, extract_summary


def project_of(**modules):
    summaries = []
    for name, src in modules.items():
        tree = ast.parse(textwrap.dedent(src))
        summaries.append(
            extract_summary(tree, f"{name.replace('.', '/')}.py",
                            name.replace("__", ".")))
    return Project(summaries)


def chain_names(project, key):
    chain = project.blocking_chain(key)
    if chain is None:
        return None
    return [project.functions[hop["func"]]["name"] for hop in chain]


# ----------------------------------------------------------------------
# shapes


def test_diamond_reports_one_shortest_chain():
    p = project_of(mod="""
        import time

        def a():
            b()
            c()

        def b():
            d()

        def c():
            d()

        def d():
            time.sleep(1)
        """)
    # both arms reach d; BFS must return exactly one, shortest, stable
    assert chain_names(p, "mod:a") == ["b", "d"]
    blocking = p.blocking_chain("mod:a")[-1]["blocking"]
    assert blocking["desc"] == "time.sleep()"


def test_recursion_terminates_and_still_finds_the_leaf():
    p = project_of(mod="""
        import time

        def f(n):
            f(n - 1)
            g()

        def g():
            time.sleep(1)
        """)
    assert chain_names(p, "mod:f") == ["g"]


def test_pure_cycle_without_blocking_is_clean():
    p = project_of(mod="""
        def ping():
            pong()

        def pong():
            ping()
        """)
    assert p.blocking_chain("mod:ping") is None


def test_async_chain_tracks_async_ness():
    p = project_of(mod="""
        import time

        async def serve():
            step()

        def step():
            time.sleep(1)
        """)
    assert p.functions["mod:serve"]["is_async"]
    assert not p.functions["mod:step"]["is_async"]
    assert chain_names(p, "mod:serve") == ["step"]


def test_direct_blocking_is_not_a_transitive_chain():
    # a blocker inside the coroutine itself is REP007's finding, not a
    # call-graph edge — blocking_chain only reports depth >= 1
    p = project_of(mod="""
        import time

        async def serve():
            time.sleep(1)
        """)
    assert p.blocking_chain("mod:serve") is None


# ----------------------------------------------------------------------
# resolution kinds


def test_cross_module_from_import_resolves():
    p = project_of(
        pkg__a="""
            from pkg.b import helper

            async def serve():
                helper()
            """,
        pkg__b="""
            import time

            def helper():
                time.sleep(1)
            """)
    assert chain_names(p, "pkg.a:serve") == ["helper"]


def test_module_alias_attribute_call_resolves():
    p = project_of(
        pkg__a="""
            from pkg import b

            async def serve():
                b.helper()
            """,
        pkg__b="""
            import time

            def helper():
                time.sleep(1)
            """)
    assert chain_names(p, "pkg.a:serve") == ["helper"]


def test_self_method_and_one_level_base_walk():
    p = project_of(mod="""
        import time

        class Base:
            def slow(self):
                time.sleep(1)

        class Svc(Base):
            async def serve(self):
                self.slow()
        """)
    assert chain_names(p, "mod:Svc.serve") == ["slow"]


def test_constructor_typed_attribute_receiver():
    p = project_of(mod="""
        import time

        class Disk:
            def flush(self):
                time.sleep(1)

        class Svc:
            def __init__(self):
                self.disk = Disk()

            async def serve(self):
                self.disk.flush()
        """)
    assert chain_names(p, "mod:Svc.serve") == ["flush"]


def test_function_reference_is_not_an_edge():
    # run_in_executor(None, helper) passes helper by reference — the
    # blocking body runs off-loop, so no edge and no chain
    p = project_of(mod="""
        import time

        def helper():
            time.sleep(1)

        async def serve(loop):
            await loop.run_in_executor(None, helper)
        """)
    assert p.blocking_chain("mod:serve") is None


def test_unresolvable_receiver_stays_silent():
    p = project_of(mod="""
        async def serve(worker):
            worker.grind()
        """)
    assert p.blocking_chain("mod:serve") is None


# ----------------------------------------------------------------------
# return taint closure


def test_return_taint_closes_over_calls():
    p = project_of(
        pkg__clock="""
            import time

            def wall():
                return time.time()
            """,
        pkg__use="""
            from pkg.clock import wall

            def stamp():
                return wall()

            def fixed():
                return 42
            """)
    sources = p.return_sources()
    assert sources["pkg.clock:wall"] == frozenset({"time.time()"})
    assert sources["pkg.use:stamp"] == frozenset({"time.time()"})
    assert sources["pkg.use:fixed"] == frozenset()
