"""Analyzer pipeline: pragmas, baseline, SARIF, and the incremental
cache's byte-identity contract."""

import json
import textwrap

from repro.sanitize.lint import render_json
from repro.sanitize.semantic import (
    UNUSED_SUPPRESSION_ID,
    analyze_paths,
    extract_pragmas,
    load_baseline,
    render_sarif,
    write_baseline,
)

MURMUR_BUG = """
    import numpy as np

    def murmur_mix(h):
        h = np.uint32(h)
        return h * np.uint32(3)
    """


def write_tree(tmp_path, files):
    for rel, src in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src), encoding="utf-8")
    return tmp_path


# ----------------------------------------------------------------------
# suppression pragmas


def test_noqa_suppresses_exactly_its_line_and_rule(tmp_path):
    write_tree(tmp_path, {"pkg/murmur.py": """
        import numpy as np

        def murmur_mix(h):
            h = np.uint32(h)
            return h * np.uint32(3)  # repro: noqa REP012

        def murmur_mix2(h):
            h = np.uint32(h)
            return h + np.uint32(7)
        """})
    result = analyze_paths([tmp_path], select=["REP012"])
    assert result.suppressed == 1
    assert [f.rule for f in result.findings] == ["REP012"]
    assert "murmur_mix2" in result.findings[0].message


def test_blanket_noqa_suppresses_any_rule_on_the_line(tmp_path):
    write_tree(tmp_path, {"pkg/murmur.py": """
        import numpy as np

        def murmur_mix(h):
            h = np.uint32(h)
            return h * np.uint32(3)  # repro: noqa
        """})
    result = analyze_paths([tmp_path], select=["REP012"])
    assert result.findings == []
    assert result.suppressed == 1


def test_unused_suppression_is_itself_a_finding(tmp_path):
    write_tree(tmp_path, {"pkg/clean.py": """
        def fine():
            return 1  # repro: noqa REP012
        """})
    result = analyze_paths([tmp_path])
    assert [f.rule for f in result.findings] == [UNUSED_SUPPRESSION_ID]
    assert "REP012" in result.findings[0].message
    assert result.exit_code == 1


def test_partially_used_pragma_reports_the_idle_ids(tmp_path):
    write_tree(tmp_path, {"pkg/murmur.py": """
        import numpy as np

        def murmur_mix(h):
            h = np.uint32(h)
            return h * np.uint32(3)  # repro: noqa REP012,REP010
        """})
    result = analyze_paths([tmp_path])
    assert result.suppressed == 1
    (f,) = result.findings
    assert f.rule == UNUSED_SUPPRESSION_ID
    assert "REP010" in f.message and "REP012" not in f.message


def test_pragma_text_inside_a_docstring_is_not_a_suppression():
    pragmas = extract_pragmas(textwrap.dedent('''
        def doc():
            """mentions # repro: noqa REP012 in prose"""
            return 1  # repro: noqa REP010
        '''))
    assert pragmas == [{"line": 4, "rules": ["REP010"]}]


# ----------------------------------------------------------------------
# baseline


def test_baseline_grandfathers_existing_findings(tmp_path):
    root = write_tree(tmp_path / "tree", {"pkg/murmur.py": MURMUR_BUG})
    dirty = analyze_paths([root])
    assert len(dirty.findings) == 1
    baseline = tmp_path / "LINT_BASELINE.json"
    write_baseline(baseline, dirty.findings)
    assert load_baseline(baseline)

    clean = analyze_paths([root], baseline_path=baseline)
    assert clean.findings == []
    assert clean.baselined == 1
    assert clean.exit_code == 0
    # the debt stays visible in all_findings even while CI passes
    assert [f.rule for f in clean.all_findings] == ["REP012"]


def test_new_findings_are_not_covered_by_an_old_baseline(tmp_path):
    root = write_tree(tmp_path / "tree", {"pkg/murmur.py": MURMUR_BUG})
    baseline = tmp_path / "LINT_BASELINE.json"
    write_baseline(baseline, analyze_paths([root]).findings)
    # a second, different bug lands after the baseline was cut
    write_tree(root, {"pkg/murmur.py": MURMUR_BUG + """
    def murmur_mix2(h):
        h = np.uint32(h)
        return h + np.uint32(7)
    """})
    result = analyze_paths([root], baseline_path=baseline)
    assert result.baselined == 1
    assert len(result.findings) == 1
    assert "murmur_mix2" in result.findings[0].message


# ----------------------------------------------------------------------
# SARIF


def test_sarif_is_valid_and_complete(tmp_path):
    root = write_tree(tmp_path, {"pkg/murmur.py": MURMUR_BUG})
    result = analyze_paths([root])
    doc = json.loads(render_sarif(result.findings))
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    rules = run["tool"]["driver"]["rules"]
    rule_ids = [r["id"] for r in rules]
    # the whole catalog is advertised, findings reference it by index
    assert "REP001" in rule_ids and "REP013" in rule_ids
    (res,) = run["results"]
    assert res["ruleId"] == "REP012"
    assert rules[res["ruleIndex"]]["id"] == "REP012"
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("pkg/murmur.py")
    assert loc["region"]["startLine"] >= 1
    assert loc["region"]["startColumn"] >= 1


# ----------------------------------------------------------------------
# incremental cache


def test_warm_cache_output_is_byte_identical(tmp_path):
    root = write_tree(tmp_path / "tree", {
        "pkg/murmur.py": MURMUR_BUG,
        "pkg/clean.py": "def fine():\n    return 1\n",
    })
    cache = tmp_path / "cache.json"
    cold = analyze_paths([root], cache_path=cache)
    assert (cold.files, cold.reused) == (2, 0)
    warm = analyze_paths([root], cache_path=cache)
    assert (warm.files, warm.reused) == (2, 2)
    assert render_json(warm.findings) == render_json(cold.findings)
    assert render_sarif(warm.findings) == render_sarif(cold.findings)


def test_cache_reanalyzes_only_changed_files(tmp_path):
    root = write_tree(tmp_path / "tree", {
        "pkg/murmur.py": MURMUR_BUG,
        "pkg/clean.py": "def fine():\n    return 1\n",
    })
    cache = tmp_path / "cache.json"
    analyze_paths([root], cache_path=cache)
    # fix the bug; only murmur.py should miss the cache
    write_tree(root, {"pkg/murmur.py": """
        import numpy as np

        def murmur_mix(h):
            h = np.uint64(h)
            return h * np.uint64(3)
        """})
    warm = analyze_paths([root], cache_path=cache)
    assert (warm.files, warm.reused) == (2, 1)
    assert warm.findings == []


def test_semantic_findings_survive_a_fully_cached_run(tmp_path):
    # the cross-module pass runs over cached summaries, so a 100%-warm
    # run must still see the multi-file REP009 chain
    root = write_tree(tmp_path / "tree", {
        "pkg/a.py": """
            from pkg.b import helper

            async def serve_loop():
                helper()
            """,
        "pkg/b.py": """
            import time

            def helper():
                time.sleep(0.1)
            """,
    })
    cache = tmp_path / "cache.json"
    cold = analyze_paths([root], cache_path=cache, select=["REP009"])
    warm = analyze_paths([root], cache_path=cache, select=["REP009"])
    assert warm.reused == warm.files == 2
    assert render_json(warm.findings) == render_json(cold.findings)
    assert [f.rule for f in warm.findings] == ["REP009"]


def test_cache_serves_any_selection(tmp_path):
    # cached records hold the full syntactic catalog, filtered at query
    # time — a cache written under one --select must not leak or hide
    # findings under another
    root = write_tree(tmp_path / "tree", {"pkg/murmur.py": MURMUR_BUG})
    cache = tmp_path / "cache.json"
    analyze_paths([root], cache_path=cache, select=["REP001"])
    warm = analyze_paths([root], cache_path=cache)
    assert warm.reused == 1
    assert [f.rule for f in warm.findings] == ["REP012"]
