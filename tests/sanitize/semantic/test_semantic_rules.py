"""Detector power and soundness for REP009–REP013.

Mirrors the PR 5 buggy-demo pattern at the static level: each rule gets
a fixture package with exactly one planted bug, written to ``tmp_path``
at test time (never committed as real modules — CI's semantic pass
sweeps ``tests/`` too). Every fixture runs under the *full* semantic
selection, so each test proves its rule fires AND that the other four
stay quiet on the same tree.
"""

import textwrap

import pytest

from repro.sanitize.semantic import analyze_paths

SEMANTIC = ["REP009-REP013"]


def run_fixture(tmp_path, files, select=SEMANTIC):
    for rel, src in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src), encoding="utf-8")
    return analyze_paths([tmp_path], select=select).findings


def only_rule(findings):
    rules = {f.rule for f in findings}
    assert len(rules) == 1, f"expected one rule, got {sorted(rules)}"
    return rules.pop()


# ----------------------------------------------------------------------
# REP009 — transitive blocking reachability


def test_rep009_catches_blocking_two_modules_down(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/a.py": """
            from pkg.b import helper

            async def serve_loop():
                helper()
            """,
        "pkg/b.py": """
            import time

            def helper():
                deeper()

            def deeper():
                time.sleep(0.1)
            """,
    })
    assert only_rule(findings) == "REP009"
    (f,) = findings
    assert "serve_loop" in f.message
    assert "helper -> deeper" in f.message
    assert "time.sleep()" in f.message
    assert f.path.endswith("pkg/a.py")


def test_rep009_quiet_when_leaf_goes_through_executor(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/a.py": """
            from pkg.b import helper

            async def serve_loop(loop):
                await loop.run_in_executor(None, helper)
            """,
        "pkg/b.py": """
            import time

            def helper():
                time.sleep(0.1)
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# REP010 — determinism taint


def test_rep010_catches_clock_flowing_into_checkpoint(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/ck.py": """
            import time

            def persist(store, k, data):
                stamp = time.time()
                payload = {"data": data, "stamp": stamp}
                store.save_payload("stage", k, payload)
            """,
    })
    assert only_rule(findings) == "REP010"
    (f,) = findings
    assert "time.time()" in f.message
    assert "save_payload()" in f.message


def test_rep010_tracks_taint_through_a_called_function(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/clock.py": """
            import time

            def wall():
                return time.time()
            """,
        "pkg/ck.py": """
            from pkg.clock import wall

            def persist(store, k, data):
                store.save_payload("stage", k, {"d": data, "t": wall()})
            """,
    })
    assert only_rule(findings) == "REP010"
    assert findings[0].path.endswith("pkg/ck.py")


def test_rep010_sees_through_from_import_aliasing(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/ck.py": """
            from time import monotonic

            def persist(store, k, data):
                store.save_payload("stage", k, {"d": data, "t": monotonic()})
            """,
    })
    assert only_rule(findings) == "REP010"
    assert "time.monotonic()" in findings[0].message


def test_rep010_quiet_on_deterministic_payloads(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/ck.py": """
            def persist(store, k, data):
                store.save_payload("stage", k, {"data": data, "k": k})
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# REP011 — cross-module event contract


def test_rep011_catches_both_contract_directions(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/prod.py": """
            def fire(bus):
                bus.emit(Ping())
            """,
        "pkg/sub.py": """
            class Listener:
                handled_events = (Pong,)

                def on_event(self, ev):
                    return ev
            """,
    })
    assert only_rule(findings) == "REP011"
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "Ping" in messages[0] and "no subscriber declares" in messages[0]
    assert "Pong" in messages[1] and "dead subscription" in messages[1]


def test_rep011_quiet_when_contract_holds_across_modules(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/prod.py": """
            def fire(bus):
                bus.emit(Ping())
            """,
        "pkg/sub.py": """
            class Listener:
                handled_events = (Ping,)
            """,
    })
    assert findings == []


def test_rep011_accepts_append_built_declarations(tmp_path):
    # the coalesce.py pattern: handled = [...] + handled.append(X)
    findings = run_fixture(tmp_path, {
        "pkg/prod.py": """
            def fire(bus, deep):
                bus.emit(Ping())
                if deep:
                    bus.emit(Probe())
            """,
        "pkg/sub.py": """
            class Recorder:
                def __init__(self, deep):
                    handled = [Ping]
                    if deep:
                        handled.append(Probe)
                    self.handled_events = tuple(handled)
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# REP012 — dtype-width discipline


def test_rep012_catches_unguarded_narrow_multiply(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/murmur.py": """
            import numpy as np

            def murmur_mix(h):
                h = np.uint32(h)
                return h * np.uint32(0x5BD1E995)
            """,
    })
    assert only_rule(findings) == "REP012"
    (f,) = findings
    assert "'*'" in f.message
    assert "errstate" in f.message


def test_rep012_errstate_is_the_sanctioned_wraparound(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/murmur.py": """
            import numpy as np

            def murmur_mix(h):
                h = np.uint32(h)
                with np.errstate(over="ignore"):
                    return h * np.uint32(0x5BD1E995)
            """,
    })
    assert findings == []


def test_rep012_ignores_narrow_math_outside_fingerprint_paths(tmp_path):
    # vectortable.vote's guarded int32 narrowing is deliberate and out
    # of scope: the rule only polices murmur/fingerprint code
    findings = run_fixture(tmp_path, {
        "pkg/table.py": """
            import numpy as np

            def vote(slots):
                key = slots.astype(np.int32)
                return key * np.int32(8)
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# REP013 — checkpoint codec drift


def test_rep013_catches_drift_in_both_directions(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/codec.py": """
            def spectrum_to_payload(sp):
                return {"k": sp.k, "total": sp.total, "junk": 0}

            def spectrum_from_payload(payload):
                return (payload["k"], payload["total"], payload["extra"])
            """,
    })
    assert only_rule(findings) == "REP013"
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert any("'junk'" in m and "no paired reader" in m for m in messages)
    assert any("'extra'" in m and "no paired writer" in m for m in messages)


def test_rep013_quiet_when_key_sets_agree(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/codec.py": """
            def spectrum_to_payload(sp):
                return {"k": sp.k, "total": sp.total}

            def spectrum_from_payload(payload):
                return (payload["k"], payload.get("total", 0))
            """,
    })
    assert findings == []


def test_rep013_opaque_halves_are_skipped_not_guessed(tmp_path):
    # dataclasses.asdict writers / **payload readers have unknowable key
    # sets; flagging them would be noise
    findings = run_fixture(tmp_path, {
        "pkg/codec.py": """
            import dataclasses

            def profile_to_dict(profile):
                return dataclasses.asdict(profile)

            def profile_from_dict(data):
                return KernelProfile(**data)
            """,
    })
    assert findings == []


def test_rep013_pairs_stage_run_with_restore(tmp_path):
    findings = run_fixture(tmp_path, {
        "pkg/stages.py": """
            class AlignStage:
                def run(self, ctx):
                    return {"pairs": ctx.pairs, "score": ctx.score}

                def restore(self, ctx, payload):
                    return (payload["pairs"], payload["missing"])
            """,
    })
    assert only_rule(findings) == "REP013"
    messages = sorted(f.message for f in findings)
    assert any("'score'" in m and "no paired reader" in m for m in messages)
    assert any("'missing'" in m and "no paired writer" in m for m in messages)


# ----------------------------------------------------------------------
# cross-cutting: one planted bug never lights up a second rule


@pytest.mark.parametrize("selection", [["REP009"], ["REP010"], ["REP011"],
                                       ["REP012"], ["REP013"]])
def test_single_rule_selection_is_honored(tmp_path, selection):
    # a tree with every planted bug at once: selecting one rule must
    # return only that rule's findings
    files = {
        "pkg/a.py": """
            from pkg.b import helper

            async def serve_loop():
                helper()
            """,
        "pkg/b.py": """
            import time

            def helper():
                time.sleep(0.1)

            def persist(store, k):
                store.save_payload("stage", k, {"t": time.time()})
            """,
        "pkg/events.py": """
            def fire(bus):
                bus.emit(Ping())
            """,
        "pkg/murmur.py": """
            import numpy as np

            def murmur_mix(h):
                h = np.uint32(h)
                return h * np.uint32(3)
            """,
        "pkg/codec.py": """
            def ext_to_payload(e):
                return {"end": e.end, "junk": 0}

            def ext_from_payload(p):
                return p["end"]
            """,
    }
    findings = run_fixture(tmp_path, files, select=selection)
    assert findings, f"{selection[0]} found nothing in the all-bugs tree"
    assert {f.rule for f in findings} == set(selection)
